//! Trait-object equivalence: running a protocol through the object-safe
//! `dyn Protocol` surface produces releases identical (≤ 1e-12) to the
//! concrete, statically-dispatched `run()` path, on the synthetic Adult
//! data set — for all four protocols.  The trait impls delegate to the
//! inherent methods, so with the same seed both paths must consume the
//! same RNG stream and land on the same estimate; this test pins that
//! contract so the delegation can never silently diverge.

use mdrr::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 31;
const TOLERANCE: f64 = 1e-12;

fn adult(n: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(9);
    AdultSynthesizer::new(n).unwrap().generate(&mut rng)
}

/// All single-attribute and a sweep of pair assignments for a schema.
fn workload(schema: &Schema) -> Vec<Vec<(usize, u32)>> {
    let cards = schema.cardinalities();
    let mut queries = Vec::new();
    for (a, &ca) in cards.iter().enumerate() {
        for va in 0..ca as u32 {
            queries.push(vec![(a, va)]);
        }
        for (b, &cb) in cards.iter().enumerate().skip(a + 1) {
            queries.push(vec![(a, 0), (b, (cb - 1) as u32)]);
        }
    }
    queries
}

/// Asserts that two releases agree on every marginal and workload query.
fn assert_releases_match(
    schema: &Schema,
    concrete: &dyn Release,
    dynamic: &dyn Release,
    label: &str,
) {
    assert_eq!(concrete.record_count(), dynamic.record_count(), "{label}");
    for attribute in 0..schema.len() {
        let a = concrete.marginal(attribute).unwrap();
        let b = dynamic.marginal(attribute).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(
                (x - y).abs() <= TOLERANCE,
                "{label}: marginal {attribute} diverged ({x} vs {y})"
            );
        }
    }
    for query in workload(schema) {
        let x = concrete.frequency(&query).unwrap();
        let y = dynamic.frequency(&query).unwrap();
        assert!(
            (x - y).abs() <= TOLERANCE,
            "{label}: query {query:?} diverged ({x} vs {y})"
        );
    }
}

#[test]
fn dyn_independent_matches_concrete_run() {
    let dataset = adult(4_000);
    let protocol = RRIndependent::new(
        dataset.schema().clone(),
        &RandomizationLevel::KeepProbability(0.7),
    )
    .unwrap();

    let concrete = protocol
        .run(&dataset, &mut StdRng::seed_from_u64(SEED))
        .unwrap();
    let object: &dyn Protocol = &protocol;
    let dynamic = object
        .run(&dataset, &mut StdRng::seed_from_u64(SEED))
        .unwrap();
    assert_releases_match(dataset.schema(), &concrete, &*dynamic, "RR-Independent");
    assert_eq!(
        concrete.accountant().total_sequential(),
        dynamic.accountant().total_sequential()
    );
}

#[test]
fn dyn_joint_matches_concrete_run() {
    let dataset = adult(4_000).project(&[0, 1, 2]).unwrap();
    let protocol = RRJoint::with_keep_probability(dataset.schema().clone(), 0.7, None).unwrap();

    let concrete = protocol
        .run(&dataset, &mut StdRng::seed_from_u64(SEED))
        .unwrap();
    let object: &dyn Protocol = &protocol;
    let dynamic = object
        .run(&dataset, &mut StdRng::seed_from_u64(SEED))
        .unwrap();
    assert_releases_match(dataset.schema(), &concrete, &*dynamic, "RR-Joint");
}

#[test]
fn dyn_clusters_matches_concrete_run() {
    let dataset = adult(4_000);
    let m = dataset.schema().len();
    let clustering =
        Clustering::new((0..m / 2).map(|k| vec![2 * k, 2 * k + 1]).collect(), m).unwrap();
    let protocol = RRClusters::with_equivalent_risk_from_keep_probability(
        dataset.schema().clone(),
        clustering,
        0.7,
    )
    .unwrap();

    let concrete = protocol
        .run(&dataset, &mut StdRng::seed_from_u64(SEED))
        .unwrap();
    let object: &dyn Protocol = &protocol;
    let dynamic = object
        .run(&dataset, &mut StdRng::seed_from_u64(SEED))
        .unwrap();
    assert_releases_match(dataset.schema(), &concrete, &*dynamic, "RR-Clusters");
}

#[test]
fn dyn_adjustment_matches_the_manual_pipeline() {
    // The RR-Adjustment protocol (dyn, stacked on RR-Independent) must
    // reproduce the paper's manual pipeline: run the base protocol, derive
    // the per-attribute targets, run Algorithm 2.
    let dataset = adult(4_000);
    let config = AdjustmentConfig::new(25, 1e-9).unwrap();
    let base = RRIndependent::new(
        dataset.schema().clone(),
        &RandomizationLevel::KeepProbability(0.7),
    )
    .unwrap();

    let release = base
        .run(&dataset, &mut StdRng::seed_from_u64(SEED))
        .unwrap();
    let targets = AdjustmentTarget::from_independent(&release);
    let manual = rr_adjustment(release.randomized().unwrap(), &targets, config).unwrap();

    let stacked = RRAdjustment::new(std::sync::Arc::new(base), config);
    let dynamic = stacked
        .run(&dataset, &mut StdRng::seed_from_u64(SEED))
        .unwrap();
    assert_releases_match(dataset.schema(), &manual, &*dynamic, "RR-Adjustment");
    // The stacked release carries the base ledger (one entry per
    // attribute); the manual standalone call leaves it empty.
    assert!(manual.accountant().is_empty());
    assert_eq!(dynamic.accountant().len(), dataset.schema().len());
}

#[test]
fn spec_built_protocols_match_concrete_construction() {
    // A protocol built from a (possibly deserialized) spec is the same
    // protocol as the concretely-constructed one: identical release for
    // the same seed.
    let dataset = adult(2_000);
    let level = RandomizationLevel::KeepProbability(0.6);
    let concrete = RRIndependent::new(dataset.schema().clone(), &level).unwrap();
    let from_spec = ProtocolSpec::independent(level)
        .build(dataset.schema())
        .unwrap();

    let a = concrete
        .run(&dataset, &mut StdRng::seed_from_u64(SEED))
        .unwrap();
    let b = from_spec
        .run(&dataset, &mut StdRng::seed_from_u64(SEED))
        .unwrap();
    assert_releases_match(dataset.schema(), &a, &*b, "spec-built RR-Independent");
}
