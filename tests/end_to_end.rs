//! Cross-crate integration tests: the full paper pipelines on the synthetic
//! Adult data set, exercised through the umbrella crate's public API.

use mdrr::prelude::*;
use mdrr::protocols::{dependence_via_randomized_attributes, FrequencyEstimator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn adult(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    AdultSynthesizer::new(n).unwrap().generate(&mut rng)
}

#[test]
fn rr_independent_pipeline_recovers_every_marginal() {
    let dataset = adult(20_000, 1);
    let protocol = RRIndependent::new(
        dataset.schema().clone(),
        &RandomizationLevel::KeepProbability(0.7),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let release = protocol.run(&dataset, &mut rng).unwrap();

    for attribute in 0..dataset.n_attributes() {
        let truth = dataset.marginal_distribution(attribute).unwrap();
        let estimate = release.marginal(attribute).unwrap();
        let tv: f64 = truth
            .iter()
            .zip(estimate.iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 2.0;
        assert!(tv < 0.03, "attribute {attribute}: total variation {tv}");
    }
    // One ε entry per attribute, all finite and positive.
    assert_eq!(release.accountant().len(), 8);
    assert!(release.accountant().total_sequential().is_finite());
    assert!(release.accountant().total_sequential() > 0.0);
}

#[test]
fn full_clustered_pipeline_dependences_clustering_release_adjustment() {
    let dataset = adult(20_000, 3);
    let schema = dataset.schema().clone();
    let p = 0.7;
    let mut rng = StdRng::seed_from_u64(4);

    // Section 4.1 dependence estimation feeds Algorithm 1…
    let dependences = dependence_via_randomized_attributes(&dataset, p, &mut rng).unwrap();
    let clustering = cluster_attributes(
        &dependences.matrix,
        &schema.cardinalities(),
        ClusteringConfig::new(50, 0.1).unwrap(),
    )
    .unwrap();
    assert_eq!(clustering.attribute_count(), 8);
    assert!(
        clustering
            .max_combinations(&schema.cardinalities())
            .unwrap()
            <= 50
    );

    // …RR-Clusters runs at the equivalent risk of RR-Independent…
    let protocol =
        RRClusters::with_equivalent_risk_from_keep_probability(schema.clone(), clustering, p)
            .unwrap();
    let release = protocol.run(&dataset, &mut rng).unwrap();
    assert_eq!(
        release.randomized().unwrap().n_records(),
        dataset.n_records()
    );

    // …and RR-Adjustment re-weights the randomized data to match the
    // estimated per-cluster distributions.
    let targets = AdjustmentTarget::from_clusters(&release).unwrap();
    let adjusted = rr_adjustment(
        release.randomized().unwrap(),
        &targets,
        AdjustmentConfig::default(),
    )
    .unwrap();
    assert!((adjusted.weights().iter().sum::<f64>() - 1.0).abs() < 1e-9);

    // Every marginal survives the whole pipeline.
    for attribute in 0..8 {
        let truth = dataset.marginal_distribution(attribute).unwrap();
        let estimate = release.marginal(attribute).unwrap();
        let tv: f64 = truth
            .iter()
            .zip(estimate.iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 2.0;
        assert!(tv < 0.04, "attribute {attribute}: total variation {tv}");
    }

    // Count queries answered by all three releases stay close to the truth.
    let mut query_rng = StdRng::seed_from_u64(5);
    for _ in 0..5 {
        let query = CountQuery::random(&schema, 0.3, &mut query_rng).unwrap();
        let exact = query.true_count(&dataset).unwrap();
        for estimate in [
            query.estimated_count(&release).unwrap(),
            query.estimated_count(&adjusted).unwrap(),
        ] {
            let relative = (estimate - exact).abs() / exact.max(1.0);
            assert!(relative < 0.35, "estimate {estimate} vs exact {exact}");
        }
    }
}

#[test]
fn equivalent_risk_construction_matches_independent_budget_on_adult() {
    let schema = adult_schema();
    let p = 0.5;
    let independent =
        RRIndependent::new(schema.clone(), &RandomizationLevel::KeepProbability(p)).unwrap();
    let epsilons = independent.epsilons();

    let clustering = Clustering::new(
        vec![vec![0, 3], vec![1, 7], vec![2, 4, 6], vec![5]],
        schema.len(),
    )
    .unwrap();
    let clusters = RRClusters::with_equivalent_risk(schema, clustering, &epsilons).unwrap();

    let independent_total: f64 = epsilons.iter().sum();
    let clusters_total: f64 = clusters.matrices().iter().map(|m| m.epsilon()).sum();
    assert!(
        (independent_total - clusters_total).abs() < 1e-6,
        "independent {independent_total} vs clusters {clusters_total}"
    );
}

#[test]
fn analytic_error_bound_covers_the_measured_estimation_error() {
    // The Section 2.3 bound on the reported-distribution error must hold for
    // the empirical λ̂ of an actual randomized release (with the bound's own
    // confidence level).
    let dataset = adult(30_000, 7);
    let attribute = 1; // Education, 16 categories
    let matrix = RRMatrix::uniform_keep(0.7, 16).unwrap();
    let mut rng = StdRng::seed_from_u64(8);
    let reports = mdrr::core::randomize_attribute(&dataset, attribute, &matrix, &mut rng).unwrap();
    let lambda_hat = empirical_distribution(&reports, 16).unwrap();

    // The expected reported distribution λ = Pᵀ π from the true marginals.
    let truth = dataset.marginal_distribution(attribute).unwrap();
    let lambda = matrix.expected_reported_distribution(&truth).unwrap();

    let bound = mdrr::core::absolute_error_bound(&lambda, dataset.n_records(), 0.05).unwrap();
    let worst_deviation = lambda_hat
        .iter()
        .zip(lambda.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(
        worst_deviation <= bound * 1.5,
        "measured deviation {worst_deviation} should be within the analytic bound {bound}"
    );
}

#[test]
fn joint_protocol_beats_independence_on_a_small_dependent_schema() {
    // On a schema small enough for RR-Joint, the joint estimate captures a
    // dependence that the independence assumption misses.
    let schema = Schema::new(vec![
        Attribute::new("A", AttributeKind::Nominal, vec!["0".into(), "1".into()]).unwrap(),
        Attribute::new(
            "B",
            AttributeKind::Nominal,
            vec!["0".into(), "1".into(), "2".into()],
        )
        .unwrap(),
    ])
    .unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let mut dataset = Dataset::empty(schema.clone());
    for i in 0..30_000u32 {
        let a = i % 2;
        let b = if i % 10 < 8 { a } else { 2 };
        dataset.push_record(&[a, b]).unwrap();
    }

    let joint = RRJoint::with_keep_probability(schema.clone(), 0.7, None).unwrap();
    let joint_release = joint.run(&dataset, &mut rng).unwrap();
    let independent =
        RRIndependent::new(schema, &RandomizationLevel::KeepProbability(0.7)).unwrap();
    let independent_release = independent.run(&dataset, &mut rng).unwrap();

    let truth = EmpiricalEstimator::new(&dataset);
    let cell = [(0usize, 1u32), (1usize, 1u32)];
    let exact = truth.frequency(&cell).unwrap();
    let joint_error = (joint_release.frequency(&cell).unwrap() - exact).abs();
    let independent_error = (independent_release.frequency(&cell).unwrap() - exact).abs();
    assert!(
        joint_error < independent_error,
        "joint error {joint_error} should be below independence error {independent_error}"
    );
}

#[test]
fn synthetic_regeneration_preserves_the_released_distribution() {
    let dataset = adult(15_000, 11);
    let schema = dataset.schema().clone();
    let cluster = vec![2usize, 4, 6]; // Marital-status × Relationship × Sex
    let mut clusters = vec![cluster.clone()];
    clusters.extend(
        (0..schema.len())
            .filter(|a| !cluster.contains(a))
            .map(|a| vec![a]),
    );
    let clustering = Clustering::new(clusters, schema.len()).unwrap();

    let mut rng = StdRng::seed_from_u64(12);
    let release =
        RRClusters::with_equivalent_risk_from_keep_probability(schema.clone(), clustering, 0.8)
            .unwrap()
            .run(&dataset, &mut rng)
            .unwrap();
    let estimated = release.cluster_distribution(0).unwrap().to_vec();
    let synthetic =
        mdrr::protocols::synthesize_deterministic(&schema, &cluster, &estimated, 15_000).unwrap();

    // The synthetic data reproduce the estimated joint distribution up to
    // rounding, and hence stay close to the true projected distribution.
    let (_, synthetic_joint) = synthetic.joint_distribution(&[0, 1, 2]).unwrap();
    let tv_to_estimate: f64 = synthetic_joint
        .iter()
        .zip(estimated.iter())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / 2.0;
    assert!(tv_to_estimate < 1e-3, "rounding error {tv_to_estimate}");

    let (_, true_joint) = dataset.joint_distribution(&cluster).unwrap();
    let tv_to_truth: f64 = synthetic_joint
        .iter()
        .zip(true_joint.iter())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / 2.0;
    assert!(
        tv_to_truth < 0.08,
        "distance to the true distribution {tv_to_truth}"
    );
}

#[test]
fn csv_roundtrip_of_a_randomized_release() {
    // A randomized release can be exported to CSV and re-imported without
    // loss — the release format a data collector would actually publish.
    let dataset = adult(500, 13);
    let protocol = RRIndependent::new(
        dataset.schema().clone(),
        &RandomizationLevel::KeepProbability(0.6),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(14);
    let release = protocol.run(&dataset, &mut rng).unwrap();

    let mut buffer = Vec::new();
    mdrr::data::csv::write_csv(release.randomized().unwrap(), &mut buffer).unwrap();
    let restored = mdrr::data::csv::read_csv(dataset.schema().clone(), buffer.as_slice()).unwrap();
    assert_eq!(&restored, release.randomized().unwrap());
}
