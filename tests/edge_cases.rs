//! Named regression tests for degenerate inputs.
//!
//! The ISSUE-1 bootstrap required the property suites to finally execute;
//! these tests pin the behavior of the degenerate corners those suites (and
//! manual probing) exercise — single-category attributes, empty datasets and
//! zero privacy budgets — so future refactors cannot silently regress them.

use mdrr::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// r = 1: a single-category attribute carries no information; every
/// constructor must either produce the trivial 1×1 matrix or reject the
/// request cleanly — never panic.
#[test]
fn single_category_matrices_are_trivial_or_rejected() {
    let mut rng = StdRng::seed_from_u64(1);

    match RRMatrix::direct(0.7, 1) {
        Ok(matrix) => {
            assert_eq!(matrix.size(), 1);
            assert_eq!(matrix.randomize(0, &mut rng).unwrap(), 0);
            // The only distribution on one category is the point mass.
            let estimate = estimate_from_reports(&matrix, &[0, 0, 0]).unwrap();
            assert_eq!(estimate, vec![1.0]);
        }
        Err(_) => { /* a clean rejection is equally acceptable */ }
    }

    if let Ok(matrix) = RRMatrix::from_epsilon(2.0, 1) {
        assert_eq!(matrix.size(), 1)
    }
}

/// ε = 0 is the degenerate "no privacy budget" corner: the mechanism is the
/// uniform response matrix (legal as a *randomizer* — it reveals nothing),
/// but it is singular, so inversion-based estimation must fail cleanly and
/// the iterative Bayesian update must converge to the uninformative uniform
/// distribution rather than fabricate NaNs.
#[test]
fn zero_epsilon_matrix_randomizes_but_cannot_be_inverted() {
    let matrix = RRMatrix::from_epsilon(0.0, 3).unwrap();
    assert_eq!(matrix.epsilon(), 0.0);

    let lambda = vec![0.5, 0.3, 0.2];
    // Equation (2) needs P⁻¹, which does not exist at ε = 0.
    assert!(matrix.estimate_true_distribution(&lambda).is_err());
    assert!(estimate_proper(&matrix, &lambda).is_err());
    // The IBU fixed point exists and is the uniform prior: ε = 0 reveals
    // nothing, so nothing can be learned.
    let ibu = iterative_bayesian_update(&matrix, &lambda, 200, 1e-12).unwrap();
    for frequency in &ibu {
        assert!((frequency - 1.0 / 3.0).abs() < 1e-9, "{ibu:?}");
    }

    // Negative budgets stay rejected.
    assert!(RRMatrix::from_epsilon(-1.0, 3).is_err());
    assert!(RRMatrix::from_epsilon(f64::NAN, 3).is_err());
}

/// A keep probability of exactly 1/r makes the uniform-keep matrix
/// uniform, hence singular; estimation must fail cleanly, not panic or
/// return NaNs.
#[test]
fn uniform_keep_at_one_over_r_cannot_be_inverted() {
    let matrix = match RRMatrix::uniform_keep(1.0 / 3.0, 3) {
        Ok(matrix) => matrix,
        // Rejecting the singular parameterisation outright is also fine.
        Err(_) => return,
    };
    let lambda = vec![1.0 / 3.0; 3];
    if let Ok(estimate) = matrix.estimate_true_distribution(&lambda) {
        assert!(
            estimate.iter().all(|x| x.is_finite()),
            "singular estimation must not fabricate NaNs: {estimate:?}"
        );
    }
}

/// Empty report columns must be rejected by the estimator entry point (a
/// frequency estimate from zero reports is undefined — 0/0).
#[test]
fn empty_report_column_is_rejected() {
    let matrix = RRMatrix::direct(0.7, 3).unwrap();
    assert!(estimate_from_reports(&matrix, &[]).is_err());
    assert!(empirical_distribution(&[], 3).is_err());
}

/// Empty datasets: schema-level operations keep working, frequency
/// estimates are rejected cleanly.
#[test]
fn empty_dataset_operations_do_not_panic() {
    let schema = adult_schema();
    let dataset = Dataset::empty(schema);
    assert_eq!(dataset.n_records(), 0);
    assert_eq!(dataset.n_attributes(), 8);
    // Marginal counts of nothing are all-zero …
    let counts = dataset.marginal_counts(0).unwrap();
    assert!(counts.iter().all(|&c| c == 0));
    // … and the marginal distribution falls back to uniform (the documented
    // empty-dataset convention) instead of dividing 0/0.
    let distribution = dataset.marginal_distribution(0).unwrap();
    assert!(distribution.iter().all(|p| p.is_finite()));
    assert!((distribution.iter().sum::<f64>() - 1.0).abs() < 1e-9);
}

/// Running a protocol over an empty dataset must fail cleanly instead of
/// dividing by the record count.
#[test]
fn protocols_reject_empty_datasets() {
    let mut rng = StdRng::seed_from_u64(5);
    let dataset = Dataset::empty(adult_schema());
    let protocol = RRIndependent::new(
        dataset.schema().clone(),
        &RandomizationLevel::KeepProbability(0.7),
    )
    .unwrap();
    assert!(protocol.run(&dataset, &mut rng).is_err());
}

/// Mixed-radix codec with cardinality-1 components: the joint domain of
/// `[1, 3, 1]` behaves exactly like the domain of `[3]`.
#[test]
fn joint_domain_tolerates_cardinality_one_components() {
    let domain = JointDomain::new(&[1, 3, 1]).unwrap();
    assert_eq!(domain.size(), 3);
    for code in 0..3 {
        let tuple = domain.decode(code).unwrap();
        assert_eq!(domain.encode(&tuple).unwrap(), code);
        assert_eq!(tuple[0], 0);
        assert_eq!(tuple[2], 0);
    }
}

/// The simplex projection of an all-non-positive vector (every coordinate
/// clamps to zero) must not return NaNs from the 0/0 rescale.
#[test]
fn simplex_projection_of_all_nonpositive_vector_is_clean() {
    match mdrr::math::project_clamp_rescale(&[-1.0, -2.0, 0.0]) {
        Ok(projection) => {
            assert!(
                mdrr::math::is_probability_vector(&projection, 1e-9),
                "{projection:?}"
            );
        }
        Err(_) => { /* a clean rejection is acceptable */ }
    }
    // The empty vector has no probability simplex at all.
    assert!(mdrr::math::project_clamp_rescale(&[]).is_err());
}

/// A privacy accountant with no recorded releases: total budget must be
/// zero under both composition rules, not a fold over an empty max.
#[test]
fn empty_accountant_reports_zero_budget() {
    let accountant = PrivacyAccountant::new();
    assert!(accountant.is_empty());
    assert_eq!(accountant.total(Composition::Sequential), 0.0);
    assert_eq!(accountant.total(Composition::Parallel), 0.0);
}
