//! Property-based integration tests of the privacy-relevant invariants,
//! exercised through the umbrella crate.

use mdrr::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Expression (4) with equality: the optimal matrix built for ε reports
    /// exactly ε, for any domain size.
    #[test]
    fn epsilon_matrices_attain_their_budget(eps in 0.05f64..8.0, r in 2usize..500) {
        let matrix = RRMatrix::from_epsilon(eps, r).unwrap();
        prop_assert!((matrix.epsilon() - eps).abs() < 1e-7);
        prop_assert!(matrix.to_matrix().is_row_stochastic(1e-9));
    }

    /// The equivalent-risk construction of Section 6.3.2 preserves the total
    /// budget for any partition of any schema.
    #[test]
    fn equivalent_risk_preserves_total_budget(p in 0.05f64..0.95, split in 1usize..7) {
        let schema = adult_schema();
        let independent = RRIndependent::new(schema.clone(), &RandomizationLevel::KeepProbability(p)).unwrap();
        let epsilons = independent.epsilons();
        // Deterministic partition controlled by `split`: attributes i with
        // i % split == k share a cluster.
        let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); split];
        for attribute in 0..schema.len() {
            clusters[attribute % split].push(attribute);
        }
        clusters.retain(|c| !c.is_empty());
        let clustering = Clustering::new(clusters, schema.len()).unwrap();
        let protocol = RRClusters::with_equivalent_risk(schema, clustering, &epsilons).unwrap();
        let total_independent: f64 = epsilons.iter().sum();
        let total_clusters: f64 = protocol.matrices().iter().map(|m| m.epsilon()).sum();
        prop_assert!((total_independent - total_clusters).abs() < 1e-6);
    }

    /// The randomized output of a party never depends on other parties:
    /// randomizing the same record with the same RNG state yields the same
    /// response regardless of what the rest of the dataset contains.
    #[test]
    fn local_randomization_is_independent_of_other_records(seed in any::<u64>(), value in 0u32..16) {
        let matrix = RRMatrix::uniform_keep(0.5, 16).unwrap();
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let a = matrix.randomize(value, &mut rng_a).unwrap();
        let b = matrix.randomize(value, &mut rng_b).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Sequential composition is additive and parallel composition takes the
    /// maximum, whatever the individual budgets are.
    #[test]
    fn composition_rules(budgets in prop::collection::vec(0.0f64..5.0, 1..10)) {
        let mut accountant = PrivacyAccountant::new();
        for (index, &epsilon) in budgets.iter().enumerate() {
            accountant.record(format!("release {index}"), epsilon);
        }
        let sum: f64 = budgets.iter().sum();
        let max: f64 = budgets.iter().cloned().fold(0.0, f64::max);
        prop_assert!((accountant.total(Composition::Sequential) - sum).abs() < 1e-9);
        prop_assert!((accountant.total(Composition::Parallel) - max).abs() < 1e-9);
    }

    /// RR-Adjustment is a post-processing step: it never changes the
    /// randomized records, only their weights, and the weights always form a
    /// probability vector.
    #[test]
    fn adjustment_is_pure_post_processing(seed in any::<u64>(), n in 50usize..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dataset = AdultSynthesizer::new(n).unwrap().generate(&mut rng);
        let protocol = RRIndependent::new(dataset.schema().clone(), &RandomizationLevel::KeepProbability(0.6)).unwrap();
        let release = protocol.run(&dataset, &mut rng).unwrap();
        let targets = AdjustmentTarget::from_independent(&release);
        let adjusted = rr_adjustment(release.randomized().unwrap(), &targets, AdjustmentConfig::default()).unwrap();
        prop_assert_eq!(adjusted.randomized(), release.randomized().unwrap());
        prop_assert!((adjusted.weights().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(adjusted.weights().iter().all(|&w| w >= 0.0));
    }
}
