//! Offline vendored shim of [`serde_json`](https://crates.io/crates/serde_json):
//! renders and parses JSON over the vendored `serde` [`Value`] tree.
//!
//! Supports exactly what the mdrr workspace uses: [`to_string`],
//! [`to_string_pretty`] and [`from_str`]. Floats are written with Rust's
//! shortest-roundtrip formatting, so `to_string` → `from_str` round-trips
//! are exact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// A serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value as compact JSON.
///
/// # Errors
/// Fails on non-finite floats (JSON has no representation for them).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes a value as human-readable, two-space-indented JSON.
///
/// # Errors
/// Fails on non-finite floats.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
/// Reports malformed JSON (with a byte offset) or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render(
    value: &Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => {
            let _ = write!(out, "{i}");
        }
        Value::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new(format!("cannot serialize non-finite float {x}")));
            }
            // `{:?}` is Rust's shortest-roundtrip formatting and always
            // contains a `.` or an exponent, keeping the float/int
            // distinction visible in the output.
            let _ = write!(out, "{x:?}");
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (k, (key, item)) in fields.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after the JSON value"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: runs of plain UTF-8 bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: JSON escapes astral characters
                            // as two \uXXXX units.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                let combined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid unicode escape"))?);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.error("truncated unicode escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &x in &[0.1, 1.0 / 3.0, 1e-300, 123456.789e10, f64::MIN_POSITIVE] {
            let text = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&text).unwrap(), x, "text was {text}");
        }
    }

    #[test]
    fn vectors_and_options_roundtrip() {
        let v = vec![1u64, 2, 3];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&text).unwrap(), v);
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("3").unwrap(), Some(3));
    }

    #[test]
    fn pretty_output_is_indented_and_parses_back() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::U64(1)),
            (
                "b".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"a\": 1"), "got: {text}");
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("\"abc").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
