//! Offline vendored shim of [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides the API surface the mdrr benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`black_box`], [`criterion_group!`]
//! and [`criterion_main!`] — backed by a simple wall-clock timer instead of
//! upstream's statistical machinery. Each benchmark is calibrated to run for
//! roughly [`Criterion::measurement_time`] and reports the mean time per
//! iteration.
//!
//! The point of the shim is that `cargo bench` (and `cargo build
//! --all-targets`) works offline and produces useful relative numbers;
//! swap in real criterion for publication-grade statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver: hands out groups and runs standalone benchmarks.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Sets the target wall-clock time spent measuring each benchmark.
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.measurement_time = time;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n{name}");
        BenchmarkGroup {
            criterion: self,
            name,
            measurement_time: None,
        }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.measurement_time, routine);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    /// Group-scoped override; `None` falls back to the parent's setting.
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's timing loop is adaptive,
    /// so the requested sample count does not change anything.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time for the benchmarks of this group only
    /// (like upstream criterion, it does not affect later groups).
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = Some(time);
        self
    }

    fn effective_measurement_time(&self) -> Duration {
        self.measurement_time
            .unwrap_or(self.criterion.measurement_time)
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.effective_measurement_time(), &mut routine);
        self
    }

    /// Runs one benchmark parameterised by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.effective_measurement_time(), |b| {
            routine(b, input)
        });
        self
    }

    /// Ends the group (purely cosmetic in the shim).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id like `"function_name/parameter"`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted where a benchmark id is expected.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Drives the timing loop of one benchmark.
pub struct Bencher {
    measurement_time: Duration,
    mean_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, adapting the iteration count to fill the
    /// measurement window.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibration: find an iteration count that takes ≳ 1 ms.
        let mut batch: u64 = 1;
        let batch_floor = Duration::from_millis(1);
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= batch_floor || batch >= 1 << 30 {
                break;
            }
            batch = batch.saturating_mul(if elapsed.is_zero() {
                16
            } else {
                ((batch_floor.as_nanos() / elapsed.as_nanos().max(1)) as u64).clamp(2, 16)
            });
        }

        // Measurement: repeat batches until the window is filled.
        let mut total = Duration::ZERO;
        let mut iterations: u64 = 0;
        while total < self.measurement_time {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iterations += batch;
        }
        self.mean_ns = total.as_nanos() as f64 / iterations as f64;
        self.iterations = iterations;
    }
}

fn run_benchmark<F>(label: &str, measurement_time: Duration, mut routine: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        measurement_time,
        mean_ns: f64::NAN,
        iterations: 0,
    };
    routine(&mut bencher);
    if bencher.iterations == 0 {
        println!("  {label:<48} (no measurement: Bencher::iter was never called)");
        return;
    }
    let mean = bencher.mean_ns;
    let human = if mean < 1_000.0 {
        format!("{mean:.1} ns")
    } else if mean < 1_000_000.0 {
        format!("{:.2} us", mean / 1_000.0)
    } else if mean < 1_000_000_000.0 {
        format!("{:.2} ms", mean / 1_000_000.0)
    } else {
        format!("{:.3} s", mean / 1_000_000_000.0)
    };
    println!(
        "  {label:<48} {human:>12}/iter ({} iterations)",
        bencher.iterations
    );
}

/// Declares a group-runner function that executes each listed benchmark
/// function with a fresh default [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_produces_a_finite_mean() {
        let mut criterion = Criterion::default().measurement_time(Duration::from_millis(5));
        criterion.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = criterion.benchmark_group("group");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
