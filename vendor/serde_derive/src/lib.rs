//! Offline vendored shim of `serde_derive`: hand-rolled `#[derive(Serialize)]`
//! and `#[derive(Deserialize)]` macros (no `syn`/`quote`, which are
//! unavailable offline).
//!
//! Supported shapes — exactly what the mdrr workspace uses:
//!
//! * non-generic structs with named fields, tuple structs, unit structs;
//! * non-generic enums with unit, tuple and struct variants
//!   (externally-tagged representation, like upstream serde's default).
//!
//! Generic types and `#[serde(...)]` attributes are *not* supported and
//! produce a compile error pointing here.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving type.
enum Shape {
    /// `struct S { a: A, b: B }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct S(A, B);` (arity recorded, field types irrelevant)
    TupleStruct { name: String, arity: usize },
    /// `struct S;`
    UnitStruct { name: String },
    /// `enum E { ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// One enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives the shim's `serde::Serialize` (tree-building) impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the shim's `serde::Deserialize` (tree-reading) impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Shape) -> String) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen(&shape)
            .parse()
            .expect("serde_derive shim generated invalid Rust"),
        Err(message) => format!("compile_error!({message:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes_and_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde shim: expected `struct` or `enum`, found {other:?}"
            ))
        }
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde shim: expected a type name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim: generic type `{name}` is not supported by the vendored serde_derive"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Shape::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Shape::TupleStruct {
                    name,
                    arity: count_top_level_items(g.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::UnitStruct { name }),
            other => Err(format!("serde shim: unsupported struct body {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Shape::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!(
                "serde shim: expected an enum body, found {other:?}"
            )),
        },
        other => Err(format!("serde shim: cannot derive for `{other}` items")),
    }
}

/// Advances past outer attributes (`#[...]`) and a visibility qualifier
/// (`pub`, `pub(crate)`, …).
fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // `#`
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1; // `[...]`
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` bodies, returning the field names in order.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde shim: expected a field name, found {other:?}"
                ))
            }
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "serde shim: expected `:` after `{field}`, found {other:?}"
                ))
            }
        }
        skip_type_until_comma(&tokens, &mut i);
        fields.push(field);
    }
    Ok(fields)
}

/// Advances past a type expression up to (and over) the next top-level comma,
/// tracking `<`/`>` nesting so commas inside generics do not terminate early.
fn skip_type_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*i) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Counts comma-separated items at the top level of a token stream.
fn count_top_level_items(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for token in &tokens {
        trailing_comma = false;
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde shim: expected a variant name, found {other:?}"
                ))
            }
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_items(g.stream());
                i += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the separating comma.
        skip_type_until_comma(&tokens, &mut i);
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string())"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binders: Vec<String> =
                                (0..*arity).map(|k| format!("__f{k}")).collect();
                            let inner = if *arity == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![({vname:?}.to_string(), {inner})])",
                                binders.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binders = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binders} }} => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Object(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             value.get({f:?}).unwrap_or(&::serde::Value::Null)\
                         ).map_err(|e| ::serde::DeError::new(\
                             format!(\"{name}.{f}: {{e}}\")))?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match value {{\n\
                             ::serde::Value::Object(_) => Ok({name} {{ {} }}),\n\
                             other => Err(::serde::DeError::expected(\"an object\", other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(value)?))")
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                    .collect();
                format!(
                    "match value {{\n\
                         ::serde::Value::Array(items) if items.len() == {arity} => Ok({name}({})),\n\
                         other => Err(::serde::DeError::expected(\"an array of length {arity}\", other)),\n\
                     }}",
                    items.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ Ok({name}) }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(arity) => {
                            let body = if *arity == 1 {
                                format!("Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?))")
                            } else {
                                let items: Vec<String> = (0..*arity)
                                    .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                                    .collect();
                                format!(
                                    "match inner {{\n\
                                         ::serde::Value::Array(items) if items.len() == {arity} => Ok({name}::{vname}({})),\n\
                                         other => Err(::serde::DeError::expected(\"an array of length {arity}\", other)),\n\
                                     }}",
                                    items.join(", ")
                                )
                            };
                            Some(format!("{vname:?} => {{ {body} }},"))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                             inner.get({f:?}).unwrap_or(&::serde::Value::Null))?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => Ok({name}::{vname} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            let inner_binder = if tagged_arms.is_empty() { "_inner" } else { "inner" };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => Err(::serde::DeError::new(format!(\"unknown {name} variant {{other:?}}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                                 let (tag, {inner_binder}) = &fields[0];\n\
                                 match tag.as_str() {{\n\
                                     {}\n\
                                     other => Err(::serde::DeError::new(format!(\"unknown {name} variant {{other:?}}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::DeError::expected(\"a {name} variant\", other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    }
}
