//! Offline vendored shim of the [`serde`](https://crates.io/crates/serde)
//! crate.
//!
//! This build environment cannot reach crates.io, so this crate provides a
//! *simplified* serialization model that is API-compatible with the way the
//! mdrr workspace uses serde: `#[derive(Serialize, Deserialize)]` on plain
//! structs and enums, plus `serde_json::{to_string, to_string_pretty,
//! from_str}` round-trips.
//!
//! Instead of upstream's visitor-based zero-copy model, [`Serialize`]
//! converts a value into an owned tree of [`Value`] nodes and
//! [`Deserialize`] reads it back. The `serde_json` shim then renders and
//! parses that tree. Numbers keep their integer/float identity so that
//! round-trips are exact (Rust's shortest-roundtrip float formatting is used
//! for `f64`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value: the common tree both shims exchange.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for `None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer (used when the value does not fit `i64`).
    U64(u64),
    /// A double-precision float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map of field name → value.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A deserialization failure: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Builds an error from any printable message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// Builds the canonical "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        let kind = match found {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::I64(_) | Value::U64(_) => "an integer",
            Value::F64(_) => "a float",
            Value::Str(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        };
        DeError::new(format!("expected {what}, found {kind}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs a value, reporting a [`DeError`] on shape mismatch.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("a boolean", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = match value {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    other => return Err(DeError::expected("an unsigned integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = match value {
                    Value::I64(i) => *i,
                    Value::U64(u) => i64::try_from(*u)
                        .map_err(|_| DeError::new(format!("integer {u} out of range")))?,
                    other => return Err(DeError::expected("an integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::F64(x) => Ok(*x as $t),
                    Value::I64(i) => Ok(*i as $t),
                    Value::U64(u) => Ok(*u as $t),
                    other => Err(DeError::expected("a number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("a string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("a one-character string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("an array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected an array of length {N}, found {len}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::expected("an array of length 2", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError::expected("an array of length 3", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
            self.3.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize for (A, B, C, D) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) if items.len() == 4 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
                D::from_value(&items[3])?,
            )),
            other => Err(DeError::expected("an array of length 4", other)),
        }
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("an object", other)),
        }
    }
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort entries by key.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("an object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}
