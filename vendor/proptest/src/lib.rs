//! Offline vendored shim of [`proptest`](https://crates.io/crates/proptest).
//!
//! This build environment cannot reach crates.io, so this crate provides a
//! miniature property-testing harness with the API surface the mdrr test
//! suites use: the [`proptest!`] macro, range/tuple/`vec`/`any`/[`Just`]
//! strategies, `prop_map` / `prop_flat_map` combinators and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the plain `assert!`
//!   message; the drawn values are *not* echoed and no minimization is
//!   attempted. Include the relevant values in the assertion message
//!   (`prop_assert!(cond, "{x:?}")`) when they matter for diagnosis.
//! * **Deterministic seeding.** Each test's RNG is seeded from a hash of
//!   the test's name, so failures reproduce exactly across runs (and can
//!   be replayed under a debugger); there is no persistence file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use config::ProptestConfig;
pub use strategy::{Just, Strategy};

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Run-time configuration of a `proptest!` block.
pub mod config {
    /// Mirrors the fields of upstream `ProptestConfig` that the workspace
    /// uses.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream's default; individual suites lower it.
            ProptestConfig { cases: 256 }
        }
    }
}

/// Strategies: composable recipes for generating random values.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// A recipe for generating values of an associated type.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms every generated value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then runs a strategy *derived from it* —
        /// the way to express dependent dimensions.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Keeps only values satisfying `predicate`, redrawing otherwise
        /// (gives up after 1000 attempts).
        fn prop_filter<F>(self, whence: &'static str, predicate: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                predicate,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn sample(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        predicate: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn sample(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1000 {
                let candidate = self.inner.sample(rng);
                if (self.predicate)(&candidate) {
                    return candidate;
                }
            }
            panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    if lo == hi {
                        // Degenerate but legal: `x in 1.5..=1.5` pins x.
                        return lo;
                    }
                    // The exact upper endpoint has probability zero anyway,
                    // so the half-open draw is distributionally equivalent.
                    rng.gen_range(lo..hi)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($S:ident : $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_uniform {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }

    impl_arbitrary_uniform!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            // Unit-interval floats: finite and well-behaved, which is what
            // the suites that use `any::<f64>()` want in practice.
            rng.gen()
        }
    }

    /// See [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A half-open range of admissible collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors whose elements are drawn from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            assert!(
                self.size.lo < self.size.hi,
                "empty size range in prop::collection::vec"
            );
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The per-test runner machinery used by the [`proptest!`] expansion.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds the deterministic RNG for one property, seeded from the
    /// test's name (FNV-1a) so different properties explore different
    /// streams but each is reproducible.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(hash)
    }
}

/// Declares property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `config.cases` random draws.
///
/// An optional leading `#![proptest_config(expr)]` sets the configuration for
/// every property in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::config::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($binding:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $binding = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a property-level condition (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right); };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+); };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right); };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+); };
}

/// Skips the current case when an assumption does not hold.
///
/// The shim implements this as a plain loop `continue`, which is valid
/// because the `proptest!` expansion runs each case in a `for` loop.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn vec_and_tuple_strategies_compose(v in prop::collection::vec((0u32..5, 0u32..4), 2..20)) {
            prop_assert!((2..20).contains(&v.len()));
            for (a, b) in v {
                prop_assert!(a < 5 && b < 4);
            }
        }

        #[test]
        fn flat_map_expresses_dependent_dimensions(
            (len, v) in (1usize..8).prop_flat_map(|len| (Just(len), prop::collection::vec(0u32..10, len)))
        ) {
            prop_assert_eq!(v.len(), len);
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }
}
