//! Offline vendored shim of the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This build environment cannot reach crates.io, so this crate provides the
//! exact subset of the rand **0.8** API surface the mdrr workspace uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`, `fill`-free;
//! * [`SeedableRng::seed_from_u64`] and [`SeedableRng::from_entropy`];
//! * [`rngs::StdRng`] — here a xoshiro256++ generator seeded via SplitMix64
//!   (deterministic for a given seed, exactly like the real `StdRng`, though
//!   the stream differs from upstream's ChaCha-based one);
//! * [`seq::SliceRandom`] with `shuffle` and `choose`;
//! * [`distributions::Standard`] for `f64`, `f32`, `bool` and the unsigned
//!   integer types.
//!
//! The generators here are *not* cryptographically secure; they are
//! statistically sound PRNGs (xoshiro256++) which is all the randomized
//! response simulations require. Swapping this shim for the real crate is a
//! one-line change in the workspace manifest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use distributions::{unit_f64_from_u64, Distribution, Standard};

/// The core of a random number generator: a source of uniformly random bits.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `out` with consecutive [`RngCore::next_u64`] values.
    ///
    /// Semantically exactly `for slot in out { *slot = self.next_u64() }`,
    /// but callers holding the generator behind `&mut dyn RngCore` pay one
    /// virtual call per *buffer* instead of one per draw — the concrete
    /// generator's `next_u64` inlines into this default body.  (This
    /// method is an extension over the real rand 0.8 surface, used by the
    /// workspace's batched encoders; swapping in the real crate would need
    /// a one-line polyfill.)
    fn fill_u64(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.next_u64();
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_u64(&mut self, out: &mut [u64]) {
        (**self).fill_u64(out)
    }
}

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from the given range (half-open `lo..hi`
    /// or inclusive `lo..=hi`). Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a uniformly distributed sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform value in `[0, span)` by rejection sampling (no modulo
/// bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    assert!(span > 0, "cannot sample from an empty range");
    // Largest multiple of `span` that fits in a u64; values at or above it
    // are rejected so every residue class is equally likely.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                if span == 0 {
                    // Full domain: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i32: u32, i64: u64, isize: usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit: $t = Standard.sample(rng);
                let value = self.start + (self.end - self.start) * unit;
                // `start + span * u` can round up to `end` when the
                // endpoints are large relative to the span; enforce the
                // half-open contract explicitly.
                if value < self.end {
                    value
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;

    /// Builds a generator seeded from ambient entropy (wall clock mixed
    /// with a process-wide counter, so calls in the same clock tick still
    /// get distinct streams — good enough for simulations; never use for
    /// secrets).
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQUENCE: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        let unique = SEQUENCE
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
        Self::seed_from_u64(nanos ^ unique)
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++, seeded via SplitMix64.
    ///
    /// Deterministic for a given seed. Not cryptographically secure (the
    /// upstream `StdRng` is ChaCha12; this shim trades that for zero
    /// dependencies — the statistical quality is ample for simulation).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The generator's raw xoshiro256++ state.  Together with
        /// [`StdRng::from_state`] this lets long-running simulations
        /// persist their exact position in the draw stream across process
        /// restarts (checkpoint/resume).  (An extension over the real
        /// rand 0.8 surface, like [`super::RngCore::fill_u64`]; the real
        /// `StdRng` would persist its serialized ChaCha state instead.)
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`StdRng::state`], continuing the exact same draw stream.
        /// Returns `None` for the all-zero state, which is not reachable
        /// from any seed (xoshiro256++ would emit zeros forever).
        pub fn from_state(s: [u64; 4]) -> Option<Self> {
            if s == [0; 4] {
                None
            } else {
                Some(StdRng { s })
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API compatibility: the shim's small and standard
    /// generators are the same type.
    pub type SmallRng = StdRng;
}

/// A lazily seeded generator analogous to `rand::thread_rng()` (fresh
/// entropy each call; this shim does not cache per-thread state).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

/// Distributions over primitive types.
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution: `[0, 1)` for floats, the full
    /// domain for integers and `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64_from_u64(rng.next_u64())
        }
    }

    /// The exact `u64 → [0, 1)` mapping `Standard` uses for `f64` (53
    /// uniform bits, full double precision).  Public so bulk consumers
    /// that pre-draw raw u64 buffers via [`super::RngCore::fill_u64`]
    /// produce bit-identical floats to per-value `rng.gen::<f64>()` calls.
    #[inline]
    pub fn unit_f64_from_u64(x: u64) -> f64 {
        (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Sequence-related random operations.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        use super::RngCore;
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        use super::RngCore;
        let mut a = StdRng::seed_from_u64(11);
        for _ in 0..57 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state()).unwrap();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // The all-zero state is unreachable and rejected.
        assert!(StdRng::from_state([0; 4]).is_none());
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
        for _ in 0..1_000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
