//! # mdrr — Multi-Dimensional Randomized Response
//!
//! A from-scratch Rust implementation of *Multi-Dimensional Randomized
//! Response* (Domingo-Ferrer & Soria-Comas): local anonymization of
//! multi-attribute categorical microdata with randomized response (RR),
//! including every protocol and substrate the paper describes:
//!
//! * the RR mechanism itself — randomization matrices, unbiased frequency
//!   estimation (Equation (2)), simplex projection, iterative Bayesian
//!   update, ε-differential-privacy accounting and the analytic error
//!   bounds of Sections 2.3/3.3 ([`core`]);
//! * the multi-dimensional protocols — RR-Independent, RR-Joint,
//!   RR-Clusters with Algorithm 1 attribute clustering, RR-Adjustment
//!   (Algorithm 2), the three privacy-preserving dependence-estimation
//!   procedures of Section 4 and the secure-sum substrate they rely on
//!   ([`protocols`]);
//! * the categorical dataset model, the mixed-radix joint-domain codec, CSV
//!   I/O and the synthetic Adult generator used by the experiments
//!   ([`data`]);
//! * the numerical substrate — dense linear algebra, χ² special functions,
//!   contingency statistics ([`math`]);
//! * the sharded streaming subsystem — client-side report encoders,
//!   mergeable count-vector accumulators and mid-stream snapshots that are
//!   numerically identical to the batch estimates ([`stream`]);
//! * the durable snapshot store — a versioned, checksummed on-disk format
//!   for accumulator state with crash-safe atomic writes, checkpoint/
//!   restore of sharded collectors and exact cross-process shard merging
//!   ([`store`]);
//! * the collector network daemon — a thread-per-connection TCP server
//!   speaking the length-framed, CRC-checked wire protocol of
//!   `docs/WIRE.md`, with backpressure windows, typed rejection of every
//!   malformed frame and graceful drain-to-checkpoint ([`serve`]; the
//!   client-encoder SDK lives in [`stream::wire`] / `stream::WireClient`);
//! * the observability substrate — lock-free counters/gauges/histograms,
//!   an injected monotonic clock and a bounded event journal ([`obs`]);
//! * the evaluation harness that regenerates every table and figure of the
//!   paper ([`eval`]).
//!
//! ## Quickstart
//!
//! Estimate the distribution of a sensitive attribute from locally
//! randomized responses:
//!
//! ```
//! use mdrr::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // 1. Each respondent randomizes her answer with an ε-DP matrix…
//! let matrix = RRMatrix::from_epsilon(2.0, 3)?;
//! let mut rng = StdRng::seed_from_u64(1);
//! let true_answers: Vec<u32> = (0..20_000).map(|i| if i % 10 < 6 { 0 } else if i % 10 < 9 { 1 } else { 2 }).collect();
//! let reported: Vec<u32> = true_answers
//!     .iter()
//!     .map(|&x| matrix.randomize(x, &mut rng))
//!     .collect::<Result<_, _>>()?;
//!
//! // 2. …and the collector recovers the distribution of the true answers.
//! let estimate = estimate_from_reports(&matrix, &reported)?;
//! assert!((estimate[0] - 0.6).abs() < 0.05);
//! assert!((estimate[2] - 0.1).abs() < 0.05);
//! # Ok::<(), mdrr::core::CoreError>(())
//! ```
//!
//! For multi-attribute releases see [`protocols::RRIndependent`],
//! [`protocols::RRClusters`] and the runnable programs in `examples/`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mdrr_core as core;
pub use mdrr_data as data;
pub use mdrr_eval as eval;
pub use mdrr_math as math;
pub use mdrr_obs as obs;
pub use mdrr_protocols as protocols;
pub use mdrr_serve as serve;
pub use mdrr_store as store;
pub use mdrr_stream as stream;

/// The most commonly used items, re-exported for convenient glob imports.
pub mod prelude {
    pub use mdrr_core::{
        empirical_distribution, estimate_from_reports, estimate_proper, iterative_bayesian_update,
        Composition, CoreError, PrivacyAccountant, RRMatrix,
    };
    pub use mdrr_data::{
        adult_schema, AdultSynthesizer, Attribute, AttributeKind, DataError, Dataset, JointDomain,
        RecordsBuffer, RecordsView, Schema,
    };
    pub use mdrr_eval::{CountQuery, ExperimentConfig};
    pub use mdrr_protocols::{
        cluster_attributes, rr_adjustment, validate_assignment, AdjustmentConfig, AdjustmentTarget,
        Clustering, ClusteringConfig, EmpiricalEstimator, FrequencyEstimator, MdrrError, Protocol,
        ProtocolError, ProtocolSpec, RRAdjustment, RRClusters, RRIndependent, RRJoint,
        RandomizationLevel, Release,
    };
    pub use mdrr_serve::{CollectorServer, DrainedCollector, ServeConfig};
    pub use mdrr_store::{
        merge_snapshot_files, merge_snapshots, Snapshot, SnapshotReader, SnapshotWriter, StoreError,
    };
    pub use mdrr_stream::{
        Accumulator, CheckpointManifest, ClientConfig, Report, ReportBatch, RestoredCheckpoint,
        ShardedCollector, StreamSnapshot, WireClient, WireError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_main_entry_points() {
        // A compile-time smoke test: the most important types are reachable
        // through the prelude.
        let schema = adult_schema();
        assert_eq!(schema.len(), 8);
        let matrix = RRMatrix::direct(0.7, 4).unwrap();
        assert_eq!(matrix.size(), 4);
        let accountant = PrivacyAccountant::new();
        assert!(accountant.is_empty());
    }
}
