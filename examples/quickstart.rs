//! Quickstart: a single-attribute randomized-response survey, end to end.
//!
//! Scenario: `n` respondents are asked a sensitive question with three
//! possible answers ("never", "occasionally", "frequently").  Each
//! respondent randomizes her answer locally with an ε-differentially-private
//! matrix before submitting it; the collector then recovers an unbiased
//! estimate of the distribution of the *true* answers from the pooled
//! randomized submissions (Equation (2) of the paper plus the Section 6.4
//! projection).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mdrr::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 50_000usize;
    let epsilon = 1.5f64;
    let categories = ["never", "occasionally", "frequently"];
    let true_distribution = [0.72, 0.22, 0.06];

    println!("single-attribute RR survey: {n} respondents, epsilon = {epsilon}\n");

    // The randomization matrix is public: p_uv = Pr(report v | true value u).
    let matrix = RRMatrix::from_epsilon(epsilon, categories.len())?;
    println!("randomization matrix (rows = true value, columns = report):");
    for u in 0..categories.len() {
        let row: Vec<String> = (0..categories.len())
            .map(|v| format!("{:.3}", matrix.prob(u, v)))
            .collect();
        println!("  {:>13}: [{}]", categories[u], row.join(", "));
    }
    println!(
        "differential privacy of one response: epsilon = {:.3}\n",
        matrix.epsilon()
    );

    // Each respondent holds one true answer and submits a randomized one.
    let mut rng = StdRng::seed_from_u64(2024);
    let mut reports = Vec::with_capacity(n);
    let mut true_counts = [0usize; 3];
    for _ in 0..n {
        let draw: f64 = rng.gen();
        let true_answer = if draw < true_distribution[0] {
            0
        } else if draw < true_distribution[0] + true_distribution[1] {
            1
        } else {
            2
        };
        true_counts[true_answer as usize] += 1;
        reports.push(matrix.randomize(true_answer, &mut rng)?);
    }

    // The collector only ever sees `reports`.
    let observed = empirical_distribution(&reports, categories.len())?;
    let estimated = estimate_from_reports(&matrix, &reports)?;

    println!(
        "{:>13} {:>12} {:>12} {:>12}",
        "answer", "true", "randomized", "estimated"
    );
    for (i, name) in categories.iter().enumerate() {
        println!(
            "{:>13} {:>12.4} {:>12.4} {:>12.4}",
            name,
            true_counts[i] as f64 / n as f64,
            observed[i],
            estimated[i]
        );
    }
    println!(
        "\nThe raw randomized frequencies are biased towards uniform; the Equation (2) estimate\n\
         recovers the true distribution without anyone revealing an individual answer."
    );
    Ok(())
}
