//! Full multi-dimensional release of the (synthetic) Adult data set.
//!
//! This is the paper's headline workflow: `n` parties each hold one census
//! record and want the collector to be able to run exploratory count
//! queries without ever seeing a true record.
//!
//! 1. estimate the pairwise attribute dependences privately (Section 4.1);
//! 2. cluster the attributes with Algorithm 1 (`Tv = 50`, `Td = 0.1`);
//! 3. run RR-Clusters with equivalent-risk matrices (Section 6.3.2);
//! 4. repair the cross-cluster independence assumption with RR-Adjustment
//!    (Algorithm 2);
//! 5. compare count-query answers of RR-Independent, RR-Clusters and
//!    RR-Clusters + Adjustment against the ground truth.
//!
//! ```text
//! cargo run --release --example adult_release
//! ```

use mdrr::prelude::*;
use mdrr::protocols::dependence_via_randomized_attributes;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p = 0.7; // keep probability of the per-attribute randomization
    let mut rng = StdRng::seed_from_u64(7);

    // The true microdata: one record per party.  (Drop in the real Adult
    // with `mdrr::data::csv::read_csv_path(adult_schema(), path)` if you
    // have it.)
    let dataset = AdultSynthesizer::new(32_561)?.generate(&mut rng);
    let schema = dataset.schema().clone();
    println!(
        "synthetic Adult: {} records, {} attributes, joint domain {}",
        dataset.n_records(),
        dataset.n_attributes(),
        schema.joint_domain_size().unwrap()
    );

    // Step 1-2: privacy-preserving dependence estimation + Algorithm 1.
    let dependences = dependence_via_randomized_attributes(&dataset, p, &mut rng)?;
    let clustering = cluster_attributes(
        &dependences.matrix,
        &schema.cardinalities(),
        ClusteringConfig::new(50, 0.1)?,
    )?;
    println!("\nAlgorithm 1 clustering (Tv = 50, Td = 0.1):");
    for cluster in clustering.clusters() {
        let names: Vec<&str> = cluster
            .iter()
            .map(|&a| schema.attribute(a).unwrap().name())
            .collect();
        println!("  {{{}}}", names.join(", "));
    }

    // Step 3: RR-Clusters at the equivalent risk of RR-Independent with p.
    // Protocols are selected declaratively: a ProtocolSpec is plain serde
    // data (swap it for a JSON config file and nothing below changes) and
    // builds an object-safe `dyn Protocol`.
    let level = RandomizationLevel::KeepProbability(p);
    let clusters_spec = ProtocolSpec::clusters(level.clone(), clustering);
    println!(
        "\nprotocol spec (serde round-trippable):\n{}",
        serde_json::to_string_pretty(&clusters_spec).expect("specs serialize")
    );
    let clusters_protocol = clusters_spec.build(&schema)?;
    let clusters_release = clusters_protocol.run(&dataset, &mut rng)?;
    println!("\nprivacy ledger of the RR-Clusters release:");
    println!("{}", clusters_release.accountant());

    // Baseline: RR-Independent at the same per-attribute risk — the same
    // two lines, a different spec.
    let independent_release = ProtocolSpec::independent(level)
        .build(&schema)?
        .run(&dataset, &mut rng)?;

    // Step 4: RR-Adjustment on top of the cluster release.  Every release
    // derives its own Algorithm 2 targets (per-cluster joints here).
    let targets = clusters_release.adjustment_targets()?;
    let adjusted = rr_adjustment(
        clusters_release
            .randomized()
            .expect("batch run releases include the randomized dataset"),
        &targets,
        AdjustmentConfig::default(),
    )?;
    println!(
        "adjustment converged: {} (after {} passes)",
        adjusted.converged(),
        adjusted.iterations()
    );

    // Step 5: answer count queries and compare against the ground truth.
    let truth = EmpiricalEstimator::new(&dataset);
    println!("\ncount-query comparison (sigma = 0.1, two random attributes per query):");
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>20}",
        "query", "true count", "RR-Ind", "RR-Clusters", "RR-Clusters + Adj"
    );
    let mut query_rng = StdRng::seed_from_u64(99);
    for q in 0..8 {
        let query = CountQuery::random(&schema, 0.1, &mut query_rng)?;
        let exact = query.true_count(&dataset)?;
        let ind = query.estimated_count(&independent_release)?;
        let clu = query.estimated_count(&clusters_release)?;
        let adj = query.estimated_count(&adjusted)?;
        println!(
            "{:>8} {:>12.0} {:>14.0} {:>14.0} {:>20.0}",
            format!("#{q}"),
            exact,
            ind,
            clu,
            adj
        );
        let _ = truth; // the ground-truth estimator is used implicitly via true_count
    }

    println!(
        "\nNo party ever revealed a true record: the collector only saw randomized responses,\n\
         yet the released estimates answer exploratory count queries with small error."
    );
    Ok(())
}
