//! Differential-privacy accounting across the MDRR protocols.
//!
//! The paper compares its methods *at an equivalent level of risk*
//! (Section 6.3): the per-attribute budgets of RR-Independent are summed
//! within each cluster to parameterise RR-Clusters.  This example makes the
//! accounting explicit:
//!
//! * the ε of a single randomization matrix (Expression (4));
//! * the sequential-composition total of an RR-Independent release;
//! * the matching total of the equivalent-risk RR-Clusters release;
//! * what the dependence-estimation step of Section 4.1 adds on top;
//! * how the trade-off between ε and the keep probability behaves.
//!
//! ```text
//! cargo run --release --example privacy_accounting
//! ```

use mdrr::core::epsilon_for_keep_probability;
use mdrr::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = adult_schema();
    let p = 0.7;
    let mut rng = StdRng::seed_from_u64(5);
    let dataset = AdultSynthesizer::new(10_000)?.generate(&mut rng);

    // Per-attribute budgets of RR-Independent at keep probability p.
    println!("per-attribute budgets of RR-Independent at p = {p}:");
    let independent = RRIndependent::new(schema.clone(), &RandomizationLevel::KeepProbability(p))?;
    for (attribute, epsilon) in schema.attributes().iter().zip(independent.epsilons()) {
        println!(
            "  {:<16} |A| = {:>2}   epsilon_A = {:>6.3}   (closed form: {:>6.3})",
            attribute.name(),
            attribute.cardinality(),
            epsilon,
            epsilon_for_keep_probability(p, attribute.cardinality())
        );
    }

    // Run the two protocols and compare their ledgers.
    let independent_release = independent.run(&dataset, &mut rng)?;
    println!(
        "\nRR-Independent ledger:\n{}",
        independent_release.accountant()
    );

    let clustering = Clustering::new(
        vec![vec![0, 3], vec![1, 7], vec![2, 4, 6], vec![5]],
        schema.len(),
    )?;
    let clusters =
        RRClusters::with_equivalent_risk(schema.clone(), clustering, &independent.epsilons())?;
    let clusters_release = clusters.run(&dataset, &mut rng)?;
    println!(
        "\nRR-Clusters ledger (equivalent risk, Section 6.3.2):\n{}",
        clusters_release.accountant()
    );

    let diff = (independent_release.accountant().total_sequential()
        - clusters_release.accountant().total_sequential())
    .abs();
    println!(
        "\ntotal budgets differ by {diff:.2e} — the comparison is risk-equivalent by construction."
    );

    // What the dependence-estimation step of Section 4.1 would add.
    let dependence = mdrr::protocols::dependence_via_randomized_attributes(&dataset, p, &mut rng)?;
    let mut full_pipeline = PrivacyAccountant::new();
    full_pipeline.absorb(&dependence.accountant);
    full_pipeline.absorb(clusters_release.accountant());
    println!(
        "\nfull pipeline (dependence estimation + cluster release), sequential composition: {:.3}",
        full_pipeline.total(Composition::Sequential)
    );
    println!(
        "same pipeline if the releases were unlinkable (parallel composition):            {:.3}",
        full_pipeline.total(Composition::Parallel)
    );

    // The ε / keep-probability trade-off for one attribute.
    println!("\nepsilon of the optimal matrix for Education (16 categories) as p varies:");
    for p in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let matrix = RRMatrix::uniform_keep(p, 16)?;
        println!("  p = {p:.1}  ->  epsilon = {:>6.3}", matrix.epsilon());
    }
    Ok(())
}
