//! Re-creating synthetic microdata from an estimated joint distribution.
//!
//! Sections 1 and 3.2 of the paper note that once the joint distribution of
//! the true data has been estimated from the randomized responses, anyone
//! can materialise a synthetic data set by repeating each value combination
//! according to its estimated frequency.  This example does exactly that
//! for the {Marital-status, Relationship, Sex} cluster of the synthetic
//! Adult and then verifies that the synthetic data preserve the
//! within-cluster dependence structure.
//!
//! ```text
//! cargo run --release --example synthetic_regeneration
//! ```

use mdrr::math::ContingencyTable;
use mdrr::prelude::*;
use mdrr::protocols::synthesize_deterministic;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(11);
    let dataset = AdultSynthesizer::new(32_561)?.generate(&mut rng);
    let schema = dataset.schema().clone();

    // The cluster we release jointly: Marital-status (7) × Relationship (6) × Sex (2).
    let cluster = vec![2usize, 4, 6];
    let names: Vec<&str> = cluster
        .iter()
        .map(|&a| schema.attribute(a).unwrap().name())
        .collect();
    println!(
        "releasing cluster {{{}}} with RR-Joint at p = 0.7",
        names.join(", ")
    );

    // Run RR-Clusters with this single explicit cluster plus singletons for the rest.
    let mut clusters: Vec<Vec<usize>> = vec![cluster.clone()];
    for a in 0..schema.len() {
        if !cluster.contains(&a) {
            clusters.push(vec![a]);
        }
    }
    let clustering = Clustering::new(clusters, schema.len())?;
    let protocol =
        RRClusters::with_equivalent_risk_from_keep_probability(schema.clone(), clustering, 0.7)?;
    let release = protocol.run(&dataset, &mut rng)?;

    // Estimated joint distribution of the cluster → synthetic microdata.
    let estimated = release.cluster_distribution(0)?;
    let synthetic = synthesize_deterministic(&schema, &cluster, estimated, dataset.n_records())?;
    println!(
        "synthesized {} records over the projected schema ({} attributes, joint domain {})",
        synthetic.n_records(),
        synthetic.n_attributes(),
        synthetic.schema().joint_domain_size().unwrap()
    );

    // Compare the dependence structure of the true projection vs the synthetic one.
    let true_projection = dataset.project(&cluster)?;
    let v = |ds: &Dataset, i: usize, j: usize| -> f64 {
        let ci = ds.schema().attribute(i).unwrap().cardinality();
        let cj = ds.schema().attribute(j).unwrap().cardinality();
        ContingencyTable::from_codes(ds.column(i).unwrap(), ds.column(j).unwrap(), ci, cj)
            .unwrap()
            .cramers_v()
    };
    println!("\nCramér's V inside the cluster (true vs synthetic):");
    for (i, j, label) in [
        (0usize, 1usize, "Marital × Relationship"),
        (1, 2, "Relationship × Sex"),
        (0, 2, "Marital × Sex"),
    ] {
        println!(
            "  {:<24} true = {:.3}   synthetic = {:.3}",
            label,
            v(&true_projection, i, j),
            v(&synthetic, i, j)
        );
    }

    // Marginals are preserved as well.
    println!("\nMarital-status marginal (true vs synthetic):");
    let true_marginal = true_projection.marginal_distribution(0)?;
    let synthetic_marginal = synthetic.marginal_distribution(0)?;
    for (code, (t, s)) in true_marginal
        .iter()
        .zip(synthetic_marginal.iter())
        .enumerate()
    {
        let label = schema.attribute(2)?.label(code as u32)?;
        println!("  {label:<24} {t:>8.4} {s:>8.4}");
    }

    println!(
        "\nThe synthetic microdata can be shared and analysed like the original cluster while\n\
         every individual response stays protected by the randomized-response mechanism."
    );
    Ok(())
}
