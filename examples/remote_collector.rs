//! A collector daemon and its clients, end to end over loopback TCP.
//!
//! The deployment shape of the paper's local-anonymization model: each
//! respondent randomizes her own record on her own device, and only the
//! randomized report ever crosses the network.  Here one in-process
//! `mdrr-serve` daemon plays the collector and three `WireClient`
//! threads play respondent populations:
//!
//! 1. bind a [`CollectorServer`] on an ephemeral loopback port;
//! 2. each client dials it, handshakes schema + protocol spec, locally
//!    randomizes its records and streams them as length-framed,
//!    CRC-checked batch frames (`docs/WIRE.md`) under the server's
//!    backpressure window;
//! 3. drain the daemon to an `mdrr-store` checkpoint and prove zero
//!    accepted-report loss: every acknowledged report is present in the
//!    drained collector, the manifest, and the restored-from-disk state;
//! 4. estimate marginals from the restored counts, exactly as a local
//!    run would.
//!
//! ```text
//! cargo run --release --example remote_collector
//! ```

use mdrr::obs::MonotonicClock;
use mdrr::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const CLIENTS: usize = 3;
const RECORDS_PER_CLIENT: usize = 10_000;
const BATCH_REPORTS: usize = 1_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The shared contract: schema + declarative protocol spec.  The
    // server refuses (with a typed SPEC_MISMATCH) any client whose
    // handshake disagrees, so a misconfigured population cannot silently
    // poison the counts.
    let schema = adult_schema();
    let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
    let protocol = spec.build_arc(&schema)?;

    let clock = Arc::new(MonotonicClock::new());
    let server = mdrr::serve::CollectorServer::bind(
        "127.0.0.1:0",
        &schema,
        &spec,
        ServeConfig::default(),
        clock.clone(),
        None,
    )?;
    let addr = server.local_addr();
    println!("collector daemon listening on {addr}");

    // Each "population" thread randomizes locally and streams batches.
    let workers: Vec<_> = (0..CLIENTS as u64)
        .map(|c| {
            let schema = schema.clone();
            let spec = spec.clone();
            let protocol = protocol.clone();
            type ClientError = Box<dyn std::error::Error + Send + Sync>;
            std::thread::spawn(move || -> Result<u64, ClientError> {
                let mut client = WireClient::connect(
                    addr,
                    schema,
                    spec,
                    ClientConfig::default(),
                    Arc::new(MonotonicClock::new()),
                )?;
                let mut rng = StdRng::seed_from_u64(100 + c);
                let synthesizer = AdultSynthesizer::paper_sized();
                let mut batch = ReportBatch::for_protocol(protocol.as_ref());
                for i in 0..RECORDS_PER_CLIENT {
                    let record = synthesizer.sample_record(&mut rng);
                    let codes = protocol.encode_record(&record, &mut rng)?;
                    batch.push(&Report::new(codes))?;
                    if batch.n_reports() == BATCH_REPORTS || i == RECORDS_PER_CLIENT - 1 {
                        client.send_batch(c as u32, &batch)?;
                        batch.clear();
                    }
                }
                client.flush()?;
                let acked = client.acked_reports();
                client.close()?;
                Ok(acked)
            })
        })
        .collect();
    let mut acked_total = 0u64;
    for (c, worker) in workers.into_iter().enumerate() {
        let acked = worker
            .join()
            .expect("client thread panicked")
            .map_err(|e| -> Box<dyn std::error::Error> { e })?;
        println!("client {c}: {acked} reports acknowledged");
        acked_total += acked;
    }

    // Graceful shutdown: stop accepting, cut streaming sessions off with
    // a typed DRAINING error, and persist every counted report.
    let dir = std::env::temp_dir().join(format!("mdrr-remote-example-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let (manifest, drained) = server.drain_to_checkpoint(&dir, Some("remote_collector example"))?;
    println!(
        "drained to {}: {} reports across {} shard files",
        dir.display(),
        manifest.total_reports,
        manifest.shard_files.len()
    );
    assert_eq!(drained.acked_reports, acked_total);
    assert_eq!(manifest.total_reports, acked_total);

    // Anyone holding the checkpoint can resume or estimate — the network
    // leg changed nothing about the sufficient statistics.
    let restored = ShardedCollector::restore(&dir)?;
    assert_eq!(restored.collector.total_reports(), acked_total);
    let snapshot = restored.collector.snapshot()?;
    println!("\nestimated marginals from the restored checkpoint:");
    for (j, attribute) in (0..schema.len()).zip(schema.attributes()) {
        let estimates: Vec<String> = (0..attribute.cardinality())
            .map(|v| {
                snapshot
                    .frequency(&[(j, v as u32)])
                    .map(|f| format!("{f:.3}"))
                    .unwrap_or_else(|e| format!("<{e}>"))
            })
            .collect();
        println!("  {:>16}: {}", attribute.name(), estimates.join(" "));
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
