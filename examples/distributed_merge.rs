//! Cross-process shard pooling: N independent collector "processes"
//! checkpoint their shards to disk, and merging the persisted snapshots
//! reproduces a single-process run *exactly*.
//!
//! ```sh
//! cargo run --release --example distributed_merge
//! ```
//!
//! The construction: one logical collector of `K = N × S` shards is split
//! across `N` collectors of `S` shards each.  Process `p` ingests the
//! `p`-th block of whole global record chunks under
//! `offset_base_seed(SEED, p * S)`, so its local shard `k` draws the
//! exact RNG stream global shard `p * S + k` would draw — the randomized
//! codes, and therefore the persisted count vectors, are identical to the
//! single-process run's, and `merge_snapshot_files` pools them into the
//! same sufficient statistics.  No process ever sees another's data; the
//! only thing that crosses machine boundaries is `mdrr-store` snapshot
//! files.

use mdrr::prelude::*;
use mdrr_stream::{offset_base_seed, MANIFEST_FILE};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Independent collector processes (machines).
const N_PROCESSES: usize = 4;
/// Shards per process.
const SHARDS_PER_PROCESS: usize = 2;
/// Simulated clients — a multiple of the global shard count, so every
/// process holds whole global chunks (the alignment requirement of
/// `offset_base_seed`).
const CLIENTS: usize = 96_000;
/// Base seed of the logical collector.
const SEED: u64 = 424_242;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let total_shards = N_PROCESSES * SHARDS_PER_PROCESS;
    let chunk = CLIENTS / total_shards; // exact by construction
    let schema = adult_schema();
    let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));

    // The shared client population (in reality: each process's own
    // clients; here one dataset so the two constructions are comparable).
    let synthesizer = AdultSynthesizer::paper_sized();
    let mut rng = StdRng::seed_from_u64(1);
    let mut dataset = Dataset::empty(schema.clone());
    for _ in 0..CLIENTS {
        dataset.push_record(&synthesizer.sample_record(&mut rng))?;
    }

    println!("=== distributed_merge: {N_PROCESSES} processes × {SHARDS_PER_PROCESS} shards vs one {total_shards}-shard process ===\n");

    // ------------------------------------------------------------------
    // Reference: a single process ingesting everything.
    // ------------------------------------------------------------------
    let mut single = ShardedCollector::new(spec.build_arc(&schema)?, total_shards)?;
    single.ingest_view(&dataset.view(), SEED)?;
    let single_merged = single.merged()?;
    println!(
        "single process : {} reports across {} shards",
        single.total_reports(),
        single.n_shards()
    );

    // ------------------------------------------------------------------
    // Distributed: each process ingests its record block with its own
    // collector and persists its shards; nothing is shared in memory.
    // ------------------------------------------------------------------
    let base_dir =
        std::env::temp_dir().join(format!("mdrr-distributed-merge-{}", std::process::id()));
    let mut shard_files = Vec::new();
    for p in 0..N_PROCESSES {
        // An independent process: its own protocol instance (rebuilt from
        // the shared declarative spec), its own collector, its own block
        // of clients.
        let mut process = ShardedCollector::new(spec.build_arc(&schema)?, SHARDS_PER_PROCESS)?;
        let start = p * SHARDS_PER_PROCESS * chunk;
        let end = (p + 1) * SHARDS_PER_PROCESS * chunk;
        let block = dataset.view().slice(start..end)?;
        process.ingest_view(&block, offset_base_seed(SEED, p * SHARDS_PER_PROCESS))?;

        let dir = base_dir.join(format!("process-{p}"));
        let manifest = process.checkpoint(&spec, &dir, None)?;
        println!(
            "process {p}      : {} reports → {} ({} shard files)",
            manifest.total_reports,
            dir.display(),
            manifest.shard_files.len()
        );
        shard_files.extend(manifest.shard_files.iter().map(|f| dir.join(f)));
    }
    // (Sanity: the manifests are also readable on their own.)
    assert!(base_dir.join("process-0").join(MANIFEST_FILE).exists());

    // ------------------------------------------------------------------
    // Any process (or none of the originals) pools the snapshot files.
    // ------------------------------------------------------------------
    let pooled = mdrr_store::merge_snapshot_files(&shard_files)?;
    println!(
        "\npooled         : {} reports from {} persisted shard files",
        pooled.n_reports(),
        shard_files.len()
    );

    // The pooled counts are *identical* to the single-process counts —
    // not approximately: the same randomized codes were counted.
    assert_eq!(pooled.n_reports(), single_merged.n_reports());
    assert_eq!(pooled.counts(), single_merged.counts());
    println!("count vectors  : exactly equal to the single-process run ✓");

    // And therefore so is every estimate.
    let pooled_release = pooled.release()?;
    let single_release = single.snapshot()?;
    let mut max_delta = 0.0f64;
    for j in 0..schema.len() {
        let a = pooled_release.marginal(j)?;
        let b = single_release.marginal(j)?;
        for (x, y) in a.iter().zip(b.iter()) {
            max_delta = max_delta.max((x - y).abs());
        }
    }
    assert!(max_delta <= 1e-12, "marginals diverged by {max_delta}");
    println!("estimates      : max marginal delta {max_delta:.1e} (≤ 1e-12) ✓");

    let sex = pooled_release.marginal(schema.index_of("Sex")?)?;
    println!(
        "\nexample query  : P(Sex) estimated from pooled shards = [{:.4}, {:.4}]",
        sex[0], sex[1]
    );

    std::fs::remove_dir_all(&base_dir).ok();
    println!("\nDistributed ingestion, durable shards, exact pooling — no coordination needed.");
    Ok(())
}
