//! Regenerates **Figure 3** of the paper: median relative error of
//! RR-Independent, RR-Independent + Adjustment, RR-Clusters and
//! RR-Clusters + Adjustment as a function of the coverage σ, one panel per
//! keep probability p ∈ {0.1, 0.3, 0.5, 0.7}.
//!
//! ```text
//! cargo run -p mdrr-bench --release --bin fig3 -- --runs 100
//! ```

use mdrr_bench::{maybe_write_json, print_header, CliOptions};
use mdrr_eval::experiments::fig3;
use mdrr_eval::render_panel;

fn main() {
    let options = CliOptions::from_env();
    let config = options.experiment_config();
    print_header("Figure 3 — relative error of the four methods", &config);

    let result = fig3::run(&config).expect("Figure 3 experiment failed");
    for panel in &result.panels {
        println!("{}", render_panel(panel));
    }
    println!(
        "paper reference: for small p RR-Independent is best; for large p and small coverage\n\
         RR-Clusters clearly wins and RR-Adjustment further helps; at large coverage all\n\
         methods converge to a small error (Figure 3)."
    );
    maybe_write_json(&options, &result);
}
