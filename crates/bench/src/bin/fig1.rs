//! Regenerates **Figure 1** of the paper: the error-bound factor `√B`
//! (upper `α/r` percentile of χ²₁) as a function of the number of
//! categories `r`, for `α = 0.05`.
//!
//! ```text
//! cargo run -p mdrr-bench --release --bin fig1
//! ```

use mdrr_bench::{maybe_write_json, print_header, CliOptions};
use mdrr_eval::experiments::fig1;
use mdrr_eval::{render_panel, FigurePanel};

fn main() {
    let options = CliOptions::from_env();
    let config = options.experiment_config();
    print_header(
        "Figure 1 — sqrt(B) vs number of categories (alpha = 0.05)",
        &config,
    );

    let result = fig1::run(&config).expect("Figure 1 computation failed");
    let panel = FigurePanel {
        title: "Figure 1".to_string(),
        x_label: "categories r".to_string(),
        y_label: "sqrt(B)".to_string(),
        series: vec![result.series.clone()],
    };
    println!("{}", render_panel(&panel));
    println!(
        "paper reference: sqrt(B) grows from ~2.24 at r = 2 to ~4.7 at r = 100000 (Figure 1)."
    );
    maybe_write_json(&options, &result);
}
