//! Regenerates **Table 1** of the paper: median relative error of
//! RR-Clusters on Adult for Tv ∈ {50, 100, 300}, Td ∈ {0.1, 0.2, 0.3} and
//! p ∈ {0.1, 0.3, 0.5, 0.7}, at coverage σ = 0.1.
//!
//! ```text
//! cargo run -p mdrr-bench --release --bin table1 -- --runs 200
//! ```

use mdrr_bench::{maybe_write_json, print_header, CliOptions};
use mdrr_eval::experiments::table1;
use mdrr_eval::render_table;

fn main() {
    let options = CliOptions::from_env();
    let config = options.experiment_config();
    print_header(
        "Table 1 — RR-Clusters relative error on Adult (sigma = 0.1)",
        &config,
    );

    let result = table1::run(&config).expect("Table 1 experiment failed");
    println!("{}", render_table(&result.table));
    println!("best (Tv, Td) per p (used by Figure 3):");
    for (p, tv, td) in &result.best_per_p {
        println!("  p = {p:.1}  ->  Tv = {tv}, Td = {td:.1}");
    }
    println!(
        "\npaper reference: errors fall as p grows, rise with Tv at this data-set size, and\n\
         the influence of Td is secondary (Table 1)."
    );
    maybe_write_json(&options, &result);
}
