//! Empirically verifies **Proposition 1 / Corollary 1** (Section 4.1): the
//! uniform-keep randomization attenuates pairwise covariances by `p²` while
//! (approximately) preserving the ranking of the dependence measures used by
//! the clustering algorithm.
//!
//! ```text
//! cargo run -p mdrr-bench --release --bin covariance_attenuation
//! ```

use mdrr_bench::{maybe_write_json, print_header, CliOptions};
use mdrr_eval::experiments::covariance;

fn main() {
    let options = CliOptions::from_env();
    let config = options.experiment_config();
    print_header(
        "Proposition 1 / Corollary 1 — covariance attenuation under RR",
        &config,
    );

    let mut results = Vec::new();
    for p in [0.3, 0.5, 0.7, 0.9] {
        let result = covariance::run(&config, p).expect("covariance experiment failed");
        println!(
            "p = {p:.1}: theoretical attenuation p^2 = {:.3}, dependence-ranking agreement = {:.3}",
            result.theoretical_ratio, result.ranking_agreement
        );
        println!("  strongest pairs (|true covariance| > 0.3):");
        for pair in result
            .pairs
            .iter()
            .filter(|pair| pair.true_covariance.abs() > 0.3)
        {
            println!(
                "    attributes {:?}: true cov {:>8.3}, randomized cov {:>8.3}, empirical ratio {:>6.3}",
                pair.pair, pair.true_covariance, pair.randomized_covariance, pair.empirical_ratio
            );
        }
        results.push(result);
    }
    println!(
        "\npaper reference: Cov(Ya, Yb) = pa * pb * Cov(Xa, Xb) (Proposition 1), so the ranking of\n\
         covariances — and hence the clustering — survives randomization (Corollary 1)."
    );
    maybe_write_json(&options, &results);
}
