//! Regenerates the **Section 3.3 accuracy analysis**: the best-case
//! (uniform-frequency) relative error bounds of RR-Independent versus
//! RR-Joint as the number of Adult attributes grows, at the Adult data-set
//! size.  This is the analytic form of the curse-of-dimensionality argument
//! that rules RR-Joint out of the empirical evaluation.
//!
//! ```text
//! cargo run -p mdrr-bench --release --bin accuracy_analysis
//! ```

use mdrr_bench::{maybe_write_json, print_header, CliOptions};
use mdrr_eval::experiments::accuracy;
use mdrr_eval::{render_panel, render_table};

fn main() {
    let options = CliOptions::from_env();
    let config = options.experiment_config();
    print_header(
        "Section 3.3 — analytic accuracy of RR-Independent vs RR-Joint",
        &config,
    );

    let result = accuracy::run(&config).expect("accuracy analysis failed");
    println!("{}", render_table(&result.table));
    println!("{}", render_panel(&result.panel));
    println!(
        "paper reference: the relative error of RR-Joint grows as the square root of the joint\n\
         domain size (exponential in the number of attributes) and is already above 200 % when\n\
         n equals the domain size, whereas RR-Independent stays bounded by its largest attribute\n\
         (Sections 3.2-3.3)."
    );
    maybe_write_json(&options, &result);
}
