//! Runs every experiment of the paper's evaluation section in sequence and
//! optionally dumps a single JSON document with all results (the source of
//! the numbers recorded in EXPERIMENTS.md).
//!
//! ```text
//! cargo run -p mdrr-bench --release --bin all_experiments -- --runs 100 --out results.json
//! ```

use mdrr_bench::{maybe_write_json, print_header, CliOptions};
use mdrr_eval::experiments::{accuracy, covariance, fig1, fig2, fig3, table1, table2};
use mdrr_eval::{render_panel, render_table, FigurePanel};
use serde::Serialize;

/// The combined results of one full harness run.
#[derive(Debug, Serialize)]
struct AllResults {
    config: mdrr_eval::ExperimentConfig,
    fig1: fig1::Fig1Result,
    fig2: fig2::Fig2Result,
    table1: table1::TableExperimentResult,
    fig3: fig3::Fig3Result,
    table2: table1::TableExperimentResult,
    accuracy: accuracy::AccuracyAnalysisResult,
    covariance: Vec<covariance::CovarianceAttenuationResult>,
}

fn main() {
    let options = CliOptions::from_env();
    let config = options.experiment_config();
    print_header("MDRR — full experiment suite", &config);

    println!("\n[1/7] Figure 1: sqrt(B) vs number of categories");
    let fig1_result = fig1::run(&config).expect("Figure 1 failed");
    let fig1_panel = FigurePanel {
        title: "Figure 1".to_string(),
        x_label: "categories r".to_string(),
        y_label: "sqrt(B)".to_string(),
        series: vec![fig1_result.series.clone()],
    };
    println!("{}", render_panel(&fig1_panel));

    println!("\n[2/7] Figure 2: Randomized vs RR-Independent (p = 0.7)");
    let fig2_result = fig2::run(&config).expect("Figure 2 failed");
    println!("{}", render_panel(&fig2_result.absolute));
    println!("{}", render_panel(&fig2_result.relative));

    println!("\n[3/7] Table 1: RR-Clusters on Adult");
    let table1_result = table1::run(&config).expect("Table 1 failed");
    println!("{}", render_table(&table1_result.table));

    println!("\n[4/7] Figure 3: the four methods across p and sigma");
    let fig3_result = fig3::run(&config).expect("Figure 3 failed");
    for panel in &fig3_result.panels {
        println!("{}", render_panel(panel));
    }

    println!("\n[5/7] Table 2: RR-Clusters on Adult6");
    let table2_result = table2::run(&config).expect("Table 2 failed");
    println!("{}", render_table(&table2_result.table));

    println!("\n[6/7] Section 3.3: analytic accuracy of RR-Independent vs RR-Joint");
    let accuracy_result = accuracy::run(&config).expect("accuracy analysis failed");
    println!("{}", render_table(&accuracy_result.table));

    println!("\n[7/7] Proposition 1 / Corollary 1: covariance attenuation");
    let mut covariance_results = Vec::new();
    for p in [0.3, 0.5, 0.7, 0.9] {
        let result = covariance::run(&config, p).expect("covariance experiment failed");
        println!(
            "p = {p:.1}: theory p^2 = {:.3}, ranking agreement = {:.3}",
            result.theoretical_ratio, result.ranking_agreement
        );
        covariance_results.push(result);
    }

    let all = AllResults {
        config,
        fig1: fig1_result,
        fig2: fig2_result,
        table1: table1_result,
        fig3: fig3_result,
        table2: table2_result,
        accuracy: accuracy_result,
        covariance: covariance_results,
    };
    maybe_write_json(&options, &all);
}
