//! Regenerates **Figure 2** of the paper: absolute (left) and relative
//! (right) count-query error of the raw randomized data ("Randomized")
//! versus RR-Independent at keep probability p = 0.7, as a function of the
//! coverage σ.
//!
//! ```text
//! cargo run -p mdrr-bench --release --bin fig2 -- --runs 200
//! ```

use mdrr_bench::{maybe_write_json, print_header, CliOptions};
use mdrr_eval::experiments::fig2;
use mdrr_eval::render_panel;

fn main() {
    let options = CliOptions::from_env();
    let config = options.experiment_config();
    print_header("Figure 2 — Randomized vs RR-Independent (p = 0.7)", &config);

    let result = fig2::run(&config).expect("Figure 2 experiment failed");
    println!("{}", render_panel(&result.absolute));
    println!("{}", render_panel(&result.relative));
    println!(
        "paper reference: RR-Independent reduces both errors sharply; the absolute error of\n\
         Randomized peaks at sigma = 0.5 and its relative error decreases with the coverage."
    );
    maybe_write_json(&options, &result);
}
