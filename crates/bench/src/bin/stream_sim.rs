//! `stream_sim` — drives the streaming subsystem at million-client scale,
//! with durable checkpoints, crash-resume and cross-process merging.
//!
//! Simulates `--clients` respondents of the synthetic Adult population:
//! each client locally randomizes her record into a compact report, the
//! sharded collector ingests the reports across `--shards` scoped-thread
//! workers, and after every round the collector is snapshotted mid-stream
//! to report ingestion throughput and estimation error over time.
//!
//! ```text
//! cargo run -p mdrr-bench --release --bin stream_sim
//! cargo run -p mdrr-bench --release --bin stream_sim -- --clients 2000000 --shards 16
//! cargo run -p mdrr-bench --release --bin stream_sim -- --quick --out /tmp/stream.json
//! cargo run -p mdrr-bench --release --bin stream_sim -- --path per-record
//! # durability: checkpoint every round, die, resume the exact stream
//! cargo run -p mdrr-bench --release --bin stream_sim -- --quick --checkpoint-dir /tmp/ckpt
//! cargo run -p mdrr-bench --release --bin stream_sim -- --resume /tmp/ckpt
//! # pool the persisted shards of any number of runs/machines
//! cargo run -p mdrr-bench --release --bin stream_sim -- --merge /tmp/ckptA --merge /tmp/ckptB
//! # chaos soak: scripted shard panics + faulted checkpoints, zero loss
//! cargo run -p mdrr-bench --release --bin stream_sim -- --chaos --quick --out BENCH_chaos.json
//! # remote: simulated clients stream over real loopback TCP to mdrr-serve
//! cargo run -p mdrr-bench --release --bin stream_sim -- --remote --out BENCH_serve.json
//! cargo run -p mdrr-bench --release --bin stream_sim -- --remote --quick --conns 2
//! ```
//!
//! Flags: `--clients N` (default 1 000 000), `--shards K` (default 8),
//! `--rounds R` (default 10), `--protocol independent|joint|clusters`
//! (default independent), `--spec PATH` (a serde `ProtocolSpec` JSON file,
//! overriding `--protocol`), `--path batch|per-record` (default batch: the
//! columnar zero-allocation pipeline; `per-record` is the scalar reference
//! path, kept to quantify the gap), `--seed N`, `--quick` (50 000 clients,
//! 4 shards, 5 rounds), `--out PATH`.
//!
//! Durability flags: `--checkpoint-dir DIR` persists every shard's count
//! vectors (plus the simulator's exact RNG position and ground-truth
//! counters) into an `mdrr-store` checkpoint directory after each round;
//! `--resume DIR` restores the collector and the generator RNG from such a
//! directory and continues the *exact* draw stream — a killed-and-resumed
//! run produces byte-identical checkpoints to an uninterrupted one;
//! `--kill-after N` exits right after the round-`N` checkpoint (a scripted
//! crash, used by the CI smoke test); `--merge PATH` (repeatable) pools
//! checkpoint directories and/or single snapshot files from any number of
//! runs or machines into one exact merged estimate, and `--merged-out
//! PATH` writes the pooled snapshot itself.
//!
//! Chaos flags: `--chaos` turns the run into a fault-injection soak —
//! every third round arms a scripted shard-worker panic (contained as a
//! typed `ShardFailed`, recovered by deterministic re-collection of the
//! lost range, rehabilitated), and every round's checkpoint runs through
//! a seeded `FaultyBackend` with a random fault plan (transients are
//! retried away; torn writes crash the checkpoint, after which the
//! directory is salvaged and re-committed from the live collector).  The
//! run records every recovery's latency and ends with a zero-report-loss
//! assertion: live, restored-from-disk and expected report counts must
//! agree exactly, and the restored shards must equal the live shards
//! bit-for-bit.  `--out BENCH_chaos.json` persists the evidence (the CI
//! chaos job asserts `report_loss == 0` from it).
//!
//! Remote flags: `--remote` turns the run into a network benchmark — an
//! in-process `mdrr-serve` collector daemon is bound on an ephemeral
//! loopback port and `--conns` (default 4) `WireClient` connections
//! stream pre-randomized reports at it as length-framed batch frames
//! (seq patched in place, zero re-encode in the timed section), each
//! pipelining up to the server-advertised backpressure window.  Every
//! connection makes `--rounds` passes over its pre-encoded frames, so
//! `clients × rounds` reports cross the socket in total.  The run drains
//! the server at the end and dies unless the drained collector holds
//! exactly every acknowledged report (zero accepted-report loss), then
//! writes throughput, wire volume and per-batch ack-latency percentiles
//! (`--out BENCH_serve.json` in CI; the serve job asserts a throughput
//! floor from it).
//!
//! Observability: `--metrics-out PATH` attaches the `mdrr-obs`
//! instrumentation (per-shard report/batch counters, ingest latency
//! histograms, checkpoint/restore durations and byte counts, an imbalance
//! gauge and a bounded event journal) and writes the full metrics + event
//! JSON at exit; each round then also prints ingest latency percentiles.
//! Without the flag the collector runs uninstrumented — the exact code
//! path the overhead numbers in BENCH_stream.json compare against.  All
//! wall-clock reads go through one injected monotonic clock.
//!
//! The binary counts heap allocations through a wrapping global allocator
//! and reports allocations **per ingested report** for the timed ingestion
//! section — the headline number of the zero-allocation batch pipeline
//! (expect ~0.00x for `batch`, ~2 for `per-record`).  The snapshot
//! estimates are numerically identical to the batch-path estimates on the
//! same randomized codes; that equivalence is pinned by
//! `crates/stream/tests/proptest_stream.rs` and the `mdrr-eval`
//! streamed-vs-batch experiment.

use mdrr_bench::maybe_write_json;
use mdrr_data::{adult_schema, AdultSynthesizer, RecordsBuffer, RecordsView, Schema};
use mdrr_obs::{Clock, Histogram, HistogramSnapshot, MonotonicClock};
use mdrr_protocols::{
    Clustering, FrequencyEstimator, MdrrError, Protocol, ProtocolSpec, RandomizationLevel, Release,
};
use mdrr_serve::{CollectorServer, ServeConfig, ServeObs};
use mdrr_store::{
    merge_snapshots, salvage_checkpoint, FaultPlan, FaultyBackend, RetryPolicy, Snapshot,
    SnapshotReader, SnapshotWriter, Storage, StorageBackend,
};
use mdrr_stream::{
    offset_base_seed, wire, CheckpointManifest, ClientConfig, FrameType, Report, ReportBatch,
    ShardedCollector, StreamObs, WireClient, MANIFEST_FILE,
};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Counts every heap allocation (alloc + realloc) made by the process, so
/// the simulator can report allocations per ingested report for the timed
/// ingestion sections.
struct CountingAllocator;

/// Number of allocations since process start.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to the system allocator; the only addition is
// a relaxed atomic counter bump, which allocates nothing itself.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Keep probability used for every protocol variant.
const KEEP_PROBABILITY: f64 = 0.7;

/// Attributes the RR-Joint variant is restricted to (the full Adult joint
/// domain exceeds the protocol's cap).
const JOINT_ATTRIBUTES: [usize; 3] = [0, 1, 2];

#[derive(Debug, Clone, PartialEq)]
enum IngestPath {
    /// The columnar zero-allocation pipeline
    /// ([`ShardedCollector::ingest_view`]).
    Batch,
    /// The scalar reference pipeline
    /// ([`ShardedCollector::ingest_records_per_record`]).
    PerRecord,
}

impl IngestPath {
    fn name(&self) -> &'static str {
        match self {
            IngestPath::Batch => "batch",
            IngestPath::PerRecord => "per-record",
        }
    }

    fn parse(raw: &str) -> Result<Self, String> {
        match raw {
            "batch" => Ok(IngestPath::Batch),
            "per-record" => Ok(IngestPath::PerRecord),
            other => Err(format!(
                "unknown path `{other}` (expected batch or per-record)"
            )),
        }
    }
}

#[derive(Debug, Clone)]
struct Options {
    clients: usize,
    shards: usize,
    rounds: usize,
    protocol: String,
    spec: Option<PathBuf>,
    path: IngestPath,
    seed: u64,
    output: Option<PathBuf>,
    checkpoint_dir: Option<PathBuf>,
    resume: Option<PathBuf>,
    kill_after: Option<usize>,
    merge: Vec<PathBuf>,
    merged_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    chaos: bool,
    remote: bool,
    conns: usize,
}

impl Options {
    fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut options = Options {
            clients: 1_000_000,
            shards: 8,
            rounds: 10,
            protocol: "independent".to_string(),
            spec: None,
            path: IngestPath::Batch,
            seed: 42,
            output: None,
            checkpoint_dir: None,
            resume: None,
            kill_after: None,
            merge: Vec::new(),
            merged_out: None,
            metrics_out: None,
            chaos: false,
            remote: false,
            conns: 4,
        };
        let mut quick = false;
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            let mut value = |flag: &str| {
                iter.next()
                    .ok_or_else(|| format!("missing value for {flag}"))
            };
            match flag.as_str() {
                "--clients" => options.clients = parse(&flag, value(&flag)?)?,
                "--shards" => options.shards = parse(&flag, value(&flag)?)?,
                "--rounds" => options.rounds = parse(&flag, value(&flag)?)?,
                "--seed" => options.seed = parse(&flag, value(&flag)?)?,
                "--protocol" => options.protocol = value(&flag)?,
                "--spec" => options.spec = Some(PathBuf::from(value(&flag)?)),
                "--path" => options.path = IngestPath::parse(&value(&flag)?)?,
                "--out" => options.output = Some(PathBuf::from(value(&flag)?)),
                "--checkpoint-dir" => options.checkpoint_dir = Some(PathBuf::from(value(&flag)?)),
                "--resume" => options.resume = Some(PathBuf::from(value(&flag)?)),
                "--kill-after" => options.kill_after = Some(parse(&flag, value(&flag)?)?),
                "--merge" => options.merge.push(PathBuf::from(value(&flag)?)),
                "--merged-out" => options.merged_out = Some(PathBuf::from(value(&flag)?)),
                "--metrics-out" => options.metrics_out = Some(PathBuf::from(value(&flag)?)),
                "--chaos" => options.chaos = true,
                "--remote" => options.remote = true,
                "--conns" => options.conns = parse(&flag, value(&flag)?)?,
                "--quick" => quick = true,
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        if quick {
            options.clients = options.clients.min(50_000);
            options.shards = options.shards.min(4);
            options.rounds = options.rounds.min(5);
            options.conns = options.conns.min(2);
        }
        if !options.merge.is_empty() {
            if options.resume.is_some() || options.checkpoint_dir.is_some() {
                return Err("--merge is a standalone mode; drop --resume/--checkpoint-dir".into());
            }
            if options.chaos || options.remote {
                return Err("--chaos/--remote are standalone modes; drop --merge".into());
            }
            return Ok(options);
        }
        if options.remote {
            if options.chaos
                || options.resume.is_some()
                || options.checkpoint_dir.is_some()
                || options.kill_after.is_some()
            {
                return Err(
                    "--remote is a standalone mode; drop --chaos/--resume/--checkpoint-dir/\
                     --kill-after"
                        .into(),
                );
            }
            if options.path == IngestPath::PerRecord {
                return Err("--remote always streams the columnar batch path; drop --path".into());
            }
            if options.conns == 0 {
                return Err("--conns must be positive".into());
            }
        }
        if options.chaos
            && (options.resume.is_some() || options.kill_after.is_some() || options.spec.is_some())
        {
            return Err(
                "--chaos injects its own failures; drop --resume/--kill-after/--spec".into(),
            );
        }
        if options.clients == 0 || options.shards == 0 || options.rounds == 0 {
            return Err("--clients, --shards and --rounds must be positive".to_string());
        }
        if options.kill_after.is_some()
            && options.checkpoint_dir.is_none()
            && options.resume.is_none()
        {
            // A resumed run implicitly keeps checkpointing into the
            // resume directory, so --kill-after is meaningful there too.
            return Err("--kill-after requires --checkpoint-dir (nothing would survive)".into());
        }
        if options.resume.is_some() && options.spec.is_some() {
            return Err("--resume restores the protocol from the checkpoint; drop --spec".into());
        }
        // Every round must ingest at least one client, or its snapshot
        // would have nothing to estimate from.
        options.rounds = options.rounds.min(options.clients);
        Ok(options)
    }
}

fn parse<T: std::str::FromStr>(flag: &str, raw: String) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("invalid value `{raw}` for {flag}"))
}

fn die(message: impl std::fmt::Display) -> ! {
    eprintln!("{message}");
    std::process::exit(2)
}

/// One mid-stream snapshot measurement.
#[derive(Debug, Clone, Serialize)]
struct RoundReport {
    round: usize,
    total_reports: u64,
    round_secs: f64,
    reports_per_sec: f64,
    /// Heap allocations performed during the timed ingestion section.
    ingest_allocations: u64,
    /// `ingest_allocations / clients` — ~0 for the batch path.
    allocations_per_report: f64,
    /// Max absolute deviation of the snapshot's attribute marginals from
    /// the true empirical marginals of the generated clients so far.
    max_marginal_abs_error: f64,
}

/// The simulation result written by `--out`.
#[derive(Debug, Clone, Serialize)]
struct SimulationResult {
    protocol: String,
    /// `batch` or `per-record`.
    path: String,
    clients: usize,
    shards: usize,
    /// First round this process ran (`> 1` when resumed from a
    /// checkpoint; earlier rounds ran in the killed process).
    first_round: usize,
    rounds: Vec<RoundReport>,
    total_secs: f64,
    overall_reports_per_sec: f64,
    /// Mean ingestion throughput over the rounds (the headline number: the
    /// collector's encode+count rate, generation and snapshots excluded).
    mean_ingest_reports_per_sec: f64,
    /// Mean allocations per report during ingestion.
    mean_allocations_per_report: f64,
    /// Reports held by each shard at the end of the run — the ground truth
    /// the `--metrics-out` per-shard counters must equal exactly (the CI
    /// smoke test asserts it).
    shard_reports: Vec<u64>,
}

/// The simulator's own resume state, persisted as the opaque `app_state`
/// string of every checkpoint: the run's targets, how far it got, the
/// generator RNG's exact position and the ground-truth counters.  With
/// this plus the per-shard count vectors, `--resume` continues the exact
/// draw stream — a killed-and-resumed run is byte-identical to an
/// uninterrupted one.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ResumeState {
    seed: u64,
    clients: usize,
    shards: usize,
    rounds: usize,
    protocol: String,
    path: String,
    rounds_done: usize,
    clients_done: usize,
    /// Raw xoshiro256++ state of the client-record generator RNG.
    generator_rng: [u64; 4],
    /// True per-attribute counts of every client generated so far (the
    /// simulator's ground truth for the error column).
    true_counts: Vec<Vec<u64>>,
}

/// The named protocol presets, as declarative specs — exactly what a
/// `--spec` JSON file would contain.
fn preset_spec(name: &str) -> Result<ProtocolSpec, String> {
    let level = RandomizationLevel::KeepProbability(KEEP_PROBABILITY);
    match name {
        "independent" => Ok(ProtocolSpec::independent(level)),
        "joint" => Ok(ProtocolSpec::Joint {
            level,
            max_domain: None,
            equivalent_risk: false,
        }),
        "clusters" => {
            let m = adult_schema().len();
            let clustering =
                Clustering::new((0..m / 2).map(|k| vec![2 * k, 2 * k + 1]).collect(), m)
                    .map_err(|e| e.to_string())?;
            Ok(ProtocolSpec::Clusters {
                level,
                clustering,
                equivalent_risk: false,
            })
        }
        other => Err(format!(
            "unknown protocol `{other}` (expected independent, joint or clusters)"
        )),
    }
}

/// Resolves the simulated protocol's declarative spec and schema: either
/// from a `--spec` JSON file (over the full Adult schema, exactly as
/// written) or from a named preset.  Only the RR-Joint *preset* is
/// projected onto the first [`JOINT_ATTRIBUTES`] of Adult (the full joint
/// domain exceeds the cap); a user-supplied spec is never silently
/// reshaped.
fn build_spec(options: &Options) -> Result<(ProtocolSpec, Schema), String> {
    let mut schema = adult_schema();
    let spec = match &options.spec {
        Some(path) => {
            let json = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            serde_json::from_str(&json)
                .map_err(|e| format!("invalid ProtocolSpec in {}: {e}", path.display()))?
        }
        None => {
            let preset = preset_spec(&options.protocol)?;
            if matches!(preset, ProtocolSpec::Joint { .. }) {
                schema = schema
                    .project(&JOINT_ATTRIBUTES)
                    .map_err(|e| e.to_string())?;
            }
            preset
        }
    };
    // The simulator estimates from streamed count vectors, which
    // RR-Adjustment cannot do (Algorithm 2 needs the randomized
    // microdata) — fail before ingesting anything rather than at the
    // first snapshot.
    if matches!(spec, ProtocolSpec::Adjusted { .. }) {
        return Err(
            "RR-Adjustment cannot estimate from streamed counts; use its base protocol spec"
                .to_string(),
        );
    }
    Ok((spec, schema))
}

/// Expands a `--merge` operand into snapshots: a checkpoint directory
/// contributes the shard files its manifest committed — re-verifying the
/// manifest's report total, so a torn checkpoint (shard files newer than
/// the manifest) is rejected here exactly as `restore` would reject it —
/// and a plain file contributes itself.
fn merge_operand_snapshots(
    path: &Path,
    obs: Option<&mdrr_store::StoreObs>,
) -> Result<Vec<Snapshot>, String> {
    let read = |p: &Path| {
        match obs {
            Some(o) => SnapshotReader::read_observed(p, o),
            None => SnapshotReader::read(p),
        }
        .map_err(|e| format!("cannot read snapshot {}: {e}", p.display()))
    };
    if path.is_dir() {
        let manifest_path = path.join(MANIFEST_FILE);
        let json = std::fs::read_to_string(&manifest_path)
            .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
        let manifest: CheckpointManifest = serde_json::from_str(&json)
            .map_err(|e| format!("malformed manifest {}: {e}", manifest_path.display()))?;
        let snapshots = manifest
            .shard_files
            .iter()
            .map(|f| read(&path.join(f)))
            .collect::<Result<Vec<_>, _>>()?;
        let total = snapshots
            .iter()
            .try_fold(0u64, |acc, s| acc.checked_add(s.n_reports()))
            .ok_or_else(|| format!("{}: shard report counts overflow u64", path.display()))?;
        if total != manifest.total_reports {
            return Err(format!(
                "torn checkpoint {}: shard files cover {total} reports but the manifest \
                 committed {} — merge a consistent checkpoint",
                path.display(),
                manifest.total_reports
            ));
        }
        Ok(snapshots)
    } else {
        Ok(vec![read(path)?])
    }
}

/// The merge-mode result written by `--out`.
#[derive(Debug, Clone, Serialize)]
struct MergeReport {
    inputs: Vec<String>,
    snapshots_merged: usize,
    protocol: String,
    total_reports: u64,
    merged_out: Option<String>,
    /// Estimated attribute marginals of the pooled release (`None` when
    /// the embedded protocol cannot estimate from counts).
    marginals: Option<Vec<Vec<f64>>>,
}

/// `--merge` mode: pool persisted shard snapshots from any number of
/// checkpoint directories (or loose snapshot files), verify spec
/// compatibility, sum counts exactly, and estimate from the pooled
/// sufficient statistics.
fn run_merge(options: &Options) {
    // `--metrics-out` in merge mode observes the store paths: snapshot
    // reads (durations, bytes, CRC time) and the merge itself.
    let obs = options.metrics_out.as_ref().map(|_| {
        let registry = mdrr_obs::Registry::new();
        let store = mdrr_store::StoreObs::new(Arc::new(MonotonicClock::new()), &registry);
        (registry, store)
    });
    let store_obs = obs.as_ref().map(|(_, store)| store);
    let mut snapshots = Vec::new();
    for operand in &options.merge {
        snapshots.extend(merge_operand_snapshots(operand, store_obs).unwrap_or_else(|e| die(e)));
    }
    let merged = match store_obs {
        Some(o) => mdrr_store::merge_snapshots_observed(&snapshots, o),
        None => merge_snapshots(&snapshots),
    }
    .unwrap_or_else(|e| die(format!("merging {} snapshots: {e}", snapshots.len())));
    println!("{}", "=".repeat(72));
    println!(
        "stream_sim --merge: pooled {} snapshot files from {} operands",
        snapshots.len(),
        options.merge.len()
    );
    println!("{}", "=".repeat(72));
    println!(
        "protocol {}  |  {} attributes  |  {} channels  |  {} pooled reports",
        merged.spec().label(),
        merged.schema().len(),
        merged.counts().len(),
        merged.n_reports()
    );
    if let Some(out) = &options.merged_out {
        SnapshotWriter::new(out)
            .write(&merged)
            .unwrap_or_else(|e| die(format!("writing merged snapshot: {e}")));
        println!("merged snapshot written to {}", out.display());
    }
    let marginals = match merged.release() {
        Ok(release) => {
            let m = merged.schema().len();
            let mut all = Vec::with_capacity(m);
            for j in 0..m {
                let marginal = release
                    .marginal(j)
                    .unwrap_or_else(|e| die(format!("marginal query failed: {e}")));
                let name = merged.schema().attribute(j).map(|a| a.name().to_string());
                println!(
                    "  marginal {:>12}: {}",
                    name.unwrap_or_else(|_| format!("#{j}")),
                    marginal
                        .iter()
                        .map(|p| format!("{p:.4}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                );
                all.push(marginal);
            }
            Some(all)
        }
        Err(e) => {
            println!("pooled counts cannot be estimated by this protocol: {e}");
            None
        }
    };
    let report = MergeReport {
        inputs: options
            .merge
            .iter()
            .map(|p| p.display().to_string())
            .collect(),
        snapshots_merged: snapshots.len(),
        protocol: merged.spec().label(),
        total_reports: merged.n_reports(),
        merged_out: options.merged_out.as_ref().map(|p| p.display().to_string()),
        marginals,
    };
    if let (Some(path), Some((registry, _))) = (&options.metrics_out, &obs) {
        std::fs::write(path, mdrr_obs::to_json(&registry.snapshot(), &[]))
            .unwrap_or_else(|e| die(format!("cannot write {}: {e}", path.display())));
        println!("metrics written to {}", path.display());
    }
    let cli = mdrr_bench::CliOptions {
        output: options.output.clone(),
        ..Default::default()
    };
    maybe_write_json(&cli, &report);
}

/// A delegating protocol wrapper that panics inside one shard worker
/// when an armed countdown of `encode_tally` calls reaches zero — the
/// chaos mode's deterministic stand-in for a worker dying mid-ingest
/// (OOM, corrupted input, a bug in a protocol backend).  Bit-identical
/// to the inner protocol on every non-panicking call, so recovered runs
/// can be compared against uninterrupted ones exactly.
#[derive(Debug)]
struct ChaosProtocol {
    inner: Arc<dyn Protocol>,
    countdown: AtomicI64,
}

impl ChaosProtocol {
    fn new(inner: Arc<dyn Protocol>) -> Self {
        // Disarmed: decrementing from 0 never passes through the trigger
        // value of 1.
        ChaosProtocol {
            inner,
            countdown: AtomicI64::new(0),
        }
    }

    /// Arms the next worker death: the `calls`-th `encode_tally` call
    /// from now panics (exactly once — the countdown keeps falling).
    fn arm(&self, calls: i64) {
        self.countdown.store(calls, Ordering::SeqCst);
    }
}

impl Protocol for ChaosProtocol {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }
    fn channel_sizes(&self) -> Vec<usize> {
        self.inner.channel_sizes()
    }
    fn encode_record(&self, record: &[u32], rng: &mut dyn RngCore) -> Result<Vec<u32>, MdrrError> {
        self.inner.encode_record(record, rng)
    }
    fn encode_batch(
        &self,
        records: &RecordsView<'_>,
        rng: &mut dyn RngCore,
        out: &mut [Vec<u32>],
    ) -> Result<(), MdrrError> {
        self.inner.encode_batch(records, rng, out)
    }
    fn encode_tally(
        &self,
        records: &RecordsView<'_>,
        rng: &mut dyn RngCore,
        tallies: &mut [Vec<u64>],
    ) -> Result<(), MdrrError> {
        if self.countdown.fetch_sub(1, Ordering::SeqCst) == 1 {
            panic!("chaos-injected shard worker failure");
        }
        self.inner.encode_tally(records, rng, tallies)
    }
    fn decode_report(&self, codes: &[u32]) -> Result<Vec<u32>, MdrrError> {
        self.inner.decode_report(codes)
    }
    fn release_from_counts(
        &self,
        counts: &[Vec<u64>],
        n_records: usize,
    ) -> Result<Box<dyn Release>, MdrrError> {
        self.inner.release_from_counts(counts, n_records)
    }
    fn release_from_randomized(
        &self,
        randomized: mdrr_data::Dataset,
    ) -> Result<Box<dyn Release>, MdrrError> {
        self.inner.release_from_randomized(randomized)
    }
    fn run(
        &self,
        dataset: &mdrr_data::Dataset,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn Release>, MdrrError> {
        self.inner.run(dataset, rng)
    }
    fn epsilons(&self) -> Vec<f64> {
        self.inner.epsilons()
    }
}

/// Order statistics of the chaos run's recovery latencies (shard
/// re-collections and checkpoint salvage/re-commit cycles pooled).
#[derive(Debug, Clone, Serialize)]
struct LatencySummary {
    count: usize,
    p50_secs: f64,
    p95_secs: f64,
    max_secs: f64,
}

impl LatencySummary {
    fn from_sorted(latencies: &mut [f64]) -> Self {
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pick = |q: f64| match latencies.is_empty() {
            true => 0.0,
            false => latencies[((latencies.len() - 1) as f64 * q).round() as usize],
        };
        LatencySummary {
            count: latencies.len(),
            p50_secs: pick(0.5),
            p95_secs: pick(0.95),
            max_secs: latencies.last().copied().unwrap_or(0.0),
        }
    }
}

/// The chaos-mode result written by `--out` (`BENCH_chaos.json` in CI).
#[derive(Debug, Clone, Serialize)]
struct ChaosReport {
    protocol: String,
    clients: usize,
    shards: usize,
    rounds: usize,
    /// Scripted shard-worker panics that fired (each one quarantined,
    /// re-collected and rehabilitated).
    shard_panics: usize,
    /// Backend faults the per-round random plans actually injected.
    checkpoint_faults_injected: u64,
    /// Checkpoint attempts that failed and went through crash recovery.
    checkpoint_failures: usize,
    /// Recoveries that needed `salvage_checkpoint` (restore alone failed).
    salvages: usize,
    recovery_latency: LatencySummary,
    /// Clients generated — every one of them must be counted at the end.
    expected_reports: u64,
    /// Reports held by the live collector after the last round.
    final_reports: u64,
    /// Reports held by the checkpoint directory, restored from disk.
    restored_reports: u64,
    /// `expected - restored` — the headline number; the run dies unless 0.
    report_loss: u64,
    /// Max absolute deviation of the final snapshot's marginals from the
    /// generated ground truth (sanity: chaos must not distort estimates).
    final_max_marginal_abs_error: f64,
}

/// `--chaos` mode: the same generate→ingest→checkpoint loop as a normal
/// run, but every third round a shard worker is scripted to die and every
/// checkpoint runs through a seeded `FaultyBackend` with a random fault
/// plan.  Every failure is recovered on the spot — quarantine +
/// deterministic re-collection for dead shards, salvage + re-commit for
/// crashed checkpoints — and the run ends by proving zero report loss.
fn run_chaos(options: &Options) {
    let clock: Arc<dyn Clock> = Arc::new(MonotonicClock::new());
    let (spec, schema) = build_spec(options).unwrap_or_else(|e| die(e));
    let inner = spec.build_arc(&schema).unwrap_or_else(|e| die(e));
    let chaos = Arc::new(ChaosProtocol::new(Arc::clone(&inner)));
    let mut collector =
        ShardedCollector::new(Arc::clone(&chaos) as Arc<dyn Protocol>, options.shards)
            .unwrap_or_else(|e| die(e));
    let obs = options.metrics_out.is_some().then(|| {
        let obs = StreamObs::new(Arc::clone(&clock), options.shards);
        collector
            .instrument(Arc::clone(&obs))
            .unwrap_or_else(|e| die(format!("cannot instrument collector: {e}")));
        obs
    });
    // The soak's durability target: the given directory, or a scratch one.
    let (dir, scratch) = match &options.checkpoint_dir {
        Some(dir) => (dir.clone(), false),
        None => (
            std::env::temp_dir().join(format!("mdrr-chaos-{}", std::process::id())),
            true,
        ),
    };
    std::fs::remove_dir_all(&dir).ok();

    let synthesizer = AdultSynthesizer::paper_sized();
    let record_arity = schema.len();
    let mut generator_rng = StdRng::seed_from_u64(options.seed);
    let mut true_counts: Vec<Vec<u64>> = schema
        .cardinalities()
        .iter()
        .map(|&c| vec![0u64; c])
        .collect();

    println!("{}", "=".repeat(72));
    println!(
        "stream_sim --chaos — {} clients through {} shards ({} rounds, {}, scripted \
         worker panics + faulted checkpoints)",
        options.clients,
        options.shards,
        options.rounds,
        inner.name()
    );
    println!("{}", "=".repeat(72));

    let mut recoveries: Vec<f64> = Vec::new();
    let mut shard_panics = 0usize;
    let mut checkpoint_failures = 0usize;
    let mut salvages = 0usize;
    let mut faults_injected = 0u64;
    let mut expected = 0u64;

    // One faulty backend per "disk epoch": it persists across rounds (a
    // lying sync in round N can surface as lost data at round N+2's
    // crash, exactly like a real fsync lie) and is replaced by a fresh
    // one after each simulated power cut — the reboot onto a new disk
    // view.
    let make_backend = |epoch: u64| {
        let plan_seed = options
            .seed
            .wrapping_add(epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Arc::new(FaultyBackend::new(FaultPlan::random(plan_seed, 64, 3)))
    };
    let mut epoch = 0u64;
    let mut backend = make_backend(epoch);

    for round in 1..=options.rounds {
        let clients = if round == options.rounds {
            options.clients - options.clients / options.rounds * (options.rounds - 1)
        } else {
            options.clients / options.rounds
        };
        let mut rows: Vec<Vec<u32>> = Vec::with_capacity(clients);
        for _ in 0..clients {
            let mut record = synthesizer.sample_record(&mut generator_rng);
            record.truncate(record_arity);
            for (j, &v) in record.iter().enumerate() {
                true_counts[j][v as usize] += 1;
            }
            rows.push(record);
        }
        let seed = options.seed.wrapping_add(round as u64);

        // Every third round, the next encode_tally call dies: one shard
        // worker panics mid-ingest.  The shard ranges are captured first —
        // they are the recovery's work order.
        if round % 3 == 2 {
            chaos.arm(1);
        }
        let ranges = collector.shard_ranges(rows.len());
        match collector.ingest_records(&rows, seed) {
            Ok(_) => {}
            Err(MdrrError::ShardFailed { shard, .. }) => {
                shard_panics += 1;
                let t0 = clock.now_nanos();
                // Deterministic re-collection: the lost range under the
                // shard's original derived seed, merged into its
                // pre-failure state, then rehabilitation.
                let lost = ranges
                    .iter()
                    .find(|(k, _)| *k == shard)
                    .map(|(_, r)| r.clone())
                    .unwrap_or(0..0);
                let lost_len = lost.len();
                let mut rerun =
                    ShardedCollector::new(Arc::clone(&inner), 1).unwrap_or_else(|e| die(e));
                rerun
                    .ingest_records(&rows[lost], offset_base_seed(seed, shard))
                    .unwrap_or_else(|e| die(format!("re-collection failed: {e}")));
                let mut replacement = collector.shards()[shard].clone();
                replacement
                    .merge(&rerun.shards()[0])
                    .unwrap_or_else(|e| die(format!("re-collection merge failed: {e}")));
                collector
                    .rehabilitate(shard, replacement)
                    .unwrap_or_else(|e| die(format!("rehabilitation failed: {e}")));
                let secs = clock.now_nanos().saturating_sub(t0) as f64 / 1e9;
                recoveries.push(secs);
                println!(
                    "round {round:>3}: shard {shard} worker died — re-collected its \
                     {lost_len} lost reports and rehabilitated in {secs:.4}s"
                );
            }
            Err(e) => die(format!("chaos ingest failed unrecoverably: {e}")),
        }
        expected += clients as u64;

        // Checkpoint through the epoch's faulty backend: transients are
        // retried away; a torn write crashes the attempt and every later
        // operation, leaving a possibly-torn directory (possibly missing
        // files an earlier round's lying sync never made durable).
        let storage = Storage::new(
            Arc::clone(&backend) as Arc<dyn StorageBackend>,
            RetryPolicy::default(),
            Arc::clone(&clock),
        );
        let app = format!("chaos round {round}");
        let result = collector.checkpoint_with(&spec, &dir, Some(&app), &storage);
        if let Err(e) = result {
            checkpoint_failures += 1;
            // Finish the crash: whatever the backend never durably synced
            // is gone, exactly as after a real power cut.
            backend.power_cut();
            faults_injected += backend.injected();
            epoch += 1;
            backend = make_backend(epoch);
            let t0 = clock.now_nanos();
            if ShardedCollector::restore(&dir).is_err() {
                match salvage_checkpoint(&dir, &Storage::os()) {
                    Ok(report) => {
                        salvages += 1;
                        println!(
                            "round {round:>3}: torn checkpoint salvaged — {} shard(s) \
                             recovered, {} dropped",
                            report.recovered.len(),
                            report.dropped.len()
                        );
                    }
                    Err(salvage_err) => println!(
                        "round {round:>3}: nothing salvageable ({salvage_err}); rebuilding \
                         from the live collector"
                    ),
                }
            }
            // The live collector is authoritative: re-commit cleanly.
            collector
                .checkpoint(&spec, &dir, Some(&app))
                .unwrap_or_else(|e2| die(format!("clean re-checkpoint failed: {e2}")));
            let secs = clock.now_nanos().saturating_sub(t0) as f64 / 1e9;
            recoveries.push(secs);
            println!(
                "round {round:>3}: checkpoint crashed ({e}); durability recovered in {secs:.4}s"
            );
        }
        println!(
            "round {round:>3}: {:>9} reports total | {} backend fault(s) injected so far",
            collector.total_reports(),
            faults_injected + backend.injected()
        );
    }
    faults_injected += backend.injected();

    // The estimates survived the chaos: compare the final snapshot's
    // marginals against the generated ground truth, as a normal run does.
    let snapshot = collector.snapshot().unwrap_or_else(|e| die(e));
    let total = collector.total_reports();
    let mut max_error = 0.0f64;
    for (j, channel) in true_counts.iter().enumerate() {
        for (code, &count) in channel.iter().enumerate() {
            let truth = count as f64 / total as f64;
            let estimated = snapshot
                .frequency(&[(j, code as u32)])
                .unwrap_or_else(|e| die(format!("marginal query failed: {e}")));
            max_error = max_error.max((estimated - truth).abs());
        }
    }

    // The zero-loss verdict: live, restored and expected counts agree,
    // and the on-disk shards equal the live shards bit-for-bit.
    let restored = ShardedCollector::restore(&dir)
        .unwrap_or_else(|e| die(format!("final restore from {} failed: {e}", dir.display())));
    let restored_reports = restored.collector.total_reports();
    if restored.collector.shards() != collector.shards() {
        die("chaos run lost data: restored shards diverge from the live collector");
    }
    let report_loss = expected
        .saturating_sub(total)
        .max(expected.saturating_sub(restored_reports));
    if report_loss != 0 || total != expected || restored_reports != expected {
        die(format!(
            "chaos run lost reports: expected {expected}, live {total}, restored \
             {restored_reports}"
        ));
    }

    let mut sorted = recoveries;
    let report = ChaosReport {
        protocol: inner.name(),
        clients: options.clients,
        shards: options.shards,
        rounds: options.rounds,
        shard_panics,
        checkpoint_faults_injected: faults_injected,
        checkpoint_failures,
        salvages,
        recovery_latency: LatencySummary::from_sorted(&mut sorted),
        expected_reports: expected,
        final_reports: total,
        restored_reports,
        report_loss,
        final_max_marginal_abs_error: max_error,
    };
    println!("{}", "-".repeat(72));
    println!(
        "chaos soak survived: {} shard panic(s), {} checkpoint crash(es) ({} salvaged), \
         {} backend fault(s) injected — 0 of {} reports lost; recovery p50 {:.4}s / max {:.4}s",
        report.shard_panics,
        report.checkpoint_failures,
        report.salvages,
        report.checkpoint_faults_injected,
        report.expected_reports,
        report.recovery_latency.p50_secs,
        report.recovery_latency.max_secs
    );
    println!(
        "final max marginal error: {:.5} (chaos snapshot vs generated ground truth)",
        report.final_max_marginal_abs_error
    );
    if let (Some(path), Some(obs)) = (&options.metrics_out, &obs) {
        write_metrics(path, obs);
    }
    if scratch {
        std::fs::remove_dir_all(&dir).ok();
    }
    let cli = mdrr_bench::CliOptions {
        output: options.output.clone(),
        ..Default::default()
    };
    maybe_write_json(&cli, &report);
}

/// Reports per pre-encoded batch frame in `--remote` mode: large enough
/// that framing overhead (28 bytes) vanishes against the payload, small
/// enough that the window (frames in flight) still bounds buffering to a
/// few megabytes.
const REMOTE_BATCH_REPORTS: usize = 4096;

/// Order statistics of the remote run's per-batch ack latency (send →
/// acknowledgement, pooled across every connection's histogram).
#[derive(Debug, Clone, Serialize)]
struct AckLatency {
    batches: u64,
    mean_nanos: f64,
    p50_nanos: u64,
    p99_nanos: u64,
    p999_nanos: u64,
}

/// The remote-mode result written by `--out` (`BENCH_serve.json` in CI).
#[derive(Debug, Clone, Serialize)]
struct RemoteReport {
    protocol: String,
    conns: usize,
    shards: usize,
    /// Passes each connection made over its pre-encoded frames.
    passes: usize,
    /// Reports per batch frame ([`REMOTE_BATCH_REPORTS`], short last frames aside).
    batch_reports: usize,
    /// Reports every connection together promised to deliver.
    expected_reports: u64,
    /// Reports the clients hold acknowledgements for.
    acked_reports: u64,
    /// Reports in the drained collector — the run dies unless all three
    /// report counts agree exactly (zero accepted-report loss).
    server_reports: u64,
    /// Wall-clock of the timed section: first byte sent → every
    /// connection flushed and closed.
    total_secs: f64,
    /// `expected_reports / total_secs` — the headline number (the CI
    /// serve job asserts a floor on it).
    reports_per_sec: f64,
    frames_sent: u64,
    bytes_sent: u64,
    wire_bytes_per_report: f64,
    ack_latency: AckLatency,
    /// Max absolute deviation of the drained snapshot's marginals from
    /// the generated ground truth (sanity: the socket must not distort
    /// estimates).
    final_max_marginal_abs_error: f64,
}

/// `--remote` mode: bind an in-process `mdrr-serve` daemon on loopback,
/// pre-randomize and pre-encode every batch frame, then stream them from
/// `--conns` concurrent `WireClient`s for `--rounds` passes — the timed
/// section moves bytes and patches sequence numbers, nothing else.  Ends
/// with a drain and a zero-accepted-loss verdict.
fn run_remote(options: &Options) {
    let clock: Arc<dyn Clock> = Arc::new(MonotonicClock::new());
    let (spec, schema) = build_spec(options).unwrap_or_else(|e| die(e));
    let protocol = spec.build_arc(&schema).unwrap_or_else(|e| die(e));
    let sizes = protocol.channel_sizes();

    let serve_config = ServeConfig {
        n_shards: options.shards,
        ..ServeConfig::default()
    };
    let obs = ServeObs::new(Arc::clone(&clock));
    let server = CollectorServer::bind(
        "127.0.0.1:0",
        &schema,
        &spec,
        serve_config,
        Arc::clone(&clock),
        Some(Arc::clone(&obs)),
    )
    .unwrap_or_else(|e| die(format!("cannot bind collector daemon: {e}")));
    let addr = server.local_addr();

    println!("{}", "=".repeat(72));
    println!(
        "stream_sim --remote — {} clients × {} passes over loopback TCP to {addr} \
         ({} connections, {} shards, {})",
        options.clients,
        options.rounds,
        options.conns,
        options.shards,
        protocol.name()
    );
    println!("{}", "=".repeat(72));

    // Pre-generate and pre-encode outside the timed section: each
    // connection gets its share of the population, locally randomized
    // (exactly what a real client device would send) and framed into
    // ready-to-write batch frames.  Ground-truth counts of the generated
    // records feed the final marginal-error sanity check.
    let synthesizer = AdultSynthesizer::paper_sized();
    let record_arity = schema.len();
    let mut true_counts: Vec<Vec<u64>> = schema
        .cardinalities()
        .iter()
        .map(|&c| vec![0u64; c])
        .collect();
    let mut conn_frames: Vec<Vec<(Vec<u8>, u64)>> = Vec::with_capacity(options.conns);
    let per_conn = options.clients / options.conns;
    for c in 0..options.conns {
        let conn_clients = if c == options.conns - 1 {
            options.clients - per_conn * (options.conns - 1)
        } else {
            per_conn
        };
        let mut rng = StdRng::seed_from_u64(offset_base_seed(options.seed, c));
        let mut frames = Vec::new();
        let mut done = 0usize;
        while done < conn_clients {
            let n = REMOTE_BATCH_REPORTS.min(conn_clients - done);
            let mut batch = ReportBatch::new(sizes.len())
                .unwrap_or_else(|e| die(format!("cannot build a batch: {e}")));
            for _ in 0..n {
                let mut record = synthesizer.sample_record(&mut rng);
                record.truncate(record_arity);
                for (j, &v) in record.iter().enumerate() {
                    true_counts[j][v as usize] += 1;
                }
                let codes = protocol
                    .encode_record(&record, &mut rng)
                    .unwrap_or_else(|e| die(format!("client-side randomization failed: {e}")));
                batch
                    .push(&Report::new(codes))
                    .unwrap_or_else(|e| die(format!("cannot buffer a report: {e}")));
            }
            // The shard hint spreads frames round-robin; the sequence
            // number is patched per send.
            let payload = wire::encode_batch_payload(0, frames.len() as u32, &batch)
                .unwrap_or_else(|e| die(format!("cannot encode a batch payload: {e}")));
            let frame = wire::encode_frame(FrameType::Batch, &payload)
                .unwrap_or_else(|e| die(format!("cannot encode a batch frame: {e}")));
            frames.push((frame, n as u64));
            done += n;
        }
        conn_frames.push(frames);
    }
    let expected: u64 = options.clients as u64 * options.rounds as u64;
    println!(
        "pre-encoded {} frames ({} reports) per pass across {} connections",
        conn_frames.iter().map(Vec::len).sum::<usize>(),
        options.clients,
        options.conns
    );

    // The timed section: every connection dials and handshakes first,
    // then all start streaming together off a barrier.
    let barrier = Arc::new(std::sync::Barrier::new(options.conns + 1));
    let passes = options.rounds;
    let workers: Vec<_> = conn_frames
        .into_iter()
        .enumerate()
        .map(|(c, mut frames)| {
            let schema = schema.clone();
            let spec = spec.clone();
            let clock = Arc::clone(&clock);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = WireClient::connect(
                    addr,
                    schema,
                    spec,
                    ClientConfig::default(),
                    Arc::clone(&clock),
                )
                .unwrap_or_else(|e| die(format!("connection {c} cannot dial: {e}")));
                let latency = Arc::new(Histogram::new());
                client.set_ack_latency(Arc::clone(&latency));
                let mut frames_sent = 0u64;
                let mut bytes_sent = 0u64;
                barrier.wait();
                for _ in 0..passes {
                    for (frame, reports) in &mut frames {
                        client
                            .send_raw_batch(frame, *reports)
                            .unwrap_or_else(|e| die(format!("connection {c} send failed: {e}")));
                        frames_sent += 1;
                        bytes_sent += frame.len() as u64;
                    }
                }
                client
                    .flush()
                    .unwrap_or_else(|e| die(format!("connection {c} flush failed: {e}")));
                let acked = client.acked_reports();
                client
                    .close()
                    .unwrap_or_else(|e| die(format!("connection {c} close failed: {e}")));
                (acked, frames_sent, bytes_sent, latency.snapshot())
            })
        })
        .collect();
    barrier.wait();
    let started = clock.now_nanos();
    let mut acked = 0u64;
    let mut frames_sent = 0u64;
    let mut bytes_sent = 0u64;
    let mut latency = HistogramSnapshot::default();
    for worker in workers {
        let (a, f, b, h) = worker
            .join()
            .unwrap_or_else(|_| die("a connection thread panicked"));
        acked += a;
        frames_sent += f;
        bytes_sent += b;
        latency.merge(&h);
    }
    let total_secs = clock.now_nanos().saturating_sub(started) as f64 / 1e9;

    // The zero-accepted-loss verdict: what the clients hold acks for,
    // what the server metered, and what the drained collector actually
    // contains must agree exactly.
    let drained = server
        .drain()
        .unwrap_or_else(|e| die(format!("drain failed: {e}")));
    let server_reports = drained.collector.total_reports();
    if acked != expected || server_reports != expected || drained.acked_reports != expected {
        die(format!(
            "remote run lost reports: expected {expected}, clients hold acks for {acked}, \
             server acked {}, drained collector holds {server_reports}",
            drained.acked_reports
        ));
    }

    // Sanity: estimates from socket-ingested counts still track the
    // generated ground truth (every record was sent `passes` times, so
    // the truth frequencies are unchanged).
    let snapshot = drained
        .collector
        .snapshot()
        .unwrap_or_else(|e| die(format!("snapshot failed: {e}")));
    let mut max_error = 0.0f64;
    for (j, channel) in true_counts.iter().enumerate() {
        for (code, &count) in channel.iter().enumerate() {
            let truth = (count * passes as u64) as f64 / expected as f64;
            let estimated = snapshot
                .frequency(&[(j, code as u32)])
                .unwrap_or_else(|e| die(format!("marginal query failed: {e}")));
            max_error = max_error.max((estimated - truth).abs());
        }
    }

    let report = RemoteReport {
        protocol: protocol.name(),
        conns: options.conns,
        shards: options.shards,
        passes,
        batch_reports: REMOTE_BATCH_REPORTS,
        expected_reports: expected,
        acked_reports: acked,
        server_reports,
        total_secs,
        reports_per_sec: expected as f64 / total_secs,
        frames_sent,
        bytes_sent,
        wire_bytes_per_report: bytes_sent as f64 / expected as f64,
        ack_latency: AckLatency {
            batches: latency.count,
            mean_nanos: latency.mean(),
            p50_nanos: latency.p50(),
            p99_nanos: latency.p99(),
            p999_nanos: latency.p999(),
        },
        final_max_marginal_abs_error: max_error,
    };
    println!("{}", "-".repeat(72));
    println!(
        "{} reports over the wire in {:.2}s — {:.0} reports/s ({} frames, {:.1} MiB, \
         {:.1} bytes/report)",
        report.expected_reports,
        report.total_secs,
        report.reports_per_sec,
        report.frames_sent,
        report.bytes_sent as f64 / (1024.0 * 1024.0),
        report.wire_bytes_per_report
    );
    println!(
        "ack latency: p50 {} | p99 {} | p999 {} over {} batches; zero accepted-report loss \
         ({} reports drained)",
        fmt_nanos(report.ack_latency.p50_nanos),
        fmt_nanos(report.ack_latency.p99_nanos),
        fmt_nanos(report.ack_latency.p999_nanos),
        report.ack_latency.batches,
        report.server_reports
    );
    println!(
        "final max marginal error: {:.5} (socket-drained snapshot vs generated ground truth)",
        report.final_max_marginal_abs_error
    );
    if let Some(path) = &options.metrics_out {
        let json = mdrr_obs::to_json(&obs.registry().snapshot(), &obs.journal().events());
        std::fs::write(path, json)
            .unwrap_or_else(|e| die(format!("cannot write {}: {e}", path.display())));
        println!("serve metrics written to {}", path.display());
    }
    let cli = mdrr_bench::CliOptions {
        output: options.output.clone(),
        ..Default::default()
    };
    maybe_write_json(&cli, &report);
}

fn main() {
    let mut options = Options::parse(std::env::args().skip(1)).unwrap_or_else(|message| {
        eprintln!("{message}");
        eprintln!(
            "usage: [--clients N] [--shards K] [--rounds R] \
             [--protocol independent|joint|clusters] [--spec PATH] [--path batch|per-record] \
             [--seed N] [--quick] [--out PATH] [--checkpoint-dir DIR] [--resume DIR] \
             [--kill-after N] [--merge PATH]... [--merged-out PATH] [--metrics-out PATH] \
             [--chaos] [--remote] [--conns N]"
        );
        std::process::exit(2);
    });
    if !options.merge.is_empty() {
        run_merge(&options);
        return;
    }
    if options.chaos {
        run_chaos(&options);
        return;
    }
    if options.remote {
        run_remote(&options);
        return;
    }

    // The one clock of the whole run: every wall-clock read below — round
    // timing, totals and (when `--metrics-out` is given) the collector's
    // own instrumentation — goes through this injected monotonic source.
    let clock: Arc<dyn Clock> = Arc::new(MonotonicClock::new());

    // Assemble the run: fresh, or restored from a checkpoint directory.
    // On resume, the run's targets (clients, rounds, seed, protocol,
    // ingestion path) come from the persisted state — the original
    // invocation's contract — not from this invocation's flags.
    let (spec, protocol, mut collector, obs, mut state): (
        ProtocolSpec,
        Arc<dyn Protocol>,
        ShardedCollector,
        Option<Arc<StreamObs>>,
        ResumeState,
    ) = match options.resume.clone() {
        Some(dir) => {
            let (restored, obs) = if options.metrics_out.is_some() {
                let (restored, obs) = ShardedCollector::restore_observed(&dir, Arc::clone(&clock))
                    .unwrap_or_else(|e| die(format!("cannot resume from {}: {e}", dir.display())));
                (restored, Some(obs))
            } else {
                let restored = ShardedCollector::restore(&dir)
                    .unwrap_or_else(|e| die(format!("cannot resume from {}: {e}", dir.display())));
                (restored, None)
            };
            let app = restored.app_state.unwrap_or_else(|| {
                die(format!(
                    "{} carries no stream_sim resume state (was it written by a library \
                     checkpoint?)",
                    dir.display()
                ))
            });
            let state: ResumeState = serde_json::from_str(&app)
                .unwrap_or_else(|e| die(format!("malformed resume state: {e}")));
            options.clients = state.clients;
            options.shards = state.shards;
            options.rounds = state.rounds;
            options.seed = state.seed;
            options.protocol = state.protocol.clone();
            options.path = IngestPath::parse(&state.path).unwrap_or_else(|e| die(e));
            // Resumed runs keep checkpointing into the same directory
            // unless redirected.
            if options.checkpoint_dir.is_none() {
                options.checkpoint_dir = Some(dir.clone());
            }
            println!(
                "resuming from {}: {} of {} rounds done, {} of {} clients ingested",
                dir.display(),
                state.rounds_done,
                state.rounds,
                state.clients_done,
                state.clients
            );
            let protocol = restored.collector.protocol().clone();
            (restored.spec, protocol, restored.collector, obs, state)
        }
        None => {
            let (spec, schema) = build_spec(&options).unwrap_or_else(|e| die(e));
            let protocol = spec.build_arc(&schema).unwrap_or_else(|e| die(e));
            let mut collector =
                ShardedCollector::new(protocol.clone(), options.shards).unwrap_or_else(|e| die(e));
            let obs = options.metrics_out.is_some().then(|| {
                let obs = StreamObs::new(Arc::clone(&clock), options.shards);
                collector
                    .instrument(Arc::clone(&obs))
                    .unwrap_or_else(|e| die(format!("cannot instrument collector: {e}")));
                obs
            });
            let state = ResumeState {
                seed: options.seed,
                clients: options.clients,
                shards: options.shards,
                rounds: options.rounds,
                protocol: options.protocol.clone(),
                path: options.path.name().to_string(),
                rounds_done: 0,
                clients_done: 0,
                generator_rng: StdRng::seed_from_u64(options.seed).state(),
                true_counts: schema
                    .cardinalities()
                    .iter()
                    .map(|&c| vec![0u64; c])
                    .collect(),
            };
            (spec, protocol, collector, obs, state)
        }
    };
    if state.rounds_done >= options.rounds {
        println!(
            "checkpoint already covers all {} rounds ({} clients); nothing to resume",
            options.rounds, state.clients_done
        );
        return;
    }

    let schema = protocol.schema().clone();
    let synthesizer = AdultSynthesizer::paper_sized();
    let record_arity = schema.len();
    let protocol_name = protocol.name();
    let path_name = options.path.name();
    let first_round = state.rounds_done + 1;

    println!("{}", "=".repeat(72));
    println!(
        "stream_sim — {} clients through {} shards ({} rounds, {}, {path_name} path, \
         total ε = {:.3})",
        options.clients,
        options.shards,
        options.rounds,
        protocol_name,
        protocol.total_epsilon()
    );
    println!("{}", "=".repeat(72));

    // The generator RNG continues from the persisted position on resume —
    // the same draw stream an uninterrupted run would have consumed.
    let mut generator_rng = StdRng::from_state(state.generator_rng)
        .unwrap_or_else(|| die("resume state carries an impossible (all-zero) RNG position"));
    let mut rounds = Vec::with_capacity(options.rounds - state.rounds_done);
    // Clients ingested by *this* process — the denominator of the overall
    // throughput (a resumed run only worked the remaining rounds; the
    // killed process's clients are not this process's wall-clock work).
    let clients_this_process = options.clients - state.clients_done;
    // Clients arrive columnar on the batch path (zero per-record
    // allocation in the timed section) and row-major on the reference
    // path.
    let mut columnar = RecordsBuffer::new(record_arity).expect("schema is non-empty");
    let started = clock.now_nanos();

    for round in first_round..=options.rounds {
        // Clients of this round (the last round absorbs the remainder).
        let clients = if round == options.rounds {
            options.clients - options.clients / options.rounds * (options.rounds - 1)
        } else {
            options.clients / options.rounds
        };
        columnar.clear();
        let mut rows: Vec<Vec<u32>> = Vec::new();
        for _ in 0..clients {
            let mut record = synthesizer.sample_record(&mut generator_rng);
            record.truncate(record_arity);
            for (j, &v) in record.iter().enumerate() {
                state.true_counts[j][v as usize] += 1;
            }
            match options.path {
                IngestPath::Batch => columnar
                    .push_record(&record)
                    .expect("generated records fit the schema arity"),
                IngestPath::PerRecord => rows.push(record),
            }
        }
        // Time only the collector's work (encoding + sharded ingestion),
        // not the simulator's record generation above.
        let seed = options.seed.wrapping_add(round as u64);
        let allocations_before = ALLOCATIONS.load(Ordering::Relaxed);
        let round_start = clock.now_nanos();
        match options.path {
            IngestPath::Batch => collector.ingest_view(&columnar.view(), seed),
            IngestPath::PerRecord => collector.ingest_records_per_record(&rows, seed),
        }
        .expect("ingestion failed");
        let round_secs = clock.now_nanos().saturating_sub(round_start) as f64 / 1e9;
        let ingest_allocations = ALLOCATIONS.load(Ordering::Relaxed) - allocations_before;

        let snapshot = collector.snapshot().expect("snapshot failed");
        let total = collector.total_reports();
        let mut max_error = 0.0f64;
        for (j, channel) in state.true_counts.iter().enumerate() {
            for (code, &count) in channel.iter().enumerate() {
                let truth = count as f64 / total as f64;
                let estimated = snapshot
                    .frequency(&[(j, code as u32)])
                    .expect("marginal query failed");
                max_error = max_error.max((estimated - truth).abs());
            }
        }
        let reports_per_sec = if round_secs > 0.0 {
            clients as f64 / round_secs
        } else {
            f64::INFINITY
        };
        let allocations_per_report = ingest_allocations as f64 / clients as f64;
        println!(
            "round {round:>3}: {total:>9} reports total | {reports_per_sec:>12.0} reports/s \
             | {allocations_per_report:>7.4} allocs/report | max marginal error {max_error:.5}"
        );
        if let Some(obs) = &obs {
            print_progress(obs);
        }
        rounds.push(RoundReport {
            round,
            total_reports: total,
            round_secs,
            reports_per_sec,
            ingest_allocations,
            allocations_per_report,
            max_marginal_abs_error: max_error,
        });

        // Durability: persist shards + resume state after every round.
        state.rounds_done = round;
        state.clients_done += clients;
        state.generator_rng = generator_rng.state();
        if let Some(dir) = &options.checkpoint_dir {
            let app_state = serde_json::to_string(&state)
                .unwrap_or_else(|e| die(format!("resume state does not serialize: {e}")));
            collector
                .checkpoint(&spec, dir, Some(&app_state))
                .unwrap_or_else(|e| die(format!("checkpoint failed: {e}")));
            if options.kill_after == Some(round) {
                println!(
                    "--kill-after {round}: simulated crash after checkpointing to {} \
                     (resume with --resume)",
                    dir.display()
                );
                // The simulated crash happens *after* the checkpoint
                // committed, so the metrics of the killed process are
                // still worth inspecting — flush them before dying.
                if let (Some(path), Some(obs)) = (&options.metrics_out, &obs) {
                    write_metrics(path, obs);
                }
                return;
            }
        }
    }

    let total_secs = clock.now_nanos().saturating_sub(started) as f64 / 1e9;
    let mean = |f: fn(&RoundReport) -> f64| -> f64 {
        rounds.iter().map(f).sum::<f64>() / rounds.len() as f64
    };
    let result = SimulationResult {
        protocol: protocol_name,
        path: path_name.to_string(),
        clients: options.clients,
        shards: options.shards,
        first_round,
        total_secs,
        overall_reports_per_sec: clients_this_process as f64 / total_secs,
        mean_ingest_reports_per_sec: mean(|r| r.reports_per_sec),
        mean_allocations_per_report: mean(|r| r.allocations_per_report),
        shard_reports: collector.shards().iter().map(|s| s.n_reports()).collect(),
        rounds,
    };
    println!("{}", "-".repeat(72));
    println!(
        "{} reports in {:.2}s — {:.0} reports/s end to end (generation + ingestion + {} \
         snapshots); mean ingest {:.0} reports/s at {:.4} allocs/report",
        clients_this_process,
        total_secs,
        result.overall_reports_per_sec,
        result.rounds.len(),
        result.mean_ingest_reports_per_sec,
        result.mean_allocations_per_report
    );
    println!(
        "final max marginal error: {:.5} (streamed snapshot vs generated ground truth)",
        result
            .rounds
            .last()
            .map(|r| r.max_marginal_abs_error)
            .unwrap_or(f64::NAN)
    );

    if let (Some(path), Some(obs)) = (&options.metrics_out, &obs) {
        write_metrics(path, obs);
    }

    let cli = mdrr_bench::CliOptions {
        output: options.output.clone(),
        ..Default::default()
    };
    maybe_write_json(&cli, &result);
}

/// Writes the full metrics + journal JSON of an instrumented run.
fn write_metrics(path: &Path, obs: &StreamObs) {
    let json = mdrr_obs::to_json(&obs.registry().snapshot(), &obs.journal().events());
    std::fs::write(path, json)
        .unwrap_or_else(|e| die(format!("cannot write {}: {e}", path.display())));
    println!(
        "metrics written to {} ({} journal events, {} dropped)",
        path.display(),
        obs.journal().len(),
        obs.journal().dropped()
    );
}

/// One per-round observability line: ingest latency percentiles pooled
/// across the shards (exact histogram merge), the shard imbalance gauge
/// and the journal depth.
fn print_progress(obs: &StreamObs) {
    let snapshot = obs.registry().snapshot();
    let mut ingest = HistogramSnapshot::default();
    for k in 0..obs.n_shards() {
        let shard = k.to_string();
        if let Some(h) =
            snapshot.histogram_snapshot("stream_shard_ingest_nanos", &[("shard", &shard)])
        {
            ingest.merge(h);
        }
    }
    let imbalance = snapshot
        .gauge_value("stream_shard_imbalance_permille", &[])
        .unwrap_or(0);
    println!(
        "       obs: ingest p50 {} | p99 {} | imbalance {imbalance}\u{2030} | {} journal events",
        fmt_nanos(ingest.p50()),
        fmt_nanos(ingest.p99()),
        obs.journal().len()
    );
}

/// Renders a nanosecond latency with a readable unit (histogram bucket
/// edges are powers of two, so sub-millisecond precision is all we have).
fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.2}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}
