//! `stream_sim` — drives the streaming subsystem at million-client scale.
//!
//! Simulates `--clients` respondents of the synthetic Adult population:
//! each client locally randomizes her record into a compact report, the
//! sharded collector ingests the reports across `--shards` scoped-thread
//! workers, and after every round the collector is snapshotted mid-stream
//! to report ingestion throughput and estimation error over time.
//!
//! ```text
//! cargo run -p mdrr-bench --release --bin stream_sim
//! cargo run -p mdrr-bench --release --bin stream_sim -- --clients 2000000 --shards 16
//! cargo run -p mdrr-bench --release --bin stream_sim -- --quick --out /tmp/stream.json
//! cargo run -p mdrr-bench --release --bin stream_sim -- --path per-record
//! ```
//!
//! Flags: `--clients N` (default 1 000 000), `--shards K` (default 8),
//! `--rounds R` (default 10), `--protocol independent|joint|clusters`
//! (default independent), `--spec PATH` (a serde `ProtocolSpec` JSON file,
//! overriding `--protocol`), `--path batch|per-record` (default batch: the
//! columnar zero-allocation pipeline; `per-record` is the scalar reference
//! path, kept to quantify the gap), `--seed N`, `--quick` (50 000 clients,
//! 4 shards, 5 rounds), `--out PATH`.
//!
//! The binary counts heap allocations through a wrapping global allocator
//! and reports allocations **per ingested report** for the timed ingestion
//! section — the headline number of the zero-allocation batch pipeline
//! (expect ~0.00x for `batch`, ~2 for `per-record`).  The snapshot
//! estimates are numerically identical to the batch-path estimates on the
//! same randomized codes; that equivalence is pinned by
//! `crates/stream/tests/proptest_stream.rs` and the `mdrr-eval`
//! streamed-vs-batch experiment.

use mdrr_bench::maybe_write_json;
use mdrr_data::{adult_schema, AdultSynthesizer, RecordsBuffer};
use mdrr_protocols::{Clustering, FrequencyEstimator, Protocol, ProtocolSpec, RandomizationLevel};
use mdrr_stream::ShardedCollector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Counts every heap allocation (alloc + realloc) made by the process, so
/// the simulator can report allocations per ingested report for the timed
/// ingestion sections.
struct CountingAllocator;

/// Number of allocations since process start.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to the system allocator; the only addition is
// a relaxed atomic counter bump, which allocates nothing itself.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Keep probability used for every protocol variant.
const KEEP_PROBABILITY: f64 = 0.7;

/// Attributes the RR-Joint variant is restricted to (the full Adult joint
/// domain exceeds the protocol's cap).
const JOINT_ATTRIBUTES: [usize; 3] = [0, 1, 2];

#[derive(Debug, Clone, PartialEq)]
enum IngestPath {
    /// The columnar zero-allocation pipeline
    /// ([`ShardedCollector::ingest_view`]).
    Batch,
    /// The scalar reference pipeline
    /// ([`ShardedCollector::ingest_records_per_record`]).
    PerRecord,
}

#[derive(Debug, Clone)]
struct Options {
    clients: usize,
    shards: usize,
    rounds: usize,
    protocol: String,
    spec: Option<PathBuf>,
    path: IngestPath,
    seed: u64,
    output: Option<PathBuf>,
}

impl Options {
    fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut options = Options {
            clients: 1_000_000,
            shards: 8,
            rounds: 10,
            protocol: "independent".to_string(),
            spec: None,
            path: IngestPath::Batch,
            seed: 42,
            output: None,
        };
        let mut quick = false;
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            let mut value = |flag: &str| {
                iter.next()
                    .ok_or_else(|| format!("missing value for {flag}"))
            };
            match flag.as_str() {
                "--clients" => options.clients = parse(&flag, value(&flag)?)?,
                "--shards" => options.shards = parse(&flag, value(&flag)?)?,
                "--rounds" => options.rounds = parse(&flag, value(&flag)?)?,
                "--seed" => options.seed = parse(&flag, value(&flag)?)?,
                "--protocol" => options.protocol = value(&flag)?,
                "--spec" => options.spec = Some(PathBuf::from(value(&flag)?)),
                "--path" => {
                    options.path = match value(&flag)?.as_str() {
                        "batch" => IngestPath::Batch,
                        "per-record" => IngestPath::PerRecord,
                        other => {
                            return Err(format!(
                                "unknown path `{other}` (expected batch or per-record)"
                            ))
                        }
                    }
                }
                "--out" => options.output = Some(PathBuf::from(value(&flag)?)),
                "--quick" => quick = true,
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        if quick {
            options.clients = options.clients.min(50_000);
            options.shards = options.shards.min(4);
            options.rounds = options.rounds.min(5);
        }
        if options.clients == 0 || options.shards == 0 || options.rounds == 0 {
            return Err("--clients, --shards and --rounds must be positive".to_string());
        }
        // Every round must ingest at least one client, or its snapshot
        // would have nothing to estimate from.
        options.rounds = options.rounds.min(options.clients);
        Ok(options)
    }
}

fn parse<T: std::str::FromStr>(flag: &str, raw: String) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("invalid value `{raw}` for {flag}"))
}

/// One mid-stream snapshot measurement.
#[derive(Debug, Clone, Serialize)]
struct RoundReport {
    round: usize,
    total_reports: u64,
    round_secs: f64,
    reports_per_sec: f64,
    /// Heap allocations performed during the timed ingestion section.
    ingest_allocations: u64,
    /// `ingest_allocations / clients` — ~0 for the batch path.
    allocations_per_report: f64,
    /// Max absolute deviation of the snapshot's attribute marginals from
    /// the true empirical marginals of the generated clients so far.
    max_marginal_abs_error: f64,
}

/// The simulation result written by `--out`.
#[derive(Debug, Clone, Serialize)]
struct SimulationResult {
    protocol: String,
    /// `batch` or `per-record`.
    path: String,
    clients: usize,
    shards: usize,
    rounds: Vec<RoundReport>,
    total_secs: f64,
    overall_reports_per_sec: f64,
    /// Mean ingestion throughput over the rounds (the headline number: the
    /// collector's encode+count rate, generation and snapshots excluded).
    mean_ingest_reports_per_sec: f64,
    /// Mean allocations per report during ingestion.
    mean_allocations_per_report: f64,
}

/// The named protocol presets, as declarative specs — exactly what a
/// `--spec` JSON file would contain.
fn preset_spec(name: &str) -> Result<ProtocolSpec, String> {
    let level = RandomizationLevel::KeepProbability(KEEP_PROBABILITY);
    match name {
        "independent" => Ok(ProtocolSpec::independent(level)),
        "joint" => Ok(ProtocolSpec::Joint {
            level,
            max_domain: None,
            equivalent_risk: false,
        }),
        "clusters" => {
            let m = adult_schema().len();
            let clustering =
                Clustering::new((0..m / 2).map(|k| vec![2 * k, 2 * k + 1]).collect(), m)
                    .map_err(|e| e.to_string())?;
            Ok(ProtocolSpec::Clusters {
                level,
                clustering,
                equivalent_risk: false,
            })
        }
        other => Err(format!(
            "unknown protocol `{other}` (expected independent, joint or clusters)"
        )),
    }
}

/// Builds the simulated protocol: either from a `--spec` JSON file (built
/// over the full Adult schema, exactly as written) or from a named preset.
/// Only the RR-Joint *preset* is projected onto the first
/// [`JOINT_ATTRIBUTES`] of Adult (the full joint domain exceeds the cap);
/// a user-supplied spec is never silently reshaped.
fn build_protocol(options: &Options) -> Result<Arc<dyn Protocol>, String> {
    let mut schema = adult_schema();
    let spec = match &options.spec {
        Some(path) => {
            let json = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            serde_json::from_str(&json)
                .map_err(|e| format!("invalid ProtocolSpec in {}: {e}", path.display()))?
        }
        None => {
            let preset = preset_spec(&options.protocol)?;
            if matches!(preset, ProtocolSpec::Joint { .. }) {
                schema = schema
                    .project(&JOINT_ATTRIBUTES)
                    .map_err(|e| e.to_string())?;
            }
            preset
        }
    };
    // The simulator estimates from streamed count vectors, which
    // RR-Adjustment cannot do (Algorithm 2 needs the randomized
    // microdata) — fail before ingesting anything rather than at the
    // first snapshot.
    if matches!(spec, ProtocolSpec::Adjusted { .. }) {
        return Err(
            "RR-Adjustment cannot estimate from streamed counts; use its base protocol spec"
                .to_string(),
        );
    }
    spec.build_arc(&schema).map_err(|e| e.to_string())
}

fn main() {
    let options = Options::parse(std::env::args().skip(1)).unwrap_or_else(|message| {
        eprintln!("{message}");
        eprintln!(
            "usage: [--clients N] [--shards K] [--rounds R] \
             [--protocol independent|joint|clusters] [--spec PATH] [--path batch|per-record] \
             [--seed N] [--quick] [--out PATH]"
        );
        std::process::exit(2);
    });
    let protocol = build_protocol(&options).unwrap_or_else(|message| {
        eprintln!("{message}");
        std::process::exit(2);
    });

    let schema = protocol.schema().clone();
    let cards = schema.cardinalities();
    let synthesizer = AdultSynthesizer::paper_sized();
    let record_arity = schema.len();
    let protocol_name = protocol.name();
    let path_name = match options.path {
        IngestPath::Batch => "batch",
        IngestPath::PerRecord => "per-record",
    };

    println!("{}", "=".repeat(72));
    println!(
        "stream_sim — {} clients through {} shards ({} rounds, {}, {path_name} path, \
         total ε = {:.3})",
        options.clients,
        options.shards,
        options.rounds,
        protocol_name,
        protocol.total_epsilon()
    );
    println!("{}", "=".repeat(72));

    let mut collector =
        ShardedCollector::new(protocol, options.shards).expect("collector construction failed");
    // True per-attribute counts of the generated clients, for the error
    // column (the simulator knows the ground truth; a real collector does
    // not).
    let mut true_counts: Vec<Vec<u64>> = cards.iter().map(|&c| vec![0u64; c]).collect();
    let mut generator_rng = StdRng::seed_from_u64(options.seed);
    let mut rounds = Vec::with_capacity(options.rounds);
    // Clients arrive columnar on the batch path (zero per-record
    // allocation in the timed section) and row-major on the reference
    // path.
    let mut columnar = RecordsBuffer::new(record_arity).expect("schema is non-empty");
    let started = Instant::now();

    for round in 1..=options.rounds {
        // Clients of this round (the last round absorbs the remainder).
        let clients = if round == options.rounds {
            options.clients - options.clients / options.rounds * (options.rounds - 1)
        } else {
            options.clients / options.rounds
        };
        columnar.clear();
        let mut rows: Vec<Vec<u32>> = Vec::new();
        for _ in 0..clients {
            let mut record = synthesizer.sample_record(&mut generator_rng);
            record.truncate(record_arity);
            for (j, &v) in record.iter().enumerate() {
                true_counts[j][v as usize] += 1;
            }
            match options.path {
                IngestPath::Batch => columnar
                    .push_record(&record)
                    .expect("generated records fit the schema arity"),
                IngestPath::PerRecord => rows.push(record),
            }
        }
        // Time only the collector's work (encoding + sharded ingestion),
        // not the simulator's record generation above.
        let seed = options.seed.wrapping_add(round as u64);
        let allocations_before = ALLOCATIONS.load(Ordering::Relaxed);
        let round_start = Instant::now();
        match options.path {
            IngestPath::Batch => collector.ingest_view(&columnar.view(), seed),
            IngestPath::PerRecord => collector.ingest_records_per_record(&rows, seed),
        }
        .expect("ingestion failed");
        let round_secs = round_start.elapsed().as_secs_f64();
        let ingest_allocations = ALLOCATIONS.load(Ordering::Relaxed) - allocations_before;

        let snapshot = collector.snapshot().expect("snapshot failed");
        let total = collector.total_reports();
        let mut max_error = 0.0f64;
        for (j, channel) in true_counts.iter().enumerate() {
            for (code, &count) in channel.iter().enumerate() {
                let truth = count as f64 / total as f64;
                let estimated = snapshot
                    .frequency(&[(j, code as u32)])
                    .expect("marginal query failed");
                max_error = max_error.max((estimated - truth).abs());
            }
        }
        let reports_per_sec = if round_secs > 0.0 {
            clients as f64 / round_secs
        } else {
            f64::INFINITY
        };
        let allocations_per_report = ingest_allocations as f64 / clients as f64;
        println!(
            "round {round:>3}: {total:>9} reports total | {reports_per_sec:>12.0} reports/s \
             | {allocations_per_report:>7.4} allocs/report | max marginal error {max_error:.5}"
        );
        rounds.push(RoundReport {
            round,
            total_reports: total,
            round_secs,
            reports_per_sec,
            ingest_allocations,
            allocations_per_report,
            max_marginal_abs_error: max_error,
        });
    }

    let total_secs = started.elapsed().as_secs_f64();
    let mean = |f: fn(&RoundReport) -> f64| -> f64 {
        rounds.iter().map(f).sum::<f64>() / rounds.len() as f64
    };
    let result = SimulationResult {
        protocol: protocol_name,
        path: path_name.to_string(),
        clients: options.clients,
        shards: options.shards,
        total_secs,
        overall_reports_per_sec: options.clients as f64 / total_secs,
        mean_ingest_reports_per_sec: mean(|r| r.reports_per_sec),
        mean_allocations_per_report: mean(|r| r.allocations_per_report),
        rounds,
    };
    println!("{}", "-".repeat(72));
    println!(
        "{} reports in {:.2}s — {:.0} reports/s end to end (generation + ingestion + {} \
         snapshots); mean ingest {:.0} reports/s at {:.4} allocs/report",
        options.clients,
        total_secs,
        result.overall_reports_per_sec,
        result.rounds.len(),
        result.mean_ingest_reports_per_sec,
        result.mean_allocations_per_report
    );
    println!(
        "final max marginal error: {:.5} (streamed snapshot vs generated ground truth)",
        result
            .rounds
            .last()
            .map(|r| r.max_marginal_abs_error)
            .unwrap_or(f64::NAN)
    );

    let cli = mdrr_bench::CliOptions {
        output: options.output.clone(),
        ..Default::default()
    };
    maybe_write_json(&cli, &result);
}
