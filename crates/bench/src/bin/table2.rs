//! Regenerates **Table 2** of the paper: the Table 1 grid evaluated on
//! Adult6 (the Adult data set concatenated six times), showing how a larger
//! data set supports larger clusters.
//!
//! ```text
//! cargo run -p mdrr-bench --release --bin table2 -- --runs 100
//! ```

use mdrr_bench::{maybe_write_json, print_header, CliOptions};
use mdrr_eval::experiments::table2;
use mdrr_eval::render_table;

fn main() {
    let options = CliOptions::from_env();
    let config = options.experiment_config();
    print_header(
        "Table 2 — RR-Clusters relative error on Adult6 (sigma = 0.1)",
        &config,
    );

    let result = table2::run(&config).expect("Table 2 experiment failed");
    println!("{}", render_table(&result.table));
    println!(
        "paper reference: every cell improves with respect to Table 1; the largest gains appear\n\
         where the data-set size was the binding constraint (large Tv, and small p at small Tv)."
    );
    maybe_write_json(&options, &result);
}
