//! Shared plumbing of the experiment binaries: a tiny dependency-free CLI
//! parser, JSON output helpers and console headers.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper;
//! they all accept the same flags:
//!
//! ```text
//! --runs N      runs per evaluation point          (default: 100)
//! --records N   synthetic Adult size               (default: 32561)
//! --seed N      base seed                          (default: 42)
//! --quick       reduced scale (4000 records, 8 runs) for smoke runs
//! --out PATH    also write the result as JSON to PATH
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mdrr_eval::ExperimentConfig;
use serde::Serialize;
use std::path::{Path, PathBuf};

/// Parsed command-line options of an experiment binary.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CliOptions {
    /// Override for the number of runs per evaluation point.
    pub runs: Option<usize>,
    /// Override for the synthetic Adult record count.
    pub records: Option<usize>,
    /// Override for the base seed.
    pub seed: Option<u64>,
    /// Use the reduced-scale configuration.
    pub quick: bool,
    /// Optional JSON output path.
    pub output: Option<PathBuf>,
}

impl CliOptions {
    /// Parses options from the process arguments, exiting with a usage
    /// message on unknown flags.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1)).unwrap_or_else(|message| {
            eprintln!("{message}");
            eprintln!("usage: [--runs N] [--records N] [--seed N] [--quick] [--out PATH]");
            std::process::exit(2);
        })
    }

    /// Parses options from an explicit argument iterator.
    ///
    /// # Errors
    /// Returns a human-readable message for unknown flags or malformed
    /// values.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut options = CliOptions::default();
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            match flag.as_str() {
                "--runs" => options.runs = Some(parse_value(&flag, iter.next())?),
                "--records" => options.records = Some(parse_value(&flag, iter.next())?),
                "--seed" => options.seed = Some(parse_value(&flag, iter.next())?),
                "--quick" => options.quick = true,
                "--out" => {
                    options.output = Some(PathBuf::from(
                        iter.next()
                            .ok_or_else(|| format!("missing value for {flag}"))?,
                    ));
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(options)
    }

    /// Resolves the experiment configuration these options describe.
    pub fn experiment_config(&self) -> ExperimentConfig {
        let mut config = if self.quick {
            ExperimentConfig::quick()
        } else {
            ExperimentConfig::standard()
        };
        if let Some(runs) = self.runs {
            config.runs = runs;
        }
        if let Some(records) = self.records {
            config.records = records;
        }
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        config
    }
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, String> {
    let raw = value.ok_or_else(|| format!("missing value for {flag}"))?;
    raw.parse()
        .map_err(|_| format!("invalid value `{raw}` for {flag}"))
}

/// Writes a serializable result as pretty JSON.
///
/// # Errors
/// Returns a message on I/O or serialization failure.
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> Result<(), String> {
    let json = serde_json::to_string_pretty(value).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| e.to_string())
}

/// Writes the result to `options.output` if requested, reporting the path on
/// success and the error on failure (without aborting the run).
pub fn maybe_write_json<T: Serialize>(options: &CliOptions, value: &T) {
    if let Some(path) = &options.output {
        match write_json(path, value) {
            Ok(()) => println!("\nresult written to {}", path.display()),
            Err(message) => eprintln!("\nfailed to write {}: {message}", path.display()),
        }
    }
}

/// Prints a section header with the experiment name and configuration.
pub fn print_header(title: &str, config: &ExperimentConfig) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!(
        "records = {}, runs per point = {}, seed = {}, alpha = {}",
        config.records, config.runs, config.seed, config.alpha
    );
    println!("{}", "=".repeat(72));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_all_flags() {
        let options = CliOptions::parse(args(&[
            "--runs",
            "50",
            "--records",
            "1000",
            "--seed",
            "7",
            "--quick",
            "--out",
            "/tmp/x.json",
        ]))
        .unwrap();
        assert_eq!(options.runs, Some(50));
        assert_eq!(options.records, Some(1000));
        assert_eq!(options.seed, Some(7));
        assert!(options.quick);
        assert_eq!(options.output.as_deref(), Some(Path::new("/tmp/x.json")));
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(CliOptions::parse(args(&["--runs"])).is_err());
        assert!(CliOptions::parse(args(&["--runs", "abc"])).is_err());
        assert!(CliOptions::parse(args(&["--frobnicate"])).is_err());
        assert!(CliOptions::parse(args(&["--out"])).is_err());
    }

    #[test]
    fn config_resolution_applies_overrides() {
        let options = CliOptions::parse(args(&["--quick", "--runs", "3"])).unwrap();
        let config = options.experiment_config();
        assert_eq!(config.runs, 3);
        assert_eq!(config.records, ExperimentConfig::quick().records);

        let standard = CliOptions::default().experiment_config();
        assert_eq!(standard, ExperimentConfig::standard());
    }

    #[test]
    fn json_writer_roundtrips() {
        #[derive(Serialize)]
        struct Example {
            value: u32,
        }
        let path = std::env::temp_dir().join("mdrr_bench_json_test.json");
        write_json(&path, &Example { value: 42 }).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("42"));
        let _ = std::fs::remove_file(&path);
    }
}
