//! Benchmarks of the streaming subsystem: single-shard ingest throughput
//! (client-side encoding + accumulator counting) and the k-way merge of
//! sharded accumulators that precedes every mid-stream snapshot.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mdrr_data::{adult_schema, AdultSynthesizer};
use mdrr_protocols::{Clustering, Protocol, ProtocolSpec, RandomizationLevel};
use mdrr_stream::{Accumulator, Report, ShardedCollector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn protocols() -> Vec<(&'static str, Arc<dyn Protocol>)> {
    let schema = adult_schema();
    let m = schema.len();
    let clustering =
        Clustering::new((0..m / 2).map(|k| vec![2 * k, 2 * k + 1]).collect(), m).unwrap();
    let level = RandomizationLevel::KeepProbability(0.7);
    vec![
        (
            "independent",
            ProtocolSpec::independent(level.clone())
                .build_arc(&schema)
                .unwrap(),
        ),
        (
            "clusters",
            ProtocolSpec::Clusters {
                level,
                clustering,
                equivalent_risk: false,
            }
            .build_arc(&schema)
            .unwrap(),
        ),
    ]
}

fn records(n: usize) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(7);
    let synthesizer = AdultSynthesizer::paper_sized();
    (0..n)
        .map(|_| synthesizer.sample_record(&mut rng))
        .collect()
}

fn bench_single_shard_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_ingest_single_shard");
    group.sample_size(10);
    let batch = records(10_000);
    for (name, protocol) in protocols() {
        group.bench_with_input(
            BenchmarkId::new("encode_ingest_10k", name),
            &protocol,
            |b, p| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    let mut acc = Accumulator::new(&p.channel_sizes()).unwrap();
                    for record in &batch {
                        let report = Report::encode(&**p, black_box(record), &mut rng).unwrap();
                        acc.ingest(&report).unwrap();
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

fn bench_sharded_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_ingest_sharded");
    group.sample_size(10);
    let batch = records(50_000);
    let (_, protocol) = protocols().remove(0);
    for &shards in &[2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("scoped_50k", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut collector = ShardedCollector::new(protocol.clone(), shards).unwrap();
                    collector.ingest_records(black_box(&batch), 3).unwrap();
                    collector.total_reports()
                })
            },
        );
    }
    group.finish();
}

fn bench_kway_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_kway_merge");
    for (name, protocol) in protocols() {
        for &k in &[4usize, 16, 64] {
            // Pre-fill k shard accumulators.
            let mut collector = ShardedCollector::new(protocol.clone(), k).unwrap();
            collector.ingest_records(&records(5_000), 11).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("merge_{name}"), k),
                &collector,
                |b, collector| {
                    b.iter(|| {
                        let merged = collector.merged().unwrap();
                        black_box(merged.n_reports())
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_snapshot");
    for (name, protocol) in protocols() {
        let mut collector = ShardedCollector::new(protocol, 8).unwrap();
        collector.ingest_records(&records(20_000), 13).unwrap();
        group.bench_with_input(
            BenchmarkId::new("snapshot_mid_stream", name),
            &collector,
            |b, collector| b.iter(|| collector.snapshot().unwrap()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_shard_ingest,
    bench_sharded_ingest,
    bench_kway_merge,
    bench_snapshot
);
criterion_main!(benches);
