//! Benchmarks of the streaming subsystem: single-shard ingest throughput
//! (client-side encoding + accumulator counting), the k-way merge of
//! sharded accumulators that precedes every mid-stream snapshot, and the
//! `bench_batch` group pinning the columnar batch pipeline against the
//! scalar per-record reference (encode, ingest, and end-to-end sharded).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mdrr_data::{adult_schema, AdultSynthesizer, Dataset};
use mdrr_protocols::{Clustering, Protocol, ProtocolSpec, RandomizationLevel};
use mdrr_stream::{Accumulator, Report, ReportBatch, ShardedCollector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn protocols() -> Vec<(&'static str, Arc<dyn Protocol>)> {
    let schema = adult_schema();
    let m = schema.len();
    let clustering =
        Clustering::new((0..m / 2).map(|k| vec![2 * k, 2 * k + 1]).collect(), m).unwrap();
    let level = RandomizationLevel::KeepProbability(0.7);
    vec![
        (
            "independent",
            ProtocolSpec::independent(level.clone())
                .build_arc(&schema)
                .unwrap(),
        ),
        (
            "clusters",
            ProtocolSpec::Clusters {
                level,
                clustering,
                equivalent_risk: false,
            }
            .build_arc(&schema)
            .unwrap(),
        ),
    ]
}

fn records(n: usize) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(7);
    let synthesizer = AdultSynthesizer::paper_sized();
    (0..n)
        .map(|_| synthesizer.sample_record(&mut rng))
        .collect()
}

fn bench_single_shard_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_ingest_single_shard");
    group.sample_size(10);
    let batch = records(10_000);
    for (name, protocol) in protocols() {
        group.bench_with_input(
            BenchmarkId::new("encode_ingest_10k", name),
            &protocol,
            |b, p| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    let mut acc = Accumulator::new(&p.channel_sizes()).unwrap();
                    for record in &batch {
                        let report = Report::encode(&**p, black_box(record), &mut rng).unwrap();
                        acc.ingest(&report).unwrap();
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

fn bench_sharded_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_ingest_sharded");
    group.sample_size(10);
    let batch = records(50_000);
    let (_, protocol) = protocols().remove(0);
    for &shards in &[2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("scoped_50k", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut collector = ShardedCollector::new(protocol.clone(), shards).unwrap();
                    collector.ingest_records(black_box(&batch), 3).unwrap();
                    collector.total_reports()
                })
            },
        );
    }
    group.finish();
}

fn bench_kway_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_kway_merge");
    for (name, protocol) in protocols() {
        for &k in &[4usize, 16, 64] {
            // Pre-fill k shard accumulators.
            let mut collector = ShardedCollector::new(protocol.clone(), k).unwrap();
            collector.ingest_records(&records(5_000), 11).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("merge_{name}"), k),
                &collector,
                |b, collector| {
                    b.iter(|| {
                        let merged = collector.merged().unwrap();
                        black_box(merged.n_reports())
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_snapshot");
    for (name, protocol) in protocols() {
        let mut collector = ShardedCollector::new(protocol, 8).unwrap();
        collector.ingest_records(&records(20_000), 13).unwrap();
        group.bench_with_input(
            BenchmarkId::new("snapshot_mid_stream", name),
            &collector,
            |b, collector| b.iter(|| collector.snapshot().unwrap()),
        );
    }
    group.finish();
}

/// Per-record vs batch vs fused-tally *encoding* of the same 10k records
/// under the same seed (the outputs are bit-identical; only the cost
/// differs).
fn bench_batch_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("bench_batch");
    group.sample_size(10);
    let rows = records(10_000);
    for (name, protocol) in protocols() {
        let dataset = Dataset::from_records(protocol.schema().clone(), &rows).unwrap();
        let sizes = protocol.channel_sizes();
        group.bench_with_input(
            BenchmarkId::new("encode_10k_per_record", name),
            &protocol,
            |b, p| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    let mut last = 0u32;
                    for record in &rows {
                        let report = Report::encode(&**p, black_box(record), &mut rng).unwrap();
                        last = report.codes()[0];
                    }
                    last
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("encode_10k_batch", name),
            &protocol,
            |b, p| {
                let mut batch = ReportBatch::for_protocol(&**p);
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    batch
                        .encode_records(&**p, black_box(&dataset.view()), &mut rng)
                        .unwrap();
                    batch.n_reports()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("encode_10k_tally", name),
            &protocol,
            |b, p| {
                let mut tallies: Vec<Vec<u64>> = sizes.iter().map(|&s| vec![0u64; s]).collect();
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    p.encode_tally(black_box(&dataset.view()), &mut rng, &mut tallies)
                        .unwrap();
                    tallies[0][0]
                })
            },
        );
    }
    group.finish();
}

/// Per-report vs batch *counting* of 10k pre-encoded reports.
fn bench_batch_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("bench_batch");
    group.sample_size(10);
    let rows = records(10_000);
    let (name, protocol) = protocols().remove(0);
    let mut rng = StdRng::seed_from_u64(5);
    let mut batch = ReportBatch::for_protocol(&*protocol);
    let dataset = Dataset::from_records(protocol.schema().clone(), &rows).unwrap();
    batch
        .encode_records(&*protocol, &dataset.view(), &mut rng)
        .unwrap();
    let reports: Vec<Report> = {
        let mut codes = Vec::new();
        (0..batch.n_reports())
            .map(|i| {
                batch.read_report(i, &mut codes).unwrap();
                Report::new(codes.clone())
            })
            .collect()
    };
    group.bench_function(BenchmarkId::new("ingest_10k_per_report", name), |b| {
        b.iter(|| {
            let mut acc = Accumulator::new(&protocol.channel_sizes()).unwrap();
            for report in &reports {
                acc.ingest(black_box(report)).unwrap();
            }
            acc.n_reports()
        })
    });
    group.bench_function(BenchmarkId::new("ingest_10k_batch", name), |b| {
        b.iter(|| {
            let mut acc = Accumulator::new(&protocol.channel_sizes()).unwrap();
            acc.ingest_batch(black_box(&batch)).unwrap();
            acc.n_reports()
        })
    });
    group.finish();
}

/// End-to-end sharded ingestion of 100k clients: the columnar batch
/// pipeline (row-major and zero-copy view inputs) against the scalar
/// reference path, all bit-identical under the shared seed.
fn bench_batch_sharded_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("bench_batch");
    group.sample_size(10);
    let rows = records(100_000);
    let (_, protocol) = protocols().remove(0);
    let dataset = Dataset::from_records(protocol.schema().clone(), &rows).unwrap();
    for &shards in &[2usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("sharded_100k_per_record", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut collector = ShardedCollector::new(protocol.clone(), shards).unwrap();
                    collector
                        .ingest_records_per_record(black_box(&rows), 3)
                        .unwrap();
                    collector.total_reports()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sharded_100k_batch_rows", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut collector = ShardedCollector::new(protocol.clone(), shards).unwrap();
                    collector.ingest_records(black_box(&rows), 3).unwrap();
                    collector.total_reports()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sharded_100k_batch_view", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut collector = ShardedCollector::new(protocol.clone(), shards).unwrap();
                    collector
                        .ingest_view(black_box(&dataset.view()), 3)
                        .unwrap();
                    collector.total_reports()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_shard_ingest,
    bench_sharded_ingest,
    bench_kway_merge,
    bench_snapshot,
    bench_batch_encode,
    bench_batch_ingest,
    bench_batch_sharded_end_to_end
);
criterion_main!(benches);
