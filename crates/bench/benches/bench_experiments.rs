//! End-to-end benchmarks of the experiment drivers themselves (at reduced
//! run counts): one evaluation point of each table/figure of the paper.
//! These quantify the cost of regenerating the evaluation and act as a
//! regression guard for the harness.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mdrr_eval::experiments::{accuracy, fig1, runner::MethodSpec, ExperimentConfig};
use mdrr_eval::{build_clustering, evaluate_method};

fn bench_config() -> ExperimentConfig {
    ExperimentConfig {
        records: 8_000,
        runs: 4,
        seed: 42,
        alpha: 0.05,
    }
}

fn bench_analytic_drivers(c: &mut Criterion) {
    let config = bench_config();
    c.bench_function("fig1_full_grid", |b| {
        b.iter(|| fig1::run(black_box(&config)).unwrap())
    });
    c.bench_function("accuracy_analysis_adult_prefixes", |b| {
        b.iter(|| accuracy::run(black_box(&config)).unwrap())
    });
}

fn bench_empirical_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment_points");
    group.sample_size(10);
    let config = bench_config();
    let dataset = config.adult().unwrap();

    group.bench_function("fig2_point_randomized_p07_sigma01", |b| {
        b.iter(|| {
            evaluate_method(
                black_box(&dataset),
                &MethodSpec::Randomized { p: 0.7 },
                0.1,
                config.runs,
                config.seed,
            )
            .unwrap()
        })
    });
    group.bench_function("fig3_point_independent_p07_sigma01", |b| {
        b.iter(|| {
            evaluate_method(
                black_box(&dataset),
                &MethodSpec::Independent { p: 0.7 },
                0.1,
                config.runs,
                config.seed,
            )
            .unwrap()
        })
    });
    let clustering = build_clustering(&dataset, 0.7, 50, 0.1, config.seed).unwrap();
    group.bench_function("table1_point_clusters_p07_tv50_td01", |b| {
        b.iter(|| {
            evaluate_method(
                black_box(&dataset),
                &MethodSpec::Clusters {
                    p: 0.7,
                    clustering: clustering.clone(),
                },
                0.1,
                config.runs,
                config.seed,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_analytic_drivers, bench_empirical_points);
criterion_main!(benches);
