//! Microbenchmarks of the core RR mechanism: per-value randomization, whole
//! column randomization at Adult scale, frequency estimation (Equation (2)
//! plus the simplex projection) and the iterative Bayesian update.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mdrr_core::{
    empirical_distribution, estimate_proper, iterative_bayesian_update, randomize_attribute,
    RRMatrix,
};
use mdrr_data::AdultSynthesizer;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_randomize(c: &mut Criterion) {
    let mut group = c.benchmark_group("randomize");
    for &r in &[2usize, 16, 240] {
        let matrix = RRMatrix::from_epsilon(2.0, r).unwrap();
        group.bench_with_input(BenchmarkId::new("single_value", r), &matrix, |b, m| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| m.randomize(black_box(0), &mut rng).unwrap())
        });
    }

    // Column-wise randomization of one Adult attribute (Education, 16
    // categories, 32 561 records) — the dominant cost of RR-Independent.
    let mut rng = StdRng::seed_from_u64(2);
    let adult = AdultSynthesizer::paper_sized().generate(&mut rng);
    let education = RRMatrix::uniform_keep(0.7, 16).unwrap();
    group.bench_function("adult_education_column", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            randomize_attribute(black_box(&adult), 1, black_box(&education), &mut rng).unwrap()
        })
    });
    group.finish();
}

fn bench_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimation");
    for &r in &[16usize, 240, 1_000] {
        let matrix = RRMatrix::from_epsilon(3.0, r).unwrap();
        let pi: Vec<f64> = {
            let raw: Vec<f64> = (0..r).map(|i| 1.0 / (i as f64 + 1.0)).collect();
            let total: f64 = raw.iter().sum();
            raw.into_iter().map(|x| x / total).collect()
        };
        let lambda = matrix.expected_reported_distribution(&pi).unwrap();
        group.bench_with_input(
            BenchmarkId::new("equation2_plus_projection", r),
            &r,
            |b, _| b.iter(|| estimate_proper(black_box(&matrix), black_box(&lambda)).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("iterative_bayesian_update", r),
            &r,
            |b, _| {
                b.iter(|| {
                    iterative_bayesian_update(black_box(&matrix), black_box(&lambda), 50, 1e-9)
                        .unwrap()
                })
            },
        );
    }

    // Empirical distribution of an Adult-sized report column.
    let reports: Vec<u32> = (0..32_561u32).map(|i| i % 16).collect();
    group.bench_function("empirical_distribution_adult_sized", |b| {
        b.iter(|| empirical_distribution(black_box(&reports), 16).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_randomize, bench_estimation);
criterion_main!(benches);
