//! Benchmarks of the full protocols on the synthetic Adult data set:
//! RR-Independent, RR-Clusters (randomization + estimation), RR-Adjustment,
//! the privacy-preserving dependence estimation feeding Algorithm 1 and the
//! secure-sum substrate.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mdrr_data::{AdultSynthesizer, Dataset};
use mdrr_protocols::{
    cluster_attributes, dependence_via_randomized_attributes, rr_adjustment, AdjustmentConfig,
    AdjustmentTarget, Clustering, ClusteringConfig, Protocol, RRClusters, RRIndependent,
    RandomizationLevel, SecureSumSession,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn adult(n: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(7);
    AdultSynthesizer::new(n).unwrap().generate(&mut rng)
}

fn paper_clustering(dataset: &Dataset) -> Clustering {
    let mut rng = StdRng::seed_from_u64(11);
    let dependences = dependence_via_randomized_attributes(dataset, 0.7, &mut rng).unwrap();
    cluster_attributes(
        &dependences.matrix,
        &dataset.schema().cardinalities(),
        ClusteringConfig::new(50, 0.1).unwrap(),
    )
    .unwrap()
}

fn bench_protocol_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_runs");
    group.sample_size(10);
    for &n in &[4_000usize, 32_561] {
        let dataset = adult(n);
        let independent = RRIndependent::new(
            dataset.schema().clone(),
            &RandomizationLevel::KeepProbability(0.7),
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("rr_independent", n), &dataset, |b, ds| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| independent.run(black_box(ds), &mut rng).unwrap())
        });

        let clustering = paper_clustering(&dataset);
        let clusters = RRClusters::with_equivalent_risk_from_keep_probability(
            dataset.schema().clone(),
            clustering,
            0.7,
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::new("rr_clusters_tv50", n),
            &dataset,
            |b, ds| {
                let mut rng = StdRng::seed_from_u64(2);
                b.iter(|| clusters.run(black_box(ds), &mut rng).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_adjustment(c: &mut Criterion) {
    let mut group = c.benchmark_group("rr_adjustment");
    group.sample_size(10);
    let dataset = adult(32_561);
    let protocol = RRIndependent::new(
        dataset.schema().clone(),
        &RandomizationLevel::KeepProbability(0.7),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let release = protocol.run(&dataset, &mut rng).unwrap();
    let targets = AdjustmentTarget::from_independent(&release);
    for &iterations in &[10usize, 50] {
        group.bench_with_input(
            BenchmarkId::new("adult_sized", iterations),
            &iterations,
            |b, &iterations| {
                let config = AdjustmentConfig::new(iterations, 1e-12).unwrap();
                b.iter(|| {
                    rr_adjustment(
                        black_box(release.randomized().unwrap()),
                        black_box(&targets),
                        config,
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_dependence_and_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("dependence_estimation");
    group.sample_size(10);
    let dataset = adult(32_561);
    group.bench_function("randomized_attributes_adult", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| dependence_via_randomized_attributes(black_box(&dataset), 0.7, &mut rng).unwrap())
    });
    let mut rng = StdRng::seed_from_u64(6);
    let dependences = dependence_via_randomized_attributes(&dataset, 0.7, &mut rng).unwrap();
    group.bench_function("algorithm1_clustering", |b| {
        b.iter(|| {
            cluster_attributes(
                black_box(&dependences.matrix),
                &dataset.schema().cardinalities(),
                ClusteringConfig::new(300, 0.1).unwrap(),
            )
            .unwrap()
        })
    });
    group.finish();
}

/// Static vs `dyn Protocol` dispatch on the ingest hot path: the same
/// 10 000 client-side encodes, once through the concrete inherent method
/// (monomorphised, inlinable) and once through the object-safe trait (one
/// virtual call per record).  Pins the virtual-call overhead the streaming
/// collector pays for being generic over any protocol — expected well
/// under 5%, since each encode is dominated by the randomization draws.
fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_dispatch");
    group.sample_size(20);
    let dataset = adult(10_000);
    let records: Vec<Vec<u32>> = (0..dataset.n_records())
        .map(|i| dataset.record(i).expect("index in range"))
        .collect();
    let concrete = RRIndependent::new(
        dataset.schema().clone(),
        &RandomizationLevel::KeepProbability(0.7),
    )
    .unwrap();
    let object: &dyn Protocol = &concrete;

    group.bench_function("encode_10k_static", |b| {
        let mut rng = StdRng::seed_from_u64(17);
        b.iter(|| {
            let mut sum = 0u64;
            for record in &records {
                let codes = concrete.encode_record(black_box(record), &mut rng).unwrap();
                sum += u64::from(codes[0]);
            }
            sum
        })
    });
    group.bench_function("encode_10k_dyn", |b| {
        let mut rng = StdRng::seed_from_u64(17);
        b.iter(|| {
            let mut sum = 0u64;
            for record in &records {
                let codes = object.encode_record(black_box(record), &mut rng).unwrap();
                sum += u64::from(codes[0]);
            }
            sum
        })
    });
    group.finish();
}

fn bench_secure_sum(c: &mut Criterion) {
    let mut group = c.benchmark_group("secure_sum");
    for &n in &[64usize, 256, 1_024] {
        let session = SecureSumSession::new(n).unwrap();
        let indicators: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        group.bench_with_input(
            BenchmarkId::new("full_share_exchange", n),
            &indicators,
            |b, ind| {
                let mut rng = StdRng::seed_from_u64(9);
                b.iter(|| session.sum_indicators(black_box(ind), &mut rng).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_protocol_runs,
    bench_adjustment,
    bench_dependence_and_clustering,
    bench_dispatch,
    bench_secure_sum
);
criterion_main!(benches);
