//! Microbenchmarks of the numerical substrate: matrix inversion (general
//! Gauss–Jordan vs the closed form used for the structured randomization
//! matrices), χ² quantiles / the Figure 1 `B` factor, and the contingency
//! statistics that feed the clustering algorithm.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mdrr_math::linsolve::{invert, invert_uniform_perturbation, solve_uniform_perturbation};
use mdrr_math::{b_factor, chi2_quantile, ContingencyTable, Matrix};

fn rr_matrix(p: f64, r: usize) -> Matrix {
    let off = (1.0 - p) / r as f64;
    Matrix::from_fn(r, r, |i, j| if i == j { p + off } else { off })
}

fn bench_inversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix_inversion");
    for &r in &[9usize, 42, 150, 300] {
        let matrix = rr_matrix(0.7, r);
        group.bench_with_input(BenchmarkId::new("gauss_jordan", r), &matrix, |b, m| {
            b.iter(|| invert(black_box(m)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("closed_form", r), &r, |b, &r| {
            let off = 0.3 / r as f64;
            b.iter(|| invert_uniform_perturbation(black_box(0.7), black_box(off), r).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("closed_form_solve", r), &r, |b, &r| {
            let off = 0.3 / r as f64;
            let v: Vec<f64> = (0..r).map(|i| (i as f64 + 1.0) / r as f64).collect();
            b.iter(|| {
                solve_uniform_perturbation(black_box(0.7), black_box(off), black_box(&v)).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_chi2(c: &mut Criterion) {
    let mut group = c.benchmark_group("chi2");
    group.bench_function("quantile_df1", |b| {
        b.iter(|| chi2_quantile(black_box(0.999_95), black_box(1.0)).unwrap())
    });
    group.bench_function("quantile_df10", |b| {
        b.iter(|| chi2_quantile(black_box(0.95), black_box(10.0)).unwrap())
    });
    group.bench_function("b_factor_r_100000", |b| {
        b.iter(|| b_factor(black_box(0.05), black_box(100_000)).unwrap())
    });
    group.finish();
}

fn bench_contingency(c: &mut Criterion) {
    let mut group = c.benchmark_group("contingency");
    // Synthetic paired codes with a known structure.
    let n = 32_561usize;
    let xs: Vec<u32> = (0..n).map(|i| (i % 16) as u32).collect();
    let ys: Vec<u32> = (0..n).map(|i| ((i / 3) % 15) as u32).collect();
    group.bench_function("build_16x15_table_adult_sized", |b| {
        b.iter(|| ContingencyTable::from_codes(black_box(&xs), black_box(&ys), 16, 15).unwrap())
    });
    let table = ContingencyTable::from_codes(&xs, &ys, 16, 15).unwrap();
    group.bench_function("cramers_v_16x15", |b| {
        b.iter(|| black_box(&table).cramers_v())
    });
    group.finish();
}

criterion_group!(benches, bench_inversion, bench_chi2, bench_contingency);
criterion_main!(benches);
