//! Concurrency tests: relaxed atomics must never lose an update once the
//! writers are joined.
//!
//! `std::thread::scope` guarantees every spawned thread has finished (and
//! its writes are visible) before the scope returns, which is exactly the
//! synchronization story the collector relies on: relaxed bumps on the
//! hot path, one join, then exact reads.

use mdrr_obs::{Counter, EventKind, Gauge, Histogram, Journal, Registry};
use std::sync::Arc;

const THREADS: usize = 8;
const INCREMENTS: u64 = 10_000;

#[test]
fn counters_never_lose_increments_across_threads() {
    let counter = Counter::new();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..INCREMENTS {
                    counter.inc();
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS as u64 * INCREMENTS);
}

#[test]
fn histograms_never_lose_records_across_threads() {
    let hist = Histogram::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let hist = &hist;
            scope.spawn(move || {
                for i in 0..INCREMENTS {
                    // Different threads hit different buckets.
                    hist.record((t as u64 + 1) << (i % 8));
                }
            });
        }
    });
    let snap = hist.snapshot();
    assert_eq!(snap.count, THREADS as u64 * INCREMENTS);
    assert_eq!(
        snap.buckets.iter().sum::<u64>(),
        THREADS as u64 * INCREMENTS
    );
}

#[test]
fn registry_instruments_are_shared_across_threads() {
    let registry = Arc::new(Registry::new());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = Arc::clone(&registry);
            scope.spawn(move || {
                // Every thread get-or-registers the same ids concurrently;
                // all must resolve to the same instruments.
                let total = registry.counter("reports_total");
                let per_shard = registry.counter_with("shard_reports_total", &[("shard", "0")]);
                let gauge = registry.gauge("last_writer");
                for _ in 0..INCREMENTS {
                    total.inc();
                    per_shard.add(2);
                }
                gauge.set(t as u64);
            });
        }
    });
    let snap = registry.snapshot();
    let n = THREADS as u64 * INCREMENTS;
    assert_eq!(snap.counter_value("reports_total", &[]), Some(n));
    assert_eq!(
        snap.counter_value("shard_reports_total", &[("shard", "0")]),
        Some(2 * n)
    );
    assert!(snap.gauge_value("last_writer", &[]).unwrap() < THREADS as u64);
    // Concurrent get-or-register must not duplicate instruments.
    assert_eq!(snap.counters.len(), 2);
    assert_eq!(snap.gauges.len(), 1);
}

#[test]
fn journal_is_safe_under_concurrent_recording() {
    let journal = Journal::new(64);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let journal = &journal;
            scope.spawn(move || {
                for i in 0..1_000u64 {
                    journal.record(
                        i,
                        EventKind::BatchIngested {
                            shard: t as u64,
                            reports: i,
                        },
                    );
                }
            });
        }
    });
    // Bounded: retained + dropped account for every record call.
    assert_eq!(journal.len(), 64);
    assert_eq!(
        journal.dropped() + journal.len() as u64,
        THREADS as u64 * 1_000
    );
}

#[test]
fn gauge_last_write_wins_is_one_of_the_writers() {
    let gauge = Gauge::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let gauge = &gauge;
            scope.spawn(move || gauge.set(100 + t as u64));
        }
    });
    let v = gauge.get();
    assert!((100..100 + THREADS as u64).contains(&v));
}
