//! Property tests of the histogram algebra.
//!
//! The load-bearing claims: (1) merging snapshots is *exact* — the merge
//! of any partition of a sample set equals the histogram of the
//! concatenated samples, in any merge order; (2) the reported quantile
//! always bounds the true sample quantile from above and stays within
//! the log2 bucket width (`t ≤ p ≤ 2t − 1` for `t ≥ 1`, `p == 0` iff
//! `t == 0`); (3) count and sum are exact, not bucketed.

use mdrr_obs::{bucket_index, bucket_upper, Histogram, HistogramSnapshot, N_BUCKETS};
use proptest::prelude::*;

/// The true `q`-quantile of a sample set, by sort-and-rank (the same
/// `⌈q·n⌉` rank convention the histogram uses).
fn true_quantile(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Records every value into a fresh histogram and snapshots it.
fn hist_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Values spread over many buckets: small latencies, mid-range, and
/// full-width u64 outliers.
fn value_strategy() -> impl Strategy<Value = u64> {
    (0u64..=u64::MAX).prop_map(|raw| {
        // Skew toward small magnitudes so low buckets are exercised too:
        // use the low bits of `raw` to pick a bit width, then mask.
        let width = (raw % 65) as u32;
        if width == 0 {
            0
        } else if width == 64 {
            raw | (1 << 63)
        } else {
            (raw >> 1) % (1u64 << width)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging any 3-way partition equals the histogram of the
    /// concatenation, in either association order.
    #[test]
    fn merge_is_exact_and_order_independent(
        a in prop::collection::vec(value_strategy(), 0..50),
        b in prop::collection::vec(value_strategy(), 0..50),
        c in prop::collection::vec(value_strategy(), 0..50),
    ) {
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        let whole = hist_of(&all);

        // (a ⊕ b) ⊕ c
        let mut left = hist_of(&a);
        left.merge(&hist_of(&b));
        left.merge(&hist_of(&c));
        // c ⊕ (b ⊕ a)
        let mut right = hist_of(&c);
        let mut ba = hist_of(&b);
        ba.merge(&hist_of(&a));
        right.merge(&ba);

        prop_assert_eq!(&left, &whole);
        prop_assert_eq!(&right, &whole);
    }

    /// The reported quantile bounds the true quantile from above within
    /// the 2× log2 bucket width, and is 0 exactly when the true quantile
    /// is 0.
    #[test]
    fn quantile_bounds_true_quantile(
        values in prop::collection::vec(value_strategy(), 1..200),
        qi in 0usize..5,
    ) {
        let q = [0.5, 0.9, 0.99, 0.999, 1.0][qi];
        let snap = hist_of(&values);
        let est = snap.quantile(q);
        let truth = true_quantile(&values, q);
        prop_assert!(est >= truth, "quantile under-reported: est={est} truth={truth}");
        if truth == 0 {
            prop_assert_eq!(est, 0);
        } else {
            // est is the upper edge of truth's bucket: est ≤ 2·truth − 1.
            // Compare in u128 so truth near u64::MAX cannot overflow.
            prop_assert!(
                (est as u128) < 2 * (truth as u128),
                "quantile too loose: est={est} truth={truth}"
            );
        }
    }

    /// Count and sum are exact (sum modulo 2^64), independent of bucketing.
    #[test]
    fn count_and_sum_are_exact(
        values in prop::collection::vec(0u64..1 << 40, 0..100),
    ) {
        let snap = hist_of(&values);
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), values.len() as u64);
    }

    /// Every value lands in the one bucket whose range contains it.
    #[test]
    fn buckets_partition_u64(v in 0u64..=u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < N_BUCKETS);
        prop_assert!(v <= bucket_upper(i));
        if i > 0 {
            prop_assert!(v > bucket_upper(i - 1));
        }
    }
}
