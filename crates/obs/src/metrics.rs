//! Lock-free counters and gauges.
//!
//! Both are single relaxed atomics: an update is one `fetch_add`/`store`
//! with `Ordering::Relaxed`, which compiles to an uncontended `lock xadd`
//! / plain store — cheap enough for every shard worker to bump per batch
//! without measurable impact on the 20M-reports/s ingest path.  Relaxed
//! ordering is correct here because metrics carry no cross-thread
//! happens-before obligations: readers only need eventually-consistent
//! totals, and the final read after `std::thread::scope` joins is
//! synchronized by the join itself (which is what the concurrency test
//! pins: N threads × M increments never lose a count).

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count.
///
/// ```
/// let c = mdrr_obs::Counter::new();
/// c.inc();
/// c.add(41);
/// assert_eq!(c.get(), 42);
/// ```
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `delta` to the count.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (queue depth, imbalance,
/// in-flight bytes).
///
/// ```
/// let g = mdrr_obs::Gauge::new();
/// g.set(7);
/// g.set(3);
/// assert_eq!(g.get(), 3);
/// ```
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge {
            value: AtomicU64::new(0),
        }
    }

    /// Replaces the value.
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let c = Counter::default();
        let g = Gauge::default();
        for i in 0..10 {
            c.add(i);
            g.set(i);
        }
        assert_eq!(c.get(), 45);
        assert_eq!(g.get(), 9);
    }
}
