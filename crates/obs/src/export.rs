//! Exporters: a stable JSON report and Prometheus text exposition.
//!
//! Both exporters are pure functions over a [`MetricsSnapshot`] (plus the
//! journal's events, for JSON) and are hand-rolled — `mdrr-obs` is
//! dependency-free, and the formats are small enough that owning them
//! keeps the output byte-stable across runs: iteration order is
//! registration order, numbers are plain `u64`/shortest-float, and there
//! is no map whose ordering could wobble.

use crate::hist::{bucket_upper, HistogramSnapshot};
use crate::journal::Event;
use crate::registry::{MetricId, MetricsSnapshot};

/// Renders a snapshot (and optional journal events) as a stable JSON
/// document.
///
/// Layout: `{"counters": […], "gauges": […], "histograms": […],
/// "events": […]}` where each metric entry carries `name`, `labels`
/// (object) and its value(s); histograms add `count`, `sum`, `mean`,
/// `p50`/`p90`/`p99`/`p999` and the non-empty `buckets` as
/// `[upper_bound, count]` pairs.
///
/// ```
/// use mdrr_obs::Registry;
/// let registry = Registry::new();
/// registry.counter_with("reports_total", &[("shard", "0")]).add(3);
/// let json = mdrr_obs::to_json(&registry.snapshot(), &[]);
/// assert!(json.contains("\"reports_total\""));
/// assert!(json.contains("\"value\": 3"));
/// ```
pub fn to_json(snapshot: &MetricsSnapshot, events: &[Event]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"counters\": [");
    for (i, sample) in snapshot.counters.iter().enumerate() {
        push_sep(&mut out, i);
        out.push('{');
        push_id_json(&mut out, &sample.id);
        out.push_str(&format!(", \"value\": {}}}", sample.value));
    }
    out.push_str("],\n  \"gauges\": [");
    for (i, sample) in snapshot.gauges.iter().enumerate() {
        push_sep(&mut out, i);
        out.push('{');
        push_id_json(&mut out, &sample.id);
        out.push_str(&format!(", \"value\": {}}}", sample.value));
    }
    out.push_str("],\n  \"histograms\": [");
    for (i, sample) in snapshot.histograms.iter().enumerate() {
        push_sep(&mut out, i);
        out.push('{');
        push_id_json(&mut out, &sample.id);
        push_hist_json(&mut out, &sample.hist);
        out.push('}');
    }
    out.push_str("],\n  \"events\": [");
    for (i, event) in events.iter().enumerate() {
        push_sep(&mut out, i);
        out.push_str(&format!(
            "{{\"at_nanos\": {}, \"kind\": \"{}\", \"fields\": {{",
            event.at_nanos,
            event.kind.name()
        ));
        for (j, (field, value)) in event.kind.fields().iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{field}\": {value}"));
        }
        out.push_str("}}");
    }
    out.push_str("]\n}\n");
    out
}

/// Renders a snapshot in Prometheus text exposition format.
///
/// Counter and gauge samples become one line each; histograms expand to
/// cumulative `_bucket{le="…"}` lines (upper bounds of the non-empty
/// log2 buckets plus `+Inf`), `_sum` and `_count`.  Metric names are
/// sanitized to `[a-zA-Z0-9_:]`; label values are escaped per the
/// exposition-format rules.
///
/// ```
/// use mdrr_obs::Registry;
/// let registry = Registry::new();
/// registry.gauge_with("imbalance_permille", &[("path", "ingest")]).set(12);
/// let text = mdrr_obs::to_prometheus(&registry.snapshot());
/// assert_eq!(text, "imbalance_permille{path=\"ingest\"} 12\n");
/// ```
pub fn to_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    for sample in &snapshot.counters {
        push_prom_line(&mut out, &sample.id, "", &[], sample.value);
    }
    for sample in &snapshot.gauges {
        push_prom_line(&mut out, &sample.id, "", &[], sample.value);
    }
    for sample in &snapshot.histograms {
        let hist = &sample.hist;
        let mut cumulative = 0u64;
        for (i, &n) in hist.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cumulative = cumulative.saturating_add(n);
            let le = bucket_upper(i).to_string();
            push_prom_line(&mut out, &sample.id, "_bucket", &[("le", &le)], cumulative);
        }
        push_prom_line(
            &mut out,
            &sample.id,
            "_bucket",
            &[("le", "+Inf")],
            hist.count,
        );
        push_prom_line(&mut out, &sample.id, "_sum", &[], hist.sum);
        push_prom_line(&mut out, &sample.id, "_count", &[], hist.count);
    }
    out
}

fn push_sep(out: &mut String, i: usize) {
    if i > 0 {
        out.push_str(", ");
    }
}

fn push_id_json(out: &mut String, id: &MetricId) {
    out.push_str(&format!(
        "\"name\": \"{}\", \"labels\": {{",
        json_escape(&id.name)
    ));
    for (i, (k, v)) in id.labels.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)));
    }
    out.push('}');
}

fn push_hist_json(out: &mut String, hist: &HistogramSnapshot) {
    out.push_str(&format!(
        ", \"count\": {}, \"sum\": {}, \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}, \"buckets\": [",
        hist.count,
        hist.sum,
        fmt_f64(hist.mean()),
        hist.p50(),
        hist.p90(),
        hist.p99(),
        hist.p999(),
    ));
    let mut first = true;
    for (i, &n) in hist.buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!("[{}, {}]", bucket_upper(i), n));
    }
    out.push(']');
}

fn push_prom_line(
    out: &mut String,
    id: &MetricId,
    suffix: &str,
    extra_labels: &[(&str, &str)],
    value: u64,
) {
    out.push_str(&prom_name(&id.name));
    out.push_str(suffix);
    let n_labels = id.labels.len() + extra_labels.len();
    if n_labels > 0 {
        out.push('{');
        let mut i = 0;
        for (k, v) in &id.labels {
            if i > 0 {
                out.push(',');
            }
            i += 1;
            out.push_str(&format!("{}=\"{}\"", prom_name(k), prom_escape(v)));
        }
        for (k, v) in extra_labels {
            if i > 0 {
                out.push(',');
            }
            i += 1;
            out.push_str(&format!("{k}=\"{}\"", prom_escape(v)));
        }
        out.push('}');
    }
    out.push_str(&format!(" {value}\n"));
}

/// Formats a finite `f64` as a JSON number (mean is NaN-free by
/// construction, so no special-casing is needed).
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// Escapes a string for inclusion inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Maps a metric or label name onto the Prometheus-legal alphabet
/// `[a-zA-Z0-9_:]`, replacing everything else with `_`.
fn prom_name(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn prom_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{EventKind, Journal};
    use crate::registry::Registry;

    #[test]
    fn json_report_is_stable_and_parseable_shape() {
        let registry = Registry::new();
        registry
            .counter_with("reports_total", &[("shard", "0")])
            .add(10);
        registry.gauge("imbalance_permille").set(42);
        registry.histogram("ingest_nanos").record(100);
        let journal = Journal::new(8);
        journal.record(
            5,
            EventKind::BatchIngested {
                shard: 0,
                reports: 10,
            },
        );

        let a = to_json(&registry.snapshot(), &journal.events());
        let b = to_json(&registry.snapshot(), &journal.events());
        assert_eq!(a, b, "export must be byte-stable");
        for needle in [
            "\"reports_total\"",
            "\"shard\": \"0\"",
            "\"value\": 10",
            "\"imbalance_permille\"",
            "\"ingest_nanos\"",
            "\"p99\": 127",
            "\"kind\": \"batch_ingested\"",
            "\"fields\": {\"shard\": 0, \"reports\": 10}",
        ] {
            assert!(a.contains(needle), "missing {needle} in {a}");
        }
    }

    #[test]
    fn prometheus_histogram_lines_are_cumulative() {
        let registry = Registry::new();
        let h = registry.histogram("lat");
        h.record(1); // bucket 1, upper 1
        h.record(2); // bucket 2, upper 3
        h.record(3); // bucket 2, upper 3
        let text = to_prometheus(&registry.snapshot());
        assert!(text.contains("lat_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("lat_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_sum 6\n"));
        assert!(text.contains("lat_count 3\n"));
    }

    #[test]
    fn names_and_labels_are_escaped() {
        let registry = Registry::new();
        registry
            .counter_with("weird name", &[("path", "a\"b\\c")])
            .inc();
        let json = to_json(&registry.snapshot(), &[]);
        assert!(json.contains("a\\\"b\\\\c"));
        let prom = to_prometheus(&registry.snapshot());
        assert!(prom.starts_with("weird_name{path=\"a\\\"b\\\\c\"} 1\n"));
    }
}
