//! A bounded structured event journal.
//!
//! The [`Journal`] is a fixed-capacity ring buffer of typed [`Event`]s:
//! lifecycle milestones (checkpoint begin/commit, restore, merge) and
//! sampled data-path events (batch ingested, shard snapshot).  When full,
//! the oldest event is dropped and the drop is *counted* — readers can
//! always tell whether the window they see is complete.  Recording takes
//! a `Mutex` (events are rare next to counter bumps: per checkpoint or
//! per snapshot, not per report), which keeps the implementation
//! dependency-free and the order globally consistent.

use std::collections::VecDeque;
use std::sync::Mutex;

/// What happened, with the numbers that matter for that event.
///
/// Each variant carries plain `u64` fields so the journal stays
/// allocation-free after construction and exports losslessly to JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A batch of reports was ingested into one shard.
    BatchIngested {
        /// Shard index the batch landed in.
        shard: u64,
        /// Reports in the batch.
        reports: u64,
    },
    /// A merged cross-shard snapshot was produced.
    ShardSnapshot {
        /// Number of shards merged.
        shards: u64,
        /// Total reports across all shards at snapshot time.
        total_reports: u64,
    },
    /// A checkpoint started writing shard snapshot files.
    CheckpointBegin {
        /// Number of shard files about to be written.
        shards: u64,
    },
    /// A checkpoint manifest was atomically committed.
    CheckpointCommit {
        /// Shard files written.
        shards: u64,
        /// Total reports captured by the checkpoint.
        total_reports: u64,
        /// Bytes written across all shard files.
        bytes: u64,
        /// Wall time of the whole checkpoint, in nanoseconds.
        nanos: u64,
    },
    /// A collector was restored from a committed checkpoint.
    Restore {
        /// Shard files read back.
        shards: u64,
        /// Total reports recovered.
        total_reports: u64,
        /// Wall time of the restore, in nanoseconds.
        nanos: u64,
    },
    /// Independent snapshots were merged into one.
    Merge {
        /// Number of operand snapshots.
        snapshots: u64,
        /// Total reports in the merged result.
        total_reports: u64,
    },
    /// A batch of frequency estimates was served from the query path.
    EstimateServed {
        /// Estimates answered.
        queries: u64,
    },
    /// A shard worker died mid-ingest and its shard was quarantined; the
    /// collector keeps running degraded on the remaining shards.
    ShardFailed {
        /// Index of the failed shard.
        shard: u64,
    },
    /// A storage operation kept failing transiently until the retry
    /// policy's attempt bound was exhausted; the error became permanent.
    RetryExhausted {
        /// Attempts made (initial try plus retries).
        attempts: u64,
    },
    /// A torn checkpoint directory was salvaged: every CRC-valid shard
    /// snapshot was recovered and a fresh manifest committed.
    SalvageCompleted {
        /// Shard snapshots recovered into the rebuilt manifest.
        recovered: u64,
        /// Shard slots whose snapshots were unreadable and dropped.
        dropped: u64,
    },
    /// A collector daemon accepted a client connection.
    ConnectionOpened {
        /// Server-assigned connection id (monotone per server).
        conn: u64,
    },
    /// A collector daemon connection ended (cleanly or not).
    ConnectionClosed {
        /// Server-assigned connection id.
        conn: u64,
        /// Reports acknowledged over this connection's lifetime.
        reports: u64,
    },
    /// A collector daemon finished draining: acceptor stopped, sessions
    /// joined, collector handed off (typically to a checkpoint).
    ServerDrained {
        /// Connections served over the daemon's lifetime.
        connections: u64,
        /// Total reports acknowledged at drain time.
        total_reports: u64,
    },
}

impl EventKind {
    /// The stable event name used by both exporters.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::BatchIngested { .. } => "batch_ingested",
            EventKind::ShardSnapshot { .. } => "shard_snapshot",
            EventKind::CheckpointBegin { .. } => "checkpoint_begin",
            EventKind::CheckpointCommit { .. } => "checkpoint_commit",
            EventKind::Restore { .. } => "restore",
            EventKind::Merge { .. } => "merge",
            EventKind::EstimateServed { .. } => "estimate_served",
            EventKind::ShardFailed { .. } => "shard_failed",
            EventKind::RetryExhausted { .. } => "retry_exhausted",
            EventKind::SalvageCompleted { .. } => "salvage_completed",
            EventKind::ConnectionOpened { .. } => "connection_opened",
            EventKind::ConnectionClosed { .. } => "connection_closed",
            EventKind::ServerDrained { .. } => "server_drained",
        }
    }

    /// The event's payload as stable `(field, value)` pairs, in
    /// declaration order.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        match *self {
            EventKind::BatchIngested { shard, reports } => {
                vec![("shard", shard), ("reports", reports)]
            }
            EventKind::ShardSnapshot {
                shards,
                total_reports,
            } => vec![("shards", shards), ("total_reports", total_reports)],
            EventKind::CheckpointBegin { shards } => vec![("shards", shards)],
            EventKind::CheckpointCommit {
                shards,
                total_reports,
                bytes,
                nanos,
            } => vec![
                ("shards", shards),
                ("total_reports", total_reports),
                ("bytes", bytes),
                ("nanos", nanos),
            ],
            EventKind::Restore {
                shards,
                total_reports,
                nanos,
            } => vec![
                ("shards", shards),
                ("total_reports", total_reports),
                ("nanos", nanos),
            ],
            EventKind::Merge {
                snapshots,
                total_reports,
            } => vec![("snapshots", snapshots), ("total_reports", total_reports)],
            EventKind::EstimateServed { queries } => vec![("queries", queries)],
            EventKind::ShardFailed { shard } => vec![("shard", shard)],
            EventKind::RetryExhausted { attempts } => vec![("attempts", attempts)],
            EventKind::SalvageCompleted { recovered, dropped } => {
                vec![("recovered", recovered), ("dropped", dropped)]
            }
            EventKind::ConnectionOpened { conn } => vec![("conn", conn)],
            EventKind::ConnectionClosed { conn, reports } => {
                vec![("conn", conn), ("reports", reports)]
            }
            EventKind::ServerDrained {
                connections,
                total_reports,
            } => vec![
                ("connections", connections),
                ("total_reports", total_reports),
            ],
        }
    }
}

/// One journal entry: a kind plus the clock reading when it was recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// [`Clock::now_nanos`](crate::Clock::now_nanos) at record time
    /// (0 under a `NullClock`).
    pub at_nanos: u64,
    /// What happened.
    pub kind: EventKind,
}

/// A bounded ring buffer of [`Event`]s.
///
/// ```
/// use mdrr_obs::{EventKind, Journal};
/// let journal = Journal::new(2);
/// journal.record(10, EventKind::CheckpointBegin { shards: 4 });
/// journal.record(20, EventKind::CheckpointCommit {
///     shards: 4, total_reports: 1_000, bytes: 65_536, nanos: 10,
/// });
/// journal.record(30, EventKind::Merge { snapshots: 2, total_reports: 2_000 });
/// let events = journal.events();
/// assert_eq!(events.len(), 2); // capacity 2: the oldest was dropped…
/// assert_eq!(journal.dropped(), 1); // …and the drop was counted.
/// assert_eq!(events[0].kind.name(), "checkpoint_commit");
/// ```
#[derive(Debug)]
pub struct Journal {
    capacity: usize,
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    events: VecDeque<Event>,
    dropped: u64,
}

impl Journal {
    /// A journal keeping the most recent `capacity` events
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Journal {
            capacity,
            inner: Mutex::new(Inner {
                events: VecDeque::with_capacity(capacity),
                dropped: 0,
            }),
        }
    }

    /// Appends an event, evicting (and counting) the oldest if full.
    pub fn record(&self, at_nanos: u64, kind: EventKind) {
        let mut inner = self.lock();
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(Event { at_nanos, kind });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.lock().events.iter().copied().collect()
    }

    /// How many events have been evicted to respect the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned journal mutex only means a panic elsewhere mid-record;
        // the ring stays structurally valid, so keep serving it.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let journal = Journal::new(3);
        for i in 0..10u64 {
            journal.record(i, EventKind::EstimateServed { queries: i });
        }
        assert_eq!(journal.len(), 3);
        assert_eq!(journal.dropped(), 7);
        let at: Vec<u64> = journal.events().iter().map(|e| e.at_nanos).collect();
        assert_eq!(at, vec![7, 8, 9]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let journal = Journal::new(0);
        assert_eq!(journal.capacity(), 1);
        journal.record(1, EventKind::CheckpointBegin { shards: 1 });
        assert_eq!(journal.len(), 1);
    }

    #[test]
    fn every_kind_names_its_fields() {
        let kinds = [
            EventKind::BatchIngested {
                shard: 1,
                reports: 2,
            },
            EventKind::ShardSnapshot {
                shards: 3,
                total_reports: 4,
            },
            EventKind::CheckpointBegin { shards: 5 },
            EventKind::CheckpointCommit {
                shards: 6,
                total_reports: 7,
                bytes: 8,
                nanos: 9,
            },
            EventKind::Restore {
                shards: 10,
                total_reports: 11,
                nanos: 12,
            },
            EventKind::Merge {
                snapshots: 13,
                total_reports: 14,
            },
            EventKind::EstimateServed { queries: 15 },
            EventKind::ShardFailed { shard: 16 },
            EventKind::RetryExhausted { attempts: 17 },
            EventKind::SalvageCompleted {
                recovered: 18,
                dropped: 19,
            },
            EventKind::ConnectionOpened { conn: 20 },
            EventKind::ConnectionClosed {
                conn: 21,
                reports: 22,
            },
            EventKind::ServerDrained {
                connections: 23,
                total_reports: 24,
            },
        ];
        for kind in kinds {
            assert!(!kind.name().is_empty());
            assert!(!kind.fields().is_empty());
        }
    }
}
