//! # mdrr-obs
//!
//! Production observability primitives for the mdrr workspace, with
//! overhead small enough to leave on while the collector ingests tens of
//! millions of reports per second:
//!
//! * [`clock`] — the injectable monotonic [`Clock`] boundary.  The
//!   deterministic crates (`mdrr-core`, `mdrr-store`, `mdrr-stream`,
//!   `mdrr-eval`, …) never touch `std::time` directly — the
//!   `no-ambient-clock-in-lib` lint enforces it — so byte-identical
//!   crash-resume keeps holding; this crate is the single reasoned
//!   boundary where `std::time::Instant` is read.  A [`NullClock`] makes
//!   instrumented library code cost-free and output-identical when
//!   observability is off.
//! * [`metrics`] — relaxed-atomic [`Counter`]s and [`Gauge`]s: one
//!   `fetch_add(…, Relaxed)` per update, no locks, safe to bump from
//!   every shard worker concurrently.
//! * [`hist`] — fixed-bucket log2 latency [`Histogram`]s: 65 power-of-two
//!   buckets covering all of `u64`, exact order-independent merge (bucket
//!   counts are sums), and p50/p90/p99/p999 extraction whose reported
//!   value always bounds the true quantile from above within the 2×
//!   bucket width.
//! * [`journal`] — a bounded structured event [`Journal`]: a ring buffer
//!   of typed [`Event`]s (batch ingested, shard snapshot, checkpoint
//!   begin/commit, restore, merge, estimate served) that never grows past
//!   its capacity; old events are dropped and counted, not silently lost.
//! * [`registry`] — a [`Registry`] of named, labelled metrics with stable
//!   registration order, snapshotted into a plain [`MetricsSnapshot`].
//! * [`export`] — two exporters over a snapshot: a stable JSON report
//!   ([`to_json`]) and Prometheus text exposition ([`to_prometheus`]).
//!
//! ## Example
//!
//! ```
//! use mdrr_obs::{Clock, ManualClock, Registry};
//! use std::sync::Arc;
//!
//! let clock: Arc<dyn Clock> = Arc::new(ManualClock::new());
//! let registry = Registry::new();
//! let reports = registry.counter_with("shard_reports_total", &[("shard", "0")]);
//! let latency = registry.histogram("ingest_nanos");
//!
//! let t0 = clock.now_nanos();
//! reports.add(8_192); // … ingest a batch …
//! latency.record(clock.now_nanos().saturating_sub(t0));
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counters[0].value, 8_192);
//! let json = mdrr_obs::to_json(&snapshot, &[]);
//! assert!(json.contains("shard_reports_total"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod clock;
pub mod export;
pub mod hist;
pub mod journal;
pub mod metrics;
pub mod registry;

pub use clock::{Clock, ManualClock, MonotonicClock, NullClock};
pub use export::{to_json, to_prometheus};
pub use hist::{bucket_index, bucket_upper, Histogram, HistogramSnapshot, N_BUCKETS};
pub use journal::{Event, EventKind, Journal};
pub use metrics::{Counter, Gauge};
pub use registry::{MetricId, MetricsSnapshot, Registry};
