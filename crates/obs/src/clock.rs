//! The injectable monotonic clock boundary.
//!
//! Library crates on the deterministic-resume path must never read
//! ambient time themselves (the `no-ambient-clock-in-lib` lint forbids
//! `Instant`/`SystemTime` there): they accept a `&dyn Clock` /
//! `Arc<dyn Clock>` from the caller instead.  This module is the single
//! reasoned place in the workspace where `std::time::Instant` is read —
//! behind [`MonotonicClock`] — so a grep for clock sources has exactly
//! one hit, and swapping the time source (tests, simulation, `NullClock`
//! production-off mode) is a constructor argument, not a code change.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source.
///
/// `now_nanos` values are only meaningful as differences; the epoch is
/// arbitrary (for [`MonotonicClock`] it is the moment of construction).
pub trait Clock: std::fmt::Debug + Send + Sync {
    /// Nanoseconds since the clock's arbitrary epoch.  Monotone
    /// non-decreasing for every real implementation; a [`NullClock`]
    /// returns 0 forever.
    fn now_nanos(&self) -> u64;

    /// Whether this clock produces real readings.  Instrumented hot paths
    /// consult this once per batch and skip timing work entirely when it
    /// is `false`, so a [`NullClock`] costs nothing beyond the check.
    fn enabled(&self) -> bool {
        true
    }

    /// Blocks (in this clock's notion of time) until `now_nanos()` has
    /// reached `deadline_nanos`.  This is the waiting primitive behind
    /// retry backoff: library code never sleeps on ambient time, it asks
    /// its injected clock to wait.
    ///
    /// Semantics per implementation:
    ///
    /// * a disabled clock (`!enabled()`) returns immediately — its time
    ///   never advances, so waiting on it would never end and backoff
    ///   under a [`NullClock`] degenerates to immediate retries;
    /// * [`ManualClock`] jumps itself forward to the deadline, so tests
    ///   observe exactly the waits the retry policy requested;
    /// * [`MonotonicClock`] sleeps the calling thread for the remainder.
    ///
    /// The provided default covers the first case and otherwise yields
    /// the thread between polls; real clocks override it.
    fn sleep_until(&self, deadline_nanos: u64) {
        if !self.enabled() {
            return;
        }
        while self.now_nanos() < deadline_nanos {
            std::thread::yield_now();
        }
    }
}

/// The production clock: monotonic nanoseconds measured from the moment
/// of construction via `std::time::Instant` — the workspace's one ambient
/// clock read.
///
/// ```
/// use mdrr_obs::{Clock, MonotonicClock};
/// let clock = MonotonicClock::new();
/// let a = clock.now_nanos();
/// let b = clock.now_nanos();
/// assert!(b >= a);
/// assert!(clock.enabled());
/// ```
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        // Saturates after ~584 years of process uptime; fine.
        self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    fn sleep_until(&self, deadline_nanos: u64) {
        let now = self.now_nanos();
        if let Some(remaining) = deadline_nanos.checked_sub(now) {
            if remaining > 0 {
                std::thread::sleep(std::time::Duration::from_nanos(remaining));
            }
        }
    }
}

/// The observability-off clock: always reads 0 and reports itself
/// disabled, so instrumented library code skips every timing section and
/// stays byte-identical to uninstrumented output.
///
/// ```
/// use mdrr_obs::{Clock, NullClock};
/// let clock = NullClock;
/// assert_eq!(clock.now_nanos(), 0);
/// assert!(!clock.enabled());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullClock;

impl Clock for NullClock {
    fn now_nanos(&self) -> u64 {
        0
    }

    fn enabled(&self) -> bool {
        false
    }
}

/// A hand-advanced clock for deterministic tests: time moves only when
/// the test says so.
///
/// ```
/// use mdrr_obs::{Clock, ManualClock};
/// let clock = ManualClock::new();
/// assert_eq!(clock.now_nanos(), 0);
/// clock.advance(250);
/// assert_eq!(clock.now_nanos(), 250);
/// clock.set(1_000);
/// assert_eq!(clock.now_nanos(), 1_000);
/// ```
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at 0.
    pub fn new() -> Self {
        ManualClock {
            nanos: AtomicU64::new(0),
        }
    }

    /// Moves the clock forward by `delta` nanoseconds.
    pub fn advance(&self, delta: u64) {
        self.nanos.fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the absolute reading.  Setting the clock backwards is allowed
    /// here (it is a test tool), unlike every production clock.
    pub fn set(&self, nanos: u64) {
        self.nanos.store(nanos, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }

    fn sleep_until(&self, deadline_nanos: u64) {
        // Jump straight to the deadline (never backwards): the test clock
        // "waits" by making the wait observable in its reading.
        self.nanos.fetch_max(deadline_nanos, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let clock = MonotonicClock::default();
        let mut last = 0;
        for _ in 0..100 {
            let now = clock.now_nanos();
            assert!(now >= last);
            last = now;
        }
    }

    #[test]
    fn sleep_until_advances_manual_and_skips_null() {
        let clock = ManualClock::new();
        clock.set(100);
        clock.sleep_until(1_000);
        assert_eq!(clock.now_nanos(), 1_000);
        // Never backwards.
        clock.sleep_until(500);
        assert_eq!(clock.now_nanos(), 1_000);
        // A disabled clock returns immediately instead of spinning on a
        // reading that never advances.
        NullClock.sleep_until(u64::MAX);
        assert_eq!(NullClock.now_nanos(), 0);
    }

    #[test]
    fn monotonic_sleep_until_reaches_deadline() {
        let clock = MonotonicClock::new();
        let deadline = clock.now_nanos() + 2_000_000; // 2ms
        clock.sleep_until(deadline);
        assert!(clock.now_nanos() >= deadline);
        // A deadline in the past returns without sleeping.
        clock.sleep_until(0);
    }

    #[test]
    fn clocks_are_object_safe_and_shareable() {
        let clocks: Vec<Arc<dyn Clock>> = vec![
            Arc::new(MonotonicClock::new()),
            Arc::new(NullClock),
            Arc::new(ManualClock::new()),
        ];
        assert!(clocks[0].enabled());
        assert!(!clocks[1].enabled());
        assert_eq!(clocks[2].now_nanos(), 0);
    }
}
