//! Fixed-bucket log2 latency histograms.
//!
//! A [`Histogram`] has exactly [`N_BUCKETS`] = 65 buckets covering all of
//! `u64`: bucket 0 holds the value 0, and bucket `i ≥ 1` holds the values
//! with `i` significant bits, i.e. the range `[2^(i-1), 2^i − 1]`.  The
//! layout buys three properties the hot path needs:
//!
//! * **Recording is lock-free and allocation-free** — one `leading_zeros`
//!   and three relaxed `fetch_add`s, no matter the value.
//! * **Merging is exact and order-independent** — bucket counts are plain
//!   sums, so merged snapshots equal the histogram of the concatenated
//!   samples, in any merge order (proptest-pinned).
//! * **Quantiles are conservatively bounded** — [`HistogramSnapshot::quantile`]
//!   returns the *upper edge* of the bucket holding the rank, so for a
//!   true quantile `t ≥ 1` the reported value `p` satisfies
//!   `t ≤ p ≤ 2t − 1`: never an underestimate, never more than the 2×
//!   log2 bucket width away (also proptest-pinned).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: the value 0, plus one bucket per possible bit
/// length of a non-zero `u64` (1..=64).
pub const N_BUCKETS: usize = 65;

/// The bucket a value falls into: its bit length (0 for 0).
///
/// ```
/// assert_eq!(mdrr_obs::bucket_index(0), 0);
/// assert_eq!(mdrr_obs::bucket_index(1), 1);
/// assert_eq!(mdrr_obs::bucket_index(3), 2);
/// assert_eq!(mdrr_obs::bucket_index(1024), 11);
/// assert_eq!(mdrr_obs::bucket_index(u64::MAX), 64);
/// ```
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The largest value bucket `i` holds: 0 for bucket 0, `2^i − 1`
/// otherwise (saturating at `u64::MAX` for bucket 64).
///
/// ```
/// assert_eq!(mdrr_obs::bucket_upper(0), 0);
/// assert_eq!(mdrr_obs::bucket_upper(1), 1);
/// assert_eq!(mdrr_obs::bucket_upper(11), 2047);
/// assert_eq!(mdrr_obs::bucket_upper(64), u64::MAX);
/// ```
pub fn bucket_upper(index: usize) -> u64 {
    match index {
        0 => 0,
        1..=63 => (1u64 << index) - 1,
        _ => u64::MAX,
    }
}

/// A concurrent log2 histogram: 65 relaxed-atomic buckets plus a running
/// count and sum.
///
/// ```
/// let h = mdrr_obs::Histogram::new();
/// for v in [3u64, 90, 1500, 1500] {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 4);
/// assert_eq!(snap.sum, 3093);
/// assert!(snap.p50() >= 90);
/// ```
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one observation.  Lock-free: three relaxed atomic adds.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        // bucket_index is always < N_BUCKETS by construction.
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.  Under concurrent
    /// recording the copy may straddle an in-flight `record` (count and
    /// bucket loads are independent); after the writers have been joined
    /// it is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A plain-value copy of a [`Histogram`]: mergeable, comparable,
/// exportable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all recorded values (modulo 2^64; overflowing a u64 of
    /// nanoseconds takes ~584 years of accumulated latency).
    pub sum: u64,
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; N_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; N_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Merges another snapshot into this one — exact: bucket counts add,
    /// so the result equals the histogram of the concatenated samples,
    /// independent of merge order.  Sums add wrapping, matching the
    /// wrapping `fetch_add` of [`Histogram::record`] — wrapping addition
    /// is commutative *and* associative, so even a (physically
    /// implausible) overflowed sum merges identically in any order.
    ///
    /// ```
    /// use mdrr_obs::Histogram;
    /// let (a, b) = (Histogram::new(), Histogram::new());
    /// a.record(5);
    /// b.record(500);
    /// let mut merged = a.snapshot();
    /// merged.merge(&b.snapshot());
    /// assert_eq!(merged.count, 2);
    /// assert_eq!(merged.sum, 505);
    /// ```
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.wrapping_add(*theirs);
        }
    }

    /// The conservative `q`-quantile: the upper edge of the bucket that
    /// holds the `⌈q·count⌉`-th smallest observation.  Returns 0 for an
    /// empty histogram.  For a true quantile `t`, the result `p`
    /// satisfies `t ≤ p` always, and `p ≤ 2t − 1` whenever `t ≥ 1`.
    ///
    /// ```
    /// let h = mdrr_obs::Histogram::new();
    /// for v in 1..=1000u64 {
    ///     h.record(v);
    /// }
    /// let snap = h.snapshot();
    /// let p99 = snap.quantile(0.99);
    /// assert!((990..1980).contains(&p99));
    /// ```
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        // Unreachable when the bucket counts sum to `count`; fall back to
        // the largest edge rather than panicking on a torn snapshot.
        u64::MAX
    }

    /// The median bound (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 90th-percentile bound.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// The 99th-percentile bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The 99.9th-percentile bound.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// The exact mean of the recorded values (`NaN`-free: 0.0 when
    /// empty).  Unlike the quantiles this is not bucketed — `sum` is kept
    /// exactly.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_tile_u64() {
        // Every value lands in exactly one bucket whose range contains it.
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX - 1, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i), "{v} above its bucket");
            if i > 0 {
                assert!(v > bucket_upper(i - 1), "{v} fits a smaller bucket");
            }
        }
    }

    #[test]
    fn quantiles_are_upper_edges() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket 4, upper 15
        }
        h.record(1_000_000); // bucket 20, upper 2^20 - 1
        let snap = h.snapshot();
        assert_eq!(snap.p50(), 15);
        assert_eq!(snap.p90(), 15);
        assert_eq!(snap.quantile(1.0), (1 << 20) - 1);
        assert_eq!(HistogramSnapshot::default().p99(), 0);
    }

    #[test]
    fn merge_is_concatenation() {
        let (a, b) = (Histogram::new(), Histogram::new());
        let all = Histogram::new();
        for v in [1u64, 2, 3, 100] {
            a.record(v);
            all.record(v);
        }
        for v in [7u64, 7, 9_000] {
            b.record(v);
            all.record(v);
        }
        let mut ab = a.snapshot();
        ab.merge(&b.snapshot());
        let mut ba = b.snapshot();
        ba.merge(&a.snapshot());
        assert_eq!(ab, all.snapshot());
        assert_eq!(ba, all.snapshot());
    }
}
