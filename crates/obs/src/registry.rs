//! The metric registry: named, labelled instruments with stable order.
//!
//! A [`Registry`] hands out `Arc`s to [`Counter`]s, [`Gauge`]s and
//! [`Histogram`]s keyed by `(name, labels)`.  Registration is
//! get-or-create — asking twice for the same id returns the same
//! instrument — and the registration order is preserved, so exports are
//! deterministic run to run.  Registration takes a `Mutex` (it happens
//! once per metric at setup); updates through the returned `Arc`s are the
//! lock-free relaxed-atomic paths of the instruments themselves.

use std::sync::{Arc, Mutex, MutexGuard};

use crate::hist::{Histogram, HistogramSnapshot};
use crate::metrics::{Counter, Gauge};

/// The identity of a metric: a name plus ordered `(key, value)` labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricId {
    /// Metric name, e.g. `stream_shard_reports_total`.
    pub name: String,
    /// Ordered label pairs, e.g. `[("shard", "3")]`.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    /// Builds an id from borrowed parts.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        MetricId {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }
}

#[derive(Debug, Default)]
struct Instruments {
    counters: Vec<(MetricId, Arc<Counter>)>,
    gauges: Vec<(MetricId, Arc<Gauge>)>,
    histograms: Vec<(MetricId, Arc<Histogram>)>,
}

/// A registry of named instruments.
///
/// ```
/// use mdrr_obs::Registry;
/// let registry = Registry::new();
/// let a = registry.counter("checkpoints_total");
/// let b = registry.counter("checkpoints_total"); // same instrument
/// a.inc();
/// b.inc();
/// assert_eq!(registry.snapshot().counters[0].value, 2);
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Instruments>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Gets or registers an unlabelled counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Gets or registers a labelled counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let id = MetricId::new(name, labels);
        let mut inner = self.lock();
        if let Some((_, c)) = inner.counters.iter().find(|(i, _)| *i == id) {
            return Arc::clone(c);
        }
        let counter = Arc::new(Counter::new());
        inner.counters.push((id, Arc::clone(&counter)));
        counter
    }

    /// Gets or registers an unlabelled gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Gets or registers a labelled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let id = MetricId::new(name, labels);
        let mut inner = self.lock();
        if let Some((_, g)) = inner.gauges.iter().find(|(i, _)| *i == id) {
            return Arc::clone(g);
        }
        let gauge = Arc::new(Gauge::new());
        inner.gauges.push((id, Arc::clone(&gauge)));
        gauge
    }

    /// Gets or registers an unlabelled histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Gets or registers a labelled histogram.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let id = MetricId::new(name, labels);
        let mut inner = self.lock();
        if let Some((_, h)) = inner.histograms.iter().find(|(i, _)| *i == id) {
            return Arc::clone(h);
        }
        let histogram = Arc::new(Histogram::new());
        inner.histograms.push((id, Arc::clone(&histogram)));
        histogram
    }

    /// A plain-value snapshot of every registered instrument, in
    /// registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(id, c)| CounterSample {
                    id: id.clone(),
                    value: c.get(),
                })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(id, g)| GaugeSample {
                    id: id.clone(),
                    value: g.get(),
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(id, h)| HistogramSample {
                    id: id.clone(),
                    hist: h.snapshot(),
                })
                .collect(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Instruments> {
        // Registration never leaves the vectors half-updated across a
        // panic point, so a poisoned lock is still structurally sound.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// A counter's id and value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Which counter.
    pub id: MetricId,
    /// Its value.
    pub value: u64,
}

/// A gauge's id and value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSample {
    /// Which gauge.
    pub id: MetricId,
    /// Its value.
    pub value: u64,
}

/// A histogram's id and bucket snapshot at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Which histogram.
    pub id: MetricId,
    /// Its buckets, count and sum.
    pub hist: HistogramSnapshot,
}

/// Every instrument's plain value at one point in time, in registration
/// order — the input to both exporters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// All counters.
    pub counters: Vec<CounterSample>,
    /// All gauges.
    pub gauges: Vec<GaugeSample>,
    /// All histograms.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// The value of the counter with the given name and labels, if
    /// registered.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let id = MetricId::new(name, labels);
        self.counters.iter().find(|s| s.id == id).map(|s| s.value)
    }

    /// The value of the gauge with the given name and labels, if
    /// registered.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let id = MetricId::new(name, labels);
        self.gauges.iter().find(|s| s.id == id).map(|s| s.value)
    }

    /// The snapshot of the histogram with the given name and labels, if
    /// registered.
    pub fn histogram_snapshot(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<&HistogramSnapshot> {
        let id = MetricId::new(name, labels);
        self.histograms.iter().find(|s| s.id == id).map(|s| &s.hist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_dedups_by_name_and_labels() {
        let registry = Registry::new();
        let a = registry.counter_with("reports", &[("shard", "0")]);
        let b = registry.counter_with("reports", &[("shard", "0")]);
        let c = registry.counter_with("reports", &[("shard", "1")]);
        a.add(5);
        b.add(5);
        c.add(1);
        let snap = registry.snapshot();
        assert_eq!(snap.counters.len(), 2);
        assert_eq!(snap.counter_value("reports", &[("shard", "0")]), Some(10));
        assert_eq!(snap.counter_value("reports", &[("shard", "1")]), Some(1));
        assert_eq!(snap.counter_value("reports", &[("shard", "9")]), None);
    }

    #[test]
    fn snapshot_preserves_registration_order() {
        let registry = Registry::new();
        registry.gauge("z_last");
        registry.gauge("a_first_registered_second");
        let snap = registry.snapshot();
        assert_eq!(snap.gauges[0].id.name, "z_last");
        assert_eq!(snap.gauges[1].id.name, "a_first_registered_second");
    }

    #[test]
    fn histogram_lookup_by_id() {
        let registry = Registry::new();
        registry
            .histogram_with("lat", &[("path", "ingest")])
            .record(7);
        let snap = registry.snapshot();
        let hist = snap
            .histogram_snapshot("lat", &[("path", "ingest")])
            .expect("registered");
        assert_eq!(hist.count, 1);
        assert!(snap.histogram_snapshot("lat", &[]).is_none());
    }
}
