//! Probability-vector utilities.
//!
//! The unbiased estimator `π̂ = (Pᵀ)⁻¹ λ̂` of the paper's Equation (2) can
//! return values below 0 or above 1 when the empirical randomized
//! distribution is not consistent with the randomization matrix
//! (Section 2.1).  Section 6.4 of the paper resolves this by picking the
//! proper probability distribution closest (in Euclidean distance) to the
//! raw output: negative entries are clamped to zero and the remainder is
//! rescaled to sum to one.  [`project_clamp_rescale`] implements exactly
//! that post-processing; distance helpers are provided for tests and for
//! evaluation metrics.

use crate::error::MathError;

/// Whether `v` is a proper probability vector: every entry in `[0, 1]`
/// (within `tol`) and the entries sum to 1 (within `tol`).
pub fn is_probability_vector(v: &[f64], tol: f64) -> bool {
    if v.is_empty() {
        return false;
    }
    let mut sum = 0.0;
    for &x in v {
        if !(x >= -tol && x <= 1.0 + tol) {
            return false;
        }
        sum += x;
    }
    (sum - 1.0).abs() <= tol
}

/// The paper's Section 6.4 projection: replace negative entries with 0 and
/// rescale the rest so the vector sums to 1.
///
/// If every entry is non-positive (which can only happen for extremely
/// inconsistent inputs), the uniform distribution is returned — this is the
/// maximum-entropy fallback and keeps downstream estimators well defined.
///
/// # Errors
/// Returns [`MathError::InvalidParameter`] if `v` is empty or contains a
/// non-finite value.
pub fn project_clamp_rescale(v: &[f64]) -> Result<Vec<f64>, MathError> {
    if v.is_empty() {
        return Err(MathError::invalid("v", "cannot project an empty vector"));
    }
    if v.iter().any(|x| !x.is_finite()) {
        return Err(MathError::invalid(
            "v",
            "vector contains non-finite entries",
        ));
    }
    let clamped: Vec<f64> = v.iter().map(|&x| x.max(0.0)).collect();
    let sum: f64 = clamped.iter().sum();
    if sum <= 0.0 {
        let uniform = 1.0 / v.len() as f64;
        return Ok(vec![uniform; v.len()]);
    }
    Ok(clamped.into_iter().map(|x| x / sum).collect())
}

/// L1 distance `Σ |a_i − b_i|` between two equally long vectors.
///
/// # Errors
/// Returns [`MathError::DimensionMismatch`] if the lengths differ.
pub fn l1_distance(a: &[f64], b: &[f64]) -> Result<f64, MathError> {
    check_lengths(a, b, "l1_distance")?;
    Ok(a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum())
}

/// Euclidean (L2) distance between two equally long vectors.
///
/// # Errors
/// Returns [`MathError::DimensionMismatch`] if the lengths differ.
pub fn l2_distance(a: &[f64], b: &[f64]) -> Result<f64, MathError> {
    check_lengths(a, b, "l2_distance")?;
    Ok(a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt())
}

/// Total-variation distance `½ Σ |a_i − b_i|` between two distributions.
///
/// # Errors
/// Returns [`MathError::DimensionMismatch`] if the lengths differ.
pub fn total_variation_distance(a: &[f64], b: &[f64]) -> Result<f64, MathError> {
    Ok(0.5 * l1_distance(a, b)?)
}

/// Normalises a non-negative weight vector so it sums to 1.
///
/// # Errors
/// Returns [`MathError::InvalidParameter`] if the vector is empty, contains
/// negative or non-finite entries, or sums to zero.
pub fn normalize(v: &[f64]) -> Result<Vec<f64>, MathError> {
    if v.is_empty() {
        return Err(MathError::invalid("v", "cannot normalize an empty vector"));
    }
    if v.iter().any(|x| !x.is_finite() || *x < 0.0) {
        return Err(MathError::invalid(
            "v",
            "vector must be non-negative and finite",
        ));
    }
    let sum: f64 = v.iter().sum();
    if sum <= 0.0 {
        return Err(MathError::invalid("v", "vector sums to zero"));
    }
    Ok(v.iter().map(|&x| x / sum).collect())
}

fn check_lengths(a: &[f64], b: &[f64], context: &str) -> Result<(), MathError> {
    if a.len() != b.len() {
        return Err(MathError::DimensionMismatch {
            context: context.to_string(),
            left: (a.len(), 1),
            right: (b.len(), 1),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn probability_vector_detection() {
        assert!(is_probability_vector(&[0.2, 0.3, 0.5], 1e-12));
        assert!(!is_probability_vector(&[0.2, 0.3, 0.4], 1e-12));
        assert!(!is_probability_vector(&[-0.1, 0.6, 0.5], 1e-12));
        assert!(!is_probability_vector(&[1.1, -0.1], 1e-12));
        assert!(!is_probability_vector(&[], 1e-12));
        // Tolerance is honoured.
        assert!(is_probability_vector(&[0.2 + 5e-13, 0.3, 0.5], 1e-9));
    }

    #[test]
    fn projection_is_identity_on_proper_distributions() {
        let v = [0.1, 0.2, 0.7];
        let p = project_clamp_rescale(&v).unwrap();
        for (a, b) in p.iter().zip(v.iter()) {
            assert_close(*a, *b, 1e-15);
        }
    }

    #[test]
    fn projection_clamps_negatives_and_rescales() {
        // The paper's example scenario: the raw estimator went below zero.
        let v = [-0.2, 0.6, 0.8];
        let p = project_clamp_rescale(&v).unwrap();
        assert!(is_probability_vector(&p, 1e-12));
        assert_eq!(p[0], 0.0);
        assert_close(p[1], 0.6 / 1.4, 1e-12);
        assert_close(p[2], 0.8 / 1.4, 1e-12);
    }

    #[test]
    fn projection_all_nonpositive_falls_back_to_uniform() {
        let p = project_clamp_rescale(&[-1.0, -2.0, 0.0, -0.5]).unwrap();
        assert!(is_probability_vector(&p, 1e-12));
        for &x in &p {
            assert_close(x, 0.25, 1e-15);
        }
    }

    #[test]
    fn projection_rejects_invalid() {
        assert!(project_clamp_rescale(&[]).is_err());
        assert!(project_clamp_rescale(&[f64::NAN, 0.5]).is_err());
        assert!(project_clamp_rescale(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn distances_known_values() {
        let a = [0.5, 0.5, 0.0];
        let b = [0.25, 0.25, 0.5];
        assert_close(l1_distance(&a, &b).unwrap(), 1.0, 1e-15);
        assert_close(total_variation_distance(&a, &b).unwrap(), 0.5, 1e-15);
        assert_close(
            l2_distance(&a, &b).unwrap(),
            (0.0625f64 + 0.0625 + 0.25).sqrt(),
            1e-15,
        );
    }

    #[test]
    fn distances_zero_on_identical() {
        let a = [0.3, 0.3, 0.4];
        assert_eq!(l1_distance(&a, &a).unwrap(), 0.0);
        assert_eq!(l2_distance(&a, &a).unwrap(), 0.0);
        assert_eq!(total_variation_distance(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn distances_reject_mismatched_lengths() {
        assert!(l1_distance(&[1.0], &[1.0, 2.0]).is_err());
        assert!(l2_distance(&[1.0], &[1.0, 2.0]).is_err());
        assert!(total_variation_distance(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn normalize_scales_to_unit_sum() {
        let p = normalize(&[2.0, 3.0, 5.0]).unwrap();
        assert!(is_probability_vector(&p, 1e-12));
        assert_close(p[0], 0.2, 1e-15);
        assert_close(p[2], 0.5, 1e-15);
    }

    #[test]
    fn normalize_rejects_invalid() {
        assert!(normalize(&[]).is_err());
        assert!(normalize(&[0.0, 0.0]).is_err());
        assert!(normalize(&[-1.0, 2.0]).is_err());
        assert!(normalize(&[f64::NAN]).is_err());
    }

    #[test]
    fn tv_distance_is_at_most_one_for_distributions() {
        let a = [1.0, 0.0, 0.0];
        let b = [0.0, 0.0, 1.0];
        assert_close(total_variation_distance(&a, &b).unwrap(), 1.0, 1e-15);
    }
}
