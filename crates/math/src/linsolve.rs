//! Linear solvers and matrix inversion.
//!
//! Two paths are provided:
//!
//! * a general Gauss–Jordan inversion with partial pivoting, used for
//!   arbitrary randomization matrices and as a cross-check in tests;
//! * a closed-form inverse for matrices of the form `aI + bJ` (constant
//!   diagonal `a + b`, constant off-diagonal `b`), which is the exact shape
//!   of every *optimal* randomization matrix in the paper (Section 2.3 and
//!   Section 6.3).  The closed form costs `O(r²)` to materialise — or `O(r)`
//!   when only applied to a vector — matching the paper's observation that
//!   "their regularity makes it possible to easily compute their inverses
//!   with a cost O(|Aj|²)".

use crate::error::MathError;
use crate::matrix::Matrix;

/// Inverts a square matrix using Gauss–Jordan elimination with partial
/// pivoting.
///
/// # Errors
/// * [`MathError::DimensionMismatch`] if the matrix is not square.
/// * [`MathError::SingularMatrix`] if a pivot smaller than `1e-12` (in
///   absolute value) is encountered.
pub fn invert(matrix: &Matrix) -> Result<Matrix, MathError> {
    if !matrix.is_square() {
        return Err(MathError::DimensionMismatch {
            context: "invert".to_string(),
            left: (matrix.rows(), matrix.cols()),
            right: (matrix.cols(), matrix.rows()),
        });
    }
    let n = matrix.rows();
    // Augmented system [A | I], reduced in place.
    let mut a = matrix.clone();
    let mut inv = Matrix::identity(n);

    for col in 0..n {
        // Partial pivoting: pick the row with the largest magnitude in this column.
        let mut pivot_row = col;
        let mut pivot_val = a.get(col, col).abs();
        for r in (col + 1)..n {
            let v = a.get(r, col).abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-12 {
            return Err(MathError::SingularMatrix { pivot: col });
        }
        if pivot_row != col {
            swap_rows(&mut a, col, pivot_row);
            swap_rows(&mut inv, col, pivot_row);
        }

        // Normalise the pivot row.
        let pivot = a.get(col, col);
        let inv_pivot = 1.0 / pivot;
        for j in 0..n {
            a.set(col, j, a.get(col, j) * inv_pivot);
            inv.set(col, j, inv.get(col, j) * inv_pivot);
        }

        // Eliminate the column from every other row.
        for r in 0..n {
            if r == col {
                continue;
            }
            let factor = a.get(r, col);
            if factor == 0.0 {
                continue;
            }
            for j in 0..n {
                a.set(r, j, a.get(r, j) - factor * a.get(col, j));
                inv.set(r, j, inv.get(r, j) - factor * inv.get(col, j));
            }
        }
    }
    Ok(inv)
}

/// Solves the linear system `A x = b` by Gaussian elimination with partial
/// pivoting, without materialising `A⁻¹`.
///
/// # Errors
/// * [`MathError::DimensionMismatch`] if `A` is not square or `b` has the
///   wrong length.
/// * [`MathError::SingularMatrix`] if `A` is (numerically) singular.
pub fn solve(matrix: &Matrix, b: &[f64]) -> Result<Vec<f64>, MathError> {
    if !matrix.is_square() {
        return Err(MathError::DimensionMismatch {
            context: "solve".to_string(),
            left: (matrix.rows(), matrix.cols()),
            right: (matrix.cols(), matrix.rows()),
        });
    }
    let n = matrix.rows();
    if b.len() != n {
        return Err(MathError::DimensionMismatch {
            context: "solve (rhs)".to_string(),
            left: (n, n),
            right: (b.len(), 1),
        });
    }
    let mut a = matrix.clone();
    let mut x: Vec<f64> = b.to_vec();

    // Forward elimination with partial pivoting.
    for col in 0..n {
        let mut pivot_row = col;
        let mut pivot_val = a.get(col, col).abs();
        for r in (col + 1)..n {
            let v = a.get(r, col).abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-12 {
            return Err(MathError::SingularMatrix { pivot: col });
        }
        if pivot_row != col {
            swap_rows(&mut a, col, pivot_row);
            x.swap(col, pivot_row);
        }
        let pivot = a.get(col, col);
        for r in (col + 1)..n {
            let factor = a.get(r, col) / pivot;
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                a.set(r, j, a.get(r, j) - factor * a.get(col, j));
            }
            x[r] -= factor * x[col];
        }
    }

    // Back substitution.
    for col in (0..n).rev() {
        let mut acc = x[col];
        for (j, x_j) in x.iter().enumerate().take(n).skip(col + 1) {
            acc -= a.get(col, j) * x_j;
        }
        x[col] = acc / a.get(col, col);
    }
    Ok(x)
}

/// Closed-form inverse of the matrix `M = aI + bJ` where `J` is the all-ones
/// `r × r` matrix: constant diagonal `a + b`, constant off-diagonal `b`.
///
/// Every optimal randomization matrix of the paper has this shape
/// (`p_u` on the diagonal, `p_d` off the diagonal, so `a = p_u - p_d` and
/// `b = p_d`).  By the Sherman–Morrison formula,
/// `M⁻¹ = (1/a) I − (b / (a (a + r b))) J`.
///
/// # Errors
/// Returns [`MathError::SingularMatrix`] when `a ≈ 0` or `a + r·b ≈ 0`
/// (these are exactly the singular configurations), and
/// [`MathError::InvalidParameter`] when `r == 0`.
pub fn invert_uniform_perturbation(a: f64, b: f64, r: usize) -> Result<Matrix, MathError> {
    let (inv_diag, inv_off) = uniform_perturbation_inverse_entries(a, b, r)?;
    Ok(Matrix::from_fn(r, r, |i, j| {
        if i == j {
            inv_diag
        } else {
            inv_off
        }
    }))
}

/// Returns the `(diagonal, off_diagonal)` entries of the inverse of
/// `aI + bJ` without materialising the matrix.
///
/// # Errors
/// Same conditions as [`invert_uniform_perturbation`].
pub fn uniform_perturbation_inverse_entries(
    a: f64,
    b: f64,
    r: usize,
) -> Result<(f64, f64), MathError> {
    if r == 0 {
        return Err(MathError::invalid("r", "dimension must be positive"));
    }
    let denom = a * (a + r as f64 * b);
    if a.abs() < 1e-300 || denom.abs() < 1e-300 {
        return Err(MathError::SingularMatrix { pivot: 0 });
    }
    let off = -b / denom;
    let diag = 1.0 / a + off;
    Ok((diag, off))
}

/// Applies the inverse of `aI + bJ` to a vector in `O(r)` time without ever
/// building the matrix: `(aI + bJ)⁻¹ v = v/a − (b Σv / (a (a + r b))) 𝟙`.
///
/// # Errors
/// Same conditions as [`invert_uniform_perturbation`], plus a dimension
/// check on `v`.
pub fn solve_uniform_perturbation(a: f64, b: f64, v: &[f64]) -> Result<Vec<f64>, MathError> {
    let r = v.len();
    if r == 0 {
        return Err(MathError::invalid("v", "vector must be non-empty"));
    }
    let denom = a * (a + r as f64 * b);
    if a.abs() < 1e-300 || denom.abs() < 1e-300 {
        return Err(MathError::SingularMatrix { pivot: 0 });
    }
    let sum: f64 = v.iter().sum();
    let shift = b * sum / denom;
    Ok(v.iter().map(|&x| x / a - shift).collect())
}

/// Condition-number-style diagnostic: the ratio between the largest and
/// smallest eigenvalue of `aI + bJ` (both are known in closed form:
/// `a + r·b` with multiplicity 1 and `a` with multiplicity `r − 1`).
///
/// The paper (Section 2.3, following Agrawal & Haritsa) lower-bounds the
/// error-propagation factor of the estimator by `P_max / P_min`; for the
/// optimal matrices this quantity is available analytically.
///
/// # Errors
/// Returns [`MathError::SingularMatrix`] if either eigenvalue is ~0, and
/// [`MathError::InvalidParameter`] when `r == 0`.
pub fn uniform_perturbation_condition(a: f64, b: f64, r: usize) -> Result<f64, MathError> {
    if r == 0 {
        return Err(MathError::invalid("r", "dimension must be positive"));
    }
    let e1 = a + r as f64 * b;
    let e2 = a;
    if e1.abs() < 1e-300 || e2.abs() < 1e-300 {
        return Err(MathError::SingularMatrix { pivot: 0 });
    }
    let hi = e1.abs().max(e2.abs());
    let lo = e1.abs().min(e2.abs());
    Ok(hi / lo)
}

fn swap_rows(m: &mut Matrix, a: usize, b: usize) {
    if a == b {
        return;
    }
    let cols = m.cols();
    for j in 0..cols {
        let tmp = m.get(a, j);
        m.set(a, j, m.get(b, j));
        m.set(b, j, tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rr_matrix(p: f64, r: usize) -> Matrix {
        // keep-with-probability-p, otherwise uniform over all r categories
        let diag = p + (1.0 - p) / r as f64;
        let off = (1.0 - p) / r as f64;
        Matrix::from_fn(r, r, |i, j| if i == j { diag } else { off })
    }

    #[test]
    fn invert_identity() {
        let i = Matrix::identity(4);
        let inv = invert(&i).unwrap();
        assert!(inv.approx_eq(&i, 1e-12));
    }

    #[test]
    fn invert_known_2x2() {
        let m = Matrix::from_rows(&[vec![4.0, 7.0], vec![2.0, 6.0]]).unwrap();
        let inv = invert(&m).unwrap();
        let expected = Matrix::from_rows(&[vec![0.6, -0.7], vec![-0.2, 0.4]]).unwrap();
        assert!(inv.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn invert_roundtrip_rr_matrix() {
        for r in [2usize, 3, 5, 9, 16] {
            let p = 0.7;
            let m = rr_matrix(p, r);
            let inv = invert(&m).unwrap();
            let prod = m.matmul(&inv).unwrap();
            assert!(prod.approx_eq(&Matrix::identity(r), 1e-9), "r = {r}");
        }
    }

    #[test]
    fn invert_rejects_singular() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(invert(&m), Err(MathError::SingularMatrix { .. })));
    }

    #[test]
    fn invert_rejects_non_square() {
        let m = Matrix::zeros(2, 3);
        assert!(matches!(
            invert(&m),
            Err(MathError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn invert_needs_pivoting() {
        // Zero in the top-left corner forces a row swap.
        let m = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let inv = invert(&m).unwrap();
        assert!(inv.approx_eq(&m, 1e-12)); // a permutation matrix is its own inverse
    }

    #[test]
    fn solve_matches_inverse() {
        let m = Matrix::from_rows(&[
            vec![3.0, 1.0, 2.0],
            vec![1.0, 4.0, 0.5],
            vec![2.0, 0.5, 5.0],
        ])
        .unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = solve(&m, &b).unwrap();
        let via_inverse = invert(&m).unwrap().matvec(&b).unwrap();
        for (a, c) in x.iter().zip(via_inverse.iter()) {
            assert!((a - c).abs() < 1e-10);
        }
        // residual check
        let back = m.matvec(&x).unwrap();
        for (a, c) in back.iter().zip(b.iter()) {
            assert!((a - c).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_validates_shapes() {
        let m = Matrix::zeros(2, 3);
        assert!(solve(&m, &[1.0, 2.0]).is_err());
        let sq = Matrix::identity(2);
        assert!(solve(&sq, &[1.0]).is_err());
    }

    #[test]
    fn closed_form_matches_gauss_jordan() {
        for r in [2usize, 4, 9, 33] {
            for p in [0.1, 0.3, 0.5, 0.7, 0.95] {
                let m = rr_matrix(p, r);
                let a = p; // diag - off
                let b = (1.0 - p) / r as f64;
                let closed = invert_uniform_perturbation(a, b, r).unwrap();
                let general = invert(&m).unwrap();
                assert!(
                    closed.approx_eq(&general, 1e-8),
                    "mismatch for r={r}, p={p}"
                );
            }
        }
    }

    #[test]
    fn solve_uniform_perturbation_matches_matrix_inverse() {
        let r = 7;
        let p = 0.4;
        let a = p;
        let b = (1.0 - p) / r as f64;
        let v: Vec<f64> = (0..r).map(|i| (i as f64 + 1.0) / 10.0).collect();
        let fast = solve_uniform_perturbation(a, b, &v).unwrap();
        let slow = invert_uniform_perturbation(a, b, r)
            .unwrap()
            .matvec(&v)
            .unwrap();
        for (x, y) in fast.iter().zip(slow.iter()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn closed_form_rejects_degenerate() {
        assert!(invert_uniform_perturbation(0.0, 0.5, 3).is_err());
        assert!(invert_uniform_perturbation(1.0, -1.0 / 3.0, 3).is_err());
        assert!(invert_uniform_perturbation(1.0, 0.1, 0).is_err());
        assert!(solve_uniform_perturbation(0.0, 0.1, &[1.0]).is_err());
        assert!(solve_uniform_perturbation(1.0, 0.1, &[]).is_err());
    }

    #[test]
    fn condition_number_of_identity_is_one() {
        assert!((uniform_perturbation_condition(1.0, 0.0, 5).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn condition_number_grows_with_randomization() {
        // More probability mass off the diagonal => worse conditioning.
        let weak = uniform_perturbation_condition(0.9, 0.1 / 4.0, 4).unwrap();
        let strong = uniform_perturbation_condition(0.2, 0.8 / 4.0, 4).unwrap();
        assert!(strong > weak);
    }
}
