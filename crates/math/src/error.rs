//! Error type shared by the numerical routines.

use std::fmt;

/// Errors produced by the numerical substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum MathError {
    /// A matrix operation received operands with incompatible shapes.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        context: String,
        /// Shape of the left / first operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right / second operand as `(rows, cols)`.
        right: (usize, usize),
    },
    /// A matrix that must be inverted (or solved against) is singular or so
    /// ill-conditioned that elimination broke down.
    SingularMatrix {
        /// Pivot column at which elimination failed.
        pivot: usize,
    },
    /// A routine was called with a parameter outside its mathematical domain
    /// (e.g. a probability outside `[0, 1]`, a non-positive dimension…).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the constraint that was violated.
        message: String,
    },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the routine.
        routine: &'static str,
        /// Number of iterations that were performed.
        iterations: usize,
    },
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::DimensionMismatch {
                context,
                left,
                right,
            } => write!(
                f,
                "dimension mismatch in {context}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            MathError::SingularMatrix { pivot } => {
                write!(
                    f,
                    "matrix is singular (elimination failed at pivot column {pivot})"
                )
            }
            MathError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            MathError::NoConvergence {
                routine,
                iterations,
            } => {
                write!(
                    f,
                    "{routine} failed to converge after {iterations} iterations"
                )
            }
        }
    }
}

impl std::error::Error for MathError {}

impl MathError {
    /// Convenience constructor for [`MathError::InvalidParameter`].
    pub fn invalid(name: &'static str, message: impl Into<String>) -> Self {
        MathError::InvalidParameter {
            name,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let err = MathError::DimensionMismatch {
            context: "matmul".to_string(),
            left: (2, 3),
            right: (4, 5),
        };
        let text = err.to_string();
        assert!(text.contains("matmul"));
        assert!(text.contains("2x3"));
        assert!(text.contains("4x5"));
    }

    #[test]
    fn display_singular() {
        let err = MathError::SingularMatrix { pivot: 3 };
        assert!(err.to_string().contains("pivot column 3"));
    }

    #[test]
    fn display_invalid_parameter() {
        let err = MathError::invalid("p", "must lie in [0, 1]");
        assert!(err.to_string().contains("`p`"));
        assert!(err.to_string().contains("[0, 1]"));
    }

    #[test]
    fn display_no_convergence() {
        let err = MathError::NoConvergence {
            routine: "chi2_quantile",
            iterations: 200,
        };
        assert!(err.to_string().contains("chi2_quantile"));
        assert!(err.to_string().contains("200"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            MathError::SingularMatrix { pivot: 1 },
            MathError::SingularMatrix { pivot: 1 }
        );
        assert_ne!(
            MathError::SingularMatrix { pivot: 1 },
            MathError::SingularMatrix { pivot: 2 }
        );
    }
}
