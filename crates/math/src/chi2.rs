//! χ² distribution: CDF, survival function, quantile, and the paper's
//! `B` factor.
//!
//! Section 2.3 of the paper bounds the absolute and relative error of the
//! empirical randomized-response distribution `λ̂` via the `α/r` upper
//! percentile `B` of the χ² distribution with one degree of freedom
//! (Definitions 1–2, Expressions (5) and (6)); Figure 1 plots `√B` as a
//! function of the number of categories `r` for `α = 0.05`.  This module
//! provides exactly those quantities, built on the regularized incomplete
//! gamma function of [`crate::special`].

use crate::error::MathError;
use crate::special::{normal_quantile, regularized_gamma_p, regularized_gamma_q};

/// Cumulative distribution function of the χ² distribution with `df`
/// degrees of freedom, evaluated at `x`.
///
/// # Errors
/// Returns [`MathError::InvalidParameter`] when `df <= 0` or `x < 0`.
pub fn chi2_cdf(x: f64, df: f64) -> Result<f64, MathError> {
    if !df.is_finite() || df <= 0.0 {
        return Err(MathError::invalid(
            "df",
            format!("degrees of freedom must be positive, got {df}"),
        ));
    }
    if !x.is_finite() || x < 0.0 {
        return Err(MathError::invalid(
            "x",
            format!("chi-squared argument must be non-negative, got {x}"),
        ));
    }
    regularized_gamma_p(df / 2.0, x / 2.0)
}

/// Survival function `1 − CDF` of the χ² distribution, computed without
/// cancellation in the upper tail.
///
/// # Errors
/// Same conditions as [`chi2_cdf`].
pub fn chi2_sf(x: f64, df: f64) -> Result<f64, MathError> {
    if !df.is_finite() || df <= 0.0 {
        return Err(MathError::invalid(
            "df",
            format!("degrees of freedom must be positive, got {df}"),
        ));
    }
    if !x.is_finite() || x < 0.0 {
        return Err(MathError::invalid(
            "x",
            format!("chi-squared argument must be non-negative, got {x}"),
        ));
    }
    regularized_gamma_q(df / 2.0, x / 2.0)
}

/// Quantile function of the χ² distribution: the value `x` such that
/// `CDF(x; df) = q`.
///
/// For one degree of freedom the closed form `x = Φ⁻¹((1+q)/2)²` is used;
/// for general `df` a bracketing bisection refined with Newton steps on the
/// smooth CDF is applied (the Wilson–Hilferty approximation provides the
/// starting bracket).
///
/// # Errors
/// Returns [`MathError::InvalidParameter`] when `df <= 0` or `q ∉ [0, 1)`,
/// and [`MathError::NoConvergence`] if root finding fails (not expected for
/// valid inputs).
pub fn chi2_quantile(q: f64, df: f64) -> Result<f64, MathError> {
    if !df.is_finite() || df <= 0.0 {
        return Err(MathError::invalid(
            "df",
            format!("degrees of freedom must be positive, got {df}"),
        ));
    }
    if !(0.0..1.0).contains(&q) {
        return Err(MathError::invalid(
            "q",
            format!("quantile level must lie in [0, 1), got {q}"),
        ));
    }
    if q == 0.0 {
        return Ok(0.0);
    }
    if (df - 1.0).abs() < 1e-12 {
        // χ²₁ = Z², so the q-quantile is Φ⁻¹((1+q)/2)².
        let z = normal_quantile((1.0 + q) / 2.0)?;
        return Ok(z * z);
    }

    // Wilson–Hilferty starting point: χ²_q ≈ df (1 − 2/(9 df) + z √(2/(9 df)))³.
    let z = normal_quantile(q)?;
    let wh = {
        let c = 2.0 / (9.0 * df);
        let t = 1.0 - c + z * c.sqrt();
        df * t * t * t
    };
    let mut x = wh.max(1e-10);

    // Bracket the root.
    let mut lo = 0.0;
    let mut hi = x.max(df) * 2.0 + 10.0;
    while chi2_cdf(hi, df)? < q {
        hi *= 2.0;
        if hi > 1e12 {
            return Err(MathError::NoConvergence {
                routine: "chi2_quantile (bracket)",
                iterations: 0,
            });
        }
    }

    // Newton iterations with bisection fallback.
    for _ in 0..200 {
        let f = chi2_cdf(x, df)? - q;
        if f.abs() < 1e-14 {
            return Ok(x);
        }
        if f > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        let pdf = chi2_pdf(x, df);
        let newton = if pdf > 1e-300 { x - f / pdf } else { f64::NAN };
        x = if newton.is_finite() && newton > lo && newton < hi {
            newton
        } else {
            0.5 * (lo + hi)
        };
        if (hi - lo) < 1e-12 * (1.0 + hi.abs()) {
            return Ok(x);
        }
    }
    Err(MathError::NoConvergence {
        routine: "chi2_quantile",
        iterations: 200,
    })
}

/// Probability density function of the χ² distribution.
pub fn chi2_pdf(x: f64, df: f64) -> f64 {
    if x <= 0.0 || df <= 0.0 {
        return 0.0;
    }
    let half = df / 2.0;
    let ln_pdf = (half - 1.0) * x.ln()
        - x / 2.0
        - half * std::f64::consts::LN_2
        - crate::special::ln_gamma(half).unwrap_or(f64::INFINITY);
    ln_pdf.exp()
}

/// The paper's `B` factor (Section 2.3): the `α/r` **upper** percentile of
/// the χ² distribution with one degree of freedom, i.e. the value `B` such
/// that `Pr[χ²₁ > B] = α/r`.
///
/// `√B` is the multiplier that appears in the absolute-error bound of
/// Expression (5) and the relative-error bound of Expression (6), and is the
/// quantity plotted in Figure 1 for `α = 0.05`.
///
/// # Errors
/// Returns [`MathError::InvalidParameter`] when `alpha ∉ (0, 1]` or
/// `r == 0`.
pub fn b_factor(alpha: f64, r: usize) -> Result<f64, MathError> {
    if r == 0 {
        return Err(MathError::invalid(
            "r",
            "number of categories must be positive",
        ));
    }
    if !(alpha > 0.0 && alpha <= 1.0) {
        return Err(MathError::invalid(
            "alpha",
            format!("confidence level must lie in (0, 1], got {alpha}"),
        ));
    }
    let tail = alpha / r as f64;
    chi2_quantile(1.0 - tail, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn cdf_known_values() {
        // χ²₁: CDF(3.841458820694124) = 0.95
        assert_close(chi2_cdf(3.841_458_820_694_124, 1.0).unwrap(), 0.95, 1e-9);
        // χ²₂: CDF(x) = 1 − e^{−x/2}
        for &x in &[0.5, 1.0, 2.0, 5.991_464_547_107_979] {
            assert_close(chi2_cdf(x, 2.0).unwrap(), 1.0 - (-x / 2.0).exp(), 1e-12);
        }
        // χ²₅: 95th percentile is 11.0705
        assert_close(chi2_cdf(11.070_497_693_516_351, 5.0).unwrap(), 0.95, 1e-9);
    }

    #[test]
    fn sf_complements_cdf() {
        for &df in &[1.0, 2.0, 4.0, 10.0, 30.0] {
            for &x in &[0.0, 0.3, 1.0, 4.0, 12.0, 40.0] {
                let c = chi2_cdf(x, df).unwrap();
                let s = chi2_sf(x, df).unwrap();
                assert_close(c + s, 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn quantile_inverts_cdf_df1() {
        for &q in &[0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 0.999_99] {
            let x = chi2_quantile(q, 1.0).unwrap();
            assert_close(chi2_cdf(x, 1.0).unwrap(), q, 1e-9);
        }
    }

    #[test]
    fn quantile_inverts_cdf_general_df() {
        for &df in &[2.0, 3.0, 7.0, 15.0, 100.0] {
            for &q in &[0.05, 0.5, 0.9, 0.975, 0.999] {
                let x = chi2_quantile(q, df).unwrap();
                assert_close(chi2_cdf(x, df).unwrap(), q, 1e-9);
            }
        }
    }

    #[test]
    fn quantile_known_values() {
        // Standard table values.
        assert_close(
            chi2_quantile(0.95, 1.0).unwrap(),
            3.841_458_820_694_124,
            1e-7,
        );
        assert_close(
            chi2_quantile(0.95, 2.0).unwrap(),
            5.991_464_547_107_979,
            1e-7,
        );
        assert_close(
            chi2_quantile(0.99, 1.0).unwrap(),
            6.634_896_601_021_213,
            1e-7,
        );
        assert_close(
            chi2_quantile(0.975, 10.0).unwrap(),
            20.483_177_350_807_43,
            1e-6,
        );
        assert_close(chi2_quantile(0.0, 5.0).unwrap(), 0.0, 0.0);
    }

    #[test]
    fn quantile_rejects_invalid() {
        assert!(chi2_quantile(1.0, 1.0).is_err());
        assert!(chi2_quantile(-0.1, 1.0).is_err());
        assert!(chi2_quantile(0.5, 0.0).is_err());
        assert!(chi2_cdf(-1.0, 1.0).is_err());
        assert!(chi2_cdf(1.0, -1.0).is_err());
        assert!(chi2_sf(-1.0, 2.0).is_err());
    }

    #[test]
    fn b_factor_matches_figure_1_shape() {
        // Figure 1 of the paper plots √B against r for α = 0.05:
        // √B ≈ 2 at r = 2 and grows to ≈ 4.7–5.0 at r = 100 000.
        let alpha = 0.05;
        let sqrt_b_small = b_factor(alpha, 2).unwrap().sqrt();
        let sqrt_b_large = b_factor(alpha, 100_000).unwrap().sqrt();
        assert!(
            sqrt_b_small > 2.2 && sqrt_b_small < 2.4,
            "got {sqrt_b_small}"
        );
        assert!(
            sqrt_b_large > 4.5 && sqrt_b_large < 5.1,
            "got {sqrt_b_large}"
        );
        // Monotone increase in r.
        let mut prev = 0.0;
        for r in [2usize, 10, 100, 1_000, 10_000, 100_000] {
            let b = b_factor(alpha, r).unwrap();
            assert!(b > prev, "B must grow with r");
            prev = b;
        }
    }

    #[test]
    fn b_factor_r1_is_plain_alpha_percentile() {
        // With r = 1, B is the (1 − α) quantile of χ²₁.
        let b = b_factor(0.05, 1).unwrap();
        assert_close(b, 3.841_458_820_694_124, 1e-7);
    }

    #[test]
    fn b_factor_rejects_invalid() {
        assert!(b_factor(0.0, 10).is_err());
        assert!(b_factor(1.5, 10).is_err());
        assert!(b_factor(0.05, 0).is_err());
    }

    #[test]
    fn pdf_integrates_roughly_to_cdf() {
        // Trapezoidal integration of the pdf should approximate the cdf.
        let df = 3.0;
        let upper = 4.0;
        let steps = 40_000;
        let h = upper / steps as f64;
        let mut acc = 0.0;
        for i in 0..steps {
            let x0 = i as f64 * h;
            let x1 = x0 + h;
            acc += 0.5 * (chi2_pdf(x0, df) + chi2_pdf(x1, df)) * h;
        }
        assert_close(acc, chi2_cdf(upper, df).unwrap(), 1e-6);
    }
}
