//! Contingency tables, the χ² independence statistic and Cramér's V.
//!
//! Cramér's V (Expression (9) of the paper) is the dependence measure the
//! clustering Algorithm 1 uses whenever at least one of the two attributes
//! is nominal.  It is computed from the observed/expected counts of the
//! joint contingency table of the pair:
//!
//! ```text
//! V = sqrt( (χ² / n) / min(r_i − 1, r_j − 1) )
//! ```
//!
//! where `χ²` is Pearson's independence statistic.  `V` lies in `[0, 1]`
//! with 0 meaning complete independence and 1 complete dependence, so it is
//! directly comparable with |Pearson correlation| when mixing attribute
//! types inside the clustering algorithm.

use crate::error::MathError;

/// A two-way contingency table of observed counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ContingencyTable {
    rows: usize,
    cols: usize,
    /// Row-major observed counts.
    counts: Vec<f64>,
    total: f64,
}

impl ContingencyTable {
    /// Builds a table with the given category cardinalities, all counts zero.
    ///
    /// # Errors
    /// Returns [`MathError::InvalidParameter`] if either cardinality is zero.
    pub fn new(rows: usize, cols: usize) -> Result<Self, MathError> {
        if rows == 0 || cols == 0 {
            return Err(MathError::invalid(
                "dimensions",
                "contingency table must have at least one row and one column",
            ));
        }
        Ok(ContingencyTable {
            rows,
            cols,
            counts: vec![0.0; rows * cols],
            total: 0.0,
        })
    }

    /// Builds a table from paired category codes.  `xs[i]` and `ys[i]` are
    /// the category indices of record `i` for the two attributes; indices
    /// must be smaller than the declared cardinalities.
    ///
    /// # Errors
    /// * [`MathError::DimensionMismatch`] if the two columns differ in length.
    /// * [`MathError::InvalidParameter`] if a code is out of range or a
    ///   cardinality is zero.
    pub fn from_codes(
        xs: &[u32],
        ys: &[u32],
        x_card: usize,
        y_card: usize,
    ) -> Result<Self, MathError> {
        if xs.len() != ys.len() {
            return Err(MathError::DimensionMismatch {
                context: "contingency from_codes".to_string(),
                left: (xs.len(), 1),
                right: (ys.len(), 1),
            });
        }
        let mut table = ContingencyTable::new(x_card, y_card)?;
        for (&x, &y) in xs.iter().zip(ys.iter()) {
            table.add(x as usize, y as usize, 1.0)?;
        }
        Ok(table)
    }

    /// Builds a table from weighted paired category codes; `weights[i]` is
    /// the weight of record `i`.  This is the form used when computing
    /// dependences on an RR-Adjustment-weighted data set.
    ///
    /// # Errors
    /// Same conditions as [`ContingencyTable::from_codes`], plus a length
    /// check on `weights` and rejection of negative weights.
    pub fn from_weighted_codes(
        xs: &[u32],
        ys: &[u32],
        weights: &[f64],
        x_card: usize,
        y_card: usize,
    ) -> Result<Self, MathError> {
        if xs.len() != ys.len() || xs.len() != weights.len() {
            return Err(MathError::DimensionMismatch {
                context: "contingency from_weighted_codes".to_string(),
                left: (xs.len(), 1),
                right: (ys.len().max(weights.len()), 1),
            });
        }
        let mut table = ContingencyTable::new(x_card, y_card)?;
        for ((&x, &y), &w) in xs.iter().zip(ys.iter()).zip(weights.iter()) {
            if w < 0.0 {
                return Err(MathError::invalid(
                    "weights",
                    format!("weights must be non-negative, got {w}"),
                ));
            }
            table.add(x as usize, y as usize, w)?;
        }
        Ok(table)
    }

    /// Adds `weight` to cell `(row, col)`.
    ///
    /// # Errors
    /// Returns [`MathError::InvalidParameter`] if the indices are out of
    /// range.
    pub fn add(&mut self, row: usize, col: usize, weight: f64) -> Result<(), MathError> {
        if row >= self.rows || col >= self.cols {
            return Err(MathError::invalid(
                "cell",
                format!(
                    "cell ({row}, {col}) outside a {}x{} table",
                    self.rows, self.cols
                ),
            ));
        }
        self.counts[row * self.cols + col] += weight;
        self.total += weight;
        Ok(())
    }

    /// Number of row categories.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of column categories.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Observed count in cell `(row, col)`.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds.
    pub fn count(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.rows && col < self.cols,
            "contingency index out of bounds"
        );
        self.counts[row * self.cols + col]
    }

    /// Total observed count (sum over all cells).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Marginal totals of the row attribute.
    pub fn row_totals(&self) -> Vec<f64> {
        self.counts
            .chunks_exact(self.cols)
            .map(|row| row.iter().sum())
            .collect()
    }

    /// Marginal totals of the column attribute.
    pub fn col_totals(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for row in self.counts.chunks_exact(self.cols) {
            for (total, count) in out.iter_mut().zip(row) {
                *total += count;
            }
        }
        out
    }

    /// Expected count of cell `(row, col)` under the independence
    /// assumption: `e_ab = n_a · n_b / n` (the `e^{ij}_{ab}` of the paper).
    pub fn expected(&self, row: usize, col: usize) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        self.row_totals()[row] * self.col_totals()[col] / self.total
    }

    /// Pearson's χ² independence statistic
    /// `Σ_a Σ_b (o_ab − e_ab)² / e_ab`, with the convention that cells with
    /// zero expected count contribute nothing (both marginals are empty
    /// there, so the observed count is necessarily zero too).
    pub fn chi_squared_statistic(&self) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        let row_totals = self.row_totals();
        let col_totals = self.col_totals();
        let mut stat = 0.0;
        for (row_total, row) in row_totals.iter().zip(self.counts.chunks_exact(self.cols)) {
            for (col_total, observed) in col_totals.iter().zip(row) {
                let expected = row_total * col_total / self.total;
                if expected <= 0.0 {
                    continue;
                }
                let diff = observed - expected;
                stat += diff * diff / expected;
            }
        }
        stat
    }

    /// Cramér's V statistic (Expression (9) of the paper), in `[0, 1]`.
    ///
    /// Returns 0 when either attribute effectively has a single category
    /// (the `min(r−1, c−1)` normaliser would be zero): a constant attribute
    /// is independent of everything.
    pub fn cramers_v(&self) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        // Use the number of categories that actually appear; empty rows or
        // columns would otherwise deflate V on sparse tables.
        let effective_rows = self.row_totals().iter().filter(|&&t| t > 0.0).count();
        let effective_cols = self.col_totals().iter().filter(|&&t| t > 0.0).count();
        let denom_dim = effective_rows
            .saturating_sub(1)
            .min(effective_cols.saturating_sub(1));
        if denom_dim == 0 {
            return 0.0;
        }
        let chi2 = self.chi_squared_statistic();
        let v2 = (chi2 / self.total) / denom_dim as f64;
        v2.max(0.0).sqrt().min(1.0)
    }

    /// Degrees of freedom of the χ² independence test, `(rows−1)(cols−1)`.
    pub fn degrees_of_freedom(&self) -> usize {
        self.rows.saturating_sub(1) * self.cols.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn empty_dimensions_rejected() {
        assert!(ContingencyTable::new(0, 2).is_err());
        assert!(ContingencyTable::new(2, 0).is_err());
    }

    #[test]
    fn from_codes_counts_correctly() {
        let xs = [0u32, 0, 1, 1, 1];
        let ys = [0u32, 1, 0, 1, 1];
        let t = ContingencyTable::from_codes(&xs, &ys, 2, 2).unwrap();
        assert_eq!(t.count(0, 0), 1.0);
        assert_eq!(t.count(0, 1), 1.0);
        assert_eq!(t.count(1, 0), 1.0);
        assert_eq!(t.count(1, 1), 2.0);
        assert_eq!(t.total(), 5.0);
        assert_eq!(t.row_totals(), vec![2.0, 3.0]);
        assert_eq!(t.col_totals(), vec![2.0, 3.0]);
    }

    #[test]
    fn from_codes_validates() {
        assert!(ContingencyTable::from_codes(&[0, 1], &[0], 2, 2).is_err());
        assert!(ContingencyTable::from_codes(&[0, 5], &[0, 1], 2, 2).is_err());
    }

    #[test]
    fn weighted_codes_validates_and_counts() {
        let xs = [0u32, 1];
        let ys = [0u32, 1];
        let t = ContingencyTable::from_weighted_codes(&xs, &ys, &[0.25, 0.75], 2, 2).unwrap();
        assert_close(t.count(0, 0), 0.25, 1e-15);
        assert_close(t.count(1, 1), 0.75, 1e-15);
        assert_close(t.total(), 1.0, 1e-15);

        assert!(ContingencyTable::from_weighted_codes(&xs, &ys, &[0.5], 2, 2).is_err());
        assert!(ContingencyTable::from_weighted_codes(&xs, &ys, &[0.5, -0.1], 2, 2).is_err());
    }

    #[test]
    fn chi_squared_independent_table_is_zero() {
        // Perfectly independent 2x2 table: counts proportional to marginals.
        let mut t = ContingencyTable::new(2, 2).unwrap();
        t.add(0, 0, 10.0).unwrap();
        t.add(0, 1, 30.0).unwrap();
        t.add(1, 0, 20.0).unwrap();
        t.add(1, 1, 60.0).unwrap();
        assert_close(t.chi_squared_statistic(), 0.0, 1e-10);
        assert_close(t.cramers_v(), 0.0, 1e-6);
    }

    #[test]
    fn chi_squared_known_value() {
        // Classic textbook example (gender × handedness):
        //        right  left
        // male     43     9
        // female   44     4
        // χ² ≈ 1.7774, n = 100.
        let mut t = ContingencyTable::new(2, 2).unwrap();
        t.add(0, 0, 43.0).unwrap();
        t.add(0, 1, 9.0).unwrap();
        t.add(1, 0, 44.0).unwrap();
        t.add(1, 1, 4.0).unwrap();
        let expected = 5.0176 / 45.24 + 5.0176 / 6.76 + 5.0176 / 41.76 + 5.0176 / 6.24;
        assert_close(t.chi_squared_statistic(), expected, 1e-9);
        assert_close(t.cramers_v(), (expected / 100.0).sqrt(), 1e-9);
    }

    #[test]
    fn cramers_v_perfect_dependence_is_one() {
        // Diagonal table: each x value maps to exactly one y value.
        let xs = [0u32, 0, 1, 1, 2, 2];
        let ys = [0u32, 0, 1, 1, 2, 2];
        let t = ContingencyTable::from_codes(&xs, &ys, 3, 3).unwrap();
        assert_close(t.cramers_v(), 1.0, 1e-12);
    }

    #[test]
    fn cramers_v_is_bounded_and_symmetric_in_attribute_order() {
        let xs = [0u32, 1, 2, 0, 1, 2, 0, 1, 0, 2, 2, 1];
        let ys = [1u32, 0, 1, 1, 0, 0, 1, 1, 0, 1, 0, 0];
        let t_xy = ContingencyTable::from_codes(&xs, &ys, 3, 2).unwrap();
        let t_yx = ContingencyTable::from_codes(&ys, &xs, 2, 3).unwrap();
        let v_xy = t_xy.cramers_v();
        let v_yx = t_yx.cramers_v();
        assert!((0.0..=1.0).contains(&v_xy));
        assert_close(v_xy, v_yx, 1e-12);
    }

    #[test]
    fn constant_attribute_gives_zero_v() {
        let xs = [0u32, 0, 0, 0];
        let ys = [0u32, 1, 0, 1];
        let t = ContingencyTable::from_codes(&xs, &ys, 1, 2).unwrap();
        assert_eq!(t.cramers_v(), 0.0);
    }

    #[test]
    fn empty_table_statistics_are_zero() {
        let t = ContingencyTable::new(3, 3).unwrap();
        assert_eq!(t.chi_squared_statistic(), 0.0);
        assert_eq!(t.cramers_v(), 0.0);
        assert_eq!(t.expected(0, 0), 0.0);
    }

    #[test]
    fn expected_counts_match_formula() {
        let mut t = ContingencyTable::new(2, 2).unwrap();
        t.add(0, 0, 10.0).unwrap();
        t.add(0, 1, 20.0).unwrap();
        t.add(1, 0, 30.0).unwrap();
        t.add(1, 1, 40.0).unwrap();
        // e(0,0) = 30 * 40 / 100 = 12
        assert_close(t.expected(0, 0), 12.0, 1e-12);
        assert_close(t.expected(1, 1), 70.0 * 60.0 / 100.0, 1e-12);
    }

    #[test]
    fn degrees_of_freedom() {
        let t = ContingencyTable::new(4, 3).unwrap();
        assert_eq!(t.degrees_of_freedom(), 6);
    }

    #[test]
    fn add_out_of_range_rejected() {
        let mut t = ContingencyTable::new(2, 2).unwrap();
        assert!(t.add(2, 0, 1.0).is_err());
        assert!(t.add(0, 2, 1.0).is_err());
    }
}
