//! Special functions needed by the estimation-error bounds of the paper.
//!
//! The paper's Section 2.3 expresses the absolute and relative error of the
//! randomized-frequency estimate in terms of the `α/r` upper percentile of a
//! χ² distribution with one degree of freedom (the `B` factor of
//! Expressions (5) and (6), plotted in Figure 1).  Computing that percentile
//! requires the regularized incomplete gamma function and its inverse, which
//! in turn require `ln Γ`.  The error function / normal quantile are provided
//! both because χ²₁ quantiles have a closed form through the normal quantile
//! (`χ²₁(q) = Φ⁻¹((1+q)/2)²`, used as a fast path and as a cross-check in
//! tests) and because downstream confidence-interval utilities need them.
//!
//! All routines are implemented from scratch with well-known, documented
//! approximations (Lanczos for `ln Γ`, series/continued fraction for the
//! incomplete gamma, Abramowitz–Stegun 7.1.26-class rational approximations
//! for `erf`, Acklam's rational approximation refined with one Halley step
//! for the normal quantile).  Accuracies are on the order of 1e-9 or better
//! over the parameter ranges used by the library, which is far below the
//! statistical noise of any randomized-response experiment.

use crate::error::MathError;

/// Lanczos coefficients (g = 7, n = 9), giving ~15 significant digits for
/// `ln Γ` on the positive real axis.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEFFS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function `ln Γ(x)` for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for arguments below 0.5.
///
/// # Errors
/// Returns [`MathError::InvalidParameter`] for non-finite or non-positive
/// arguments.
pub fn ln_gamma(x: f64) -> Result<f64, MathError> {
    if !x.is_finite() || x <= 0.0 {
        return Err(MathError::invalid(
            "x",
            format!("ln_gamma requires x > 0, got {x}"),
        ));
    }
    Ok(ln_gamma_unchecked(x))
}

fn ln_gamma_unchecked(x: f64) -> f64 {
    if x < 0.5 {
        // Reflection formula: Γ(x) Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma_unchecked(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEFFS[0];
    for (i, &c) in LANCZOS_COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, ·)` is the CDF of a Gamma(a, 1) random variable; the χ² CDF in
/// [`crate::chi2`] is a thin wrapper over it.
///
/// # Errors
/// Returns [`MathError::InvalidParameter`] when `a <= 0` or `x < 0`, and
/// [`MathError::NoConvergence`] if the series/continued fraction fails to
/// converge (does not happen for sane arguments).
pub fn regularized_gamma_p(a: f64, x: f64) -> Result<f64, MathError> {
    if !a.is_finite() || a <= 0.0 {
        return Err(MathError::invalid(
            "a",
            format!("shape must be positive, got {a}"),
        ));
    }
    if !x.is_finite() || x < 0.0 {
        return Err(MathError::invalid(
            "x",
            format!("argument must be non-negative, got {x}"),
        ));
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        // Series representation converges quickly here.
        gamma_p_series(a, x)
    } else {
        // Continued fraction for Q(a, x); P = 1 − Q.
        Ok(1.0 - gamma_q_continued_fraction(a, x)?)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
///
/// # Errors
/// Same conditions as [`regularized_gamma_p`].
pub fn regularized_gamma_q(a: f64, x: f64) -> Result<f64, MathError> {
    if !a.is_finite() || a <= 0.0 {
        return Err(MathError::invalid(
            "a",
            format!("shape must be positive, got {a}"),
        ));
    }
    if !x.is_finite() || x < 0.0 {
        return Err(MathError::invalid(
            "x",
            format!("argument must be non-negative, got {x}"),
        ));
    }
    if x == 0.0 {
        return Ok(1.0);
    }
    if x < a + 1.0 {
        Ok(1.0 - gamma_p_series(a, x)?)
    } else {
        gamma_q_continued_fraction(a, x)
    }
}

const MAX_ITERATIONS: usize = 500;
const EPS: f64 = 1e-15;
const FPMIN: f64 = 1e-300;

fn gamma_p_series(a: f64, x: f64) -> Result<f64, MathError> {
    let ln_ga = ln_gamma_unchecked(a);
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..MAX_ITERATIONS {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            return Ok(sum * (-x + a * x.ln() - ln_ga).exp());
        }
    }
    Err(MathError::NoConvergence {
        routine: "regularized_gamma_p (series)",
        iterations: MAX_ITERATIONS,
    })
}

fn gamma_q_continued_fraction(a: f64, x: f64) -> Result<f64, MathError> {
    let ln_ga = ln_gamma_unchecked(a);
    // Modified Lentz's method for the continued fraction of Q(a, x).
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITERATIONS {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            return Ok((-x + a * x.ln() - ln_ga).exp() * h);
        }
    }
    Err(MathError::NoConvergence {
        routine: "regularized_gamma_q (continued fraction)",
        iterations: MAX_ITERATIONS,
    })
}

/// Error function `erf(x)`, accurate to ~1e-15 via the incomplete gamma
/// identity `erf(x) = sign(x) · P(1/2, x²)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    // P(1/2, x²) never errors for finite x: shape 0.5 > 0, argument >= 0.
    let p = regularized_gamma_p(0.5, x * x).unwrap_or(1.0);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`, computed without
/// cancellation for large positive arguments.
pub fn erfc(x: f64) -> f64 {
    if x == 0.0 {
        return 1.0;
    }
    if x > 0.0 {
        regularized_gamma_q(0.5, x * x).unwrap_or(0.0)
    } else {
        1.0 + regularized_gamma_p(0.5, x * x).unwrap_or(1.0)
    }
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile function `Φ⁻¹(p)` for `p ∈ (0, 1)`.
///
/// Uses Acklam's rational approximation followed by a single Halley
/// refinement step, giving roughly 1e-15 relative accuracy.
///
/// # Errors
/// Returns [`MathError::InvalidParameter`] when `p` lies outside `(0, 1)`.
pub fn normal_quantile(p: f64) -> Result<f64, MathError> {
    if !(p > 0.0 && p < 1.0) {
        return Err(MathError::invalid(
            "p",
            format!("probability must lie in (0, 1), got {p}"),
        ));
    }

    // Coefficients of Acklam's approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step using the exact CDF computed above.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    Ok(x - u / (1.0 + x * u / 2.0))
}

/// Probability density function of the standard normal distribution.
pub fn normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert_close(ln_gamma(1.0).unwrap(), 0.0, 1e-12);
        assert_close(ln_gamma(2.0).unwrap(), 0.0, 1e-12);
        assert_close(ln_gamma(5.0).unwrap(), 24.0f64.ln(), 1e-12);
        assert_close(
            ln_gamma(0.5).unwrap(),
            std::f64::consts::PI.sqrt().ln(),
            1e-12,
        );
        // Γ(10) = 362880
        assert_close(ln_gamma(10.0).unwrap(), 362_880.0f64.ln(), 1e-10);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // ln Γ(x + 1) = ln Γ(x) + ln x
        for &x in &[0.3, 1.7, 4.2, 12.9, 100.5] {
            let lhs = ln_gamma(x + 1.0).unwrap();
            let rhs = ln_gamma(x).unwrap() + x.ln();
            assert_close(lhs, rhs, 1e-10);
        }
    }

    #[test]
    fn ln_gamma_rejects_invalid() {
        assert!(ln_gamma(0.0).is_err());
        assert!(ln_gamma(-1.5).is_err());
        assert!(ln_gamma(f64::NAN).is_err());
    }

    #[test]
    fn incomplete_gamma_boundaries() {
        assert_close(regularized_gamma_p(1.0, 0.0).unwrap(), 0.0, 0.0);
        assert_close(regularized_gamma_q(1.0, 0.0).unwrap(), 1.0, 0.0);
        // For a = 1, P(1, x) = 1 − e^{−x}.
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            assert_close(
                regularized_gamma_p(1.0, x).unwrap(),
                1.0 - (-x).exp(),
                1e-12,
            );
        }
    }

    #[test]
    fn incomplete_gamma_complementarity() {
        for &a in &[0.5, 1.0, 2.5, 7.0, 30.0] {
            for &x in &[0.01, 0.5, 1.0, 2.0, 5.0, 20.0, 60.0] {
                let p = regularized_gamma_p(a, x).unwrap();
                let q = regularized_gamma_q(a, x).unwrap();
                assert_close(p + q, 1.0, 1e-12);
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn incomplete_gamma_rejects_invalid() {
        assert!(regularized_gamma_p(0.0, 1.0).is_err());
        assert!(regularized_gamma_p(-1.0, 1.0).is_err());
        assert!(regularized_gamma_p(1.0, -0.5).is_err());
        assert!(regularized_gamma_q(0.0, 1.0).is_err());
        assert!(regularized_gamma_q(1.0, -0.5).is_err());
    }

    #[test]
    fn erf_known_values() {
        // Reference values from Abramowitz & Stegun.
        assert_close(erf(0.0), 0.0, 0.0);
        assert_close(erf(0.5), 0.520_499_877_813_046_5, 1e-10);
        assert_close(erf(1.0), 0.842_700_792_949_714_9, 1e-10);
        assert_close(erf(2.0), 0.995_322_265_018_952_7, 1e-10);
        assert_close(erf(-1.0), -0.842_700_792_949_714_9, 1e-10);
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-3.0, -1.0, -0.2, 0.0, 0.4, 1.5, 4.0] {
            assert_close(erf(x) + erfc(x), 1.0, 1e-12);
        }
        // Far tail keeps precision (no catastrophic cancellation).
        assert!(erfc(6.0) > 0.0);
        assert!(erfc(6.0) < 1e-15);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert_close(normal_cdf(0.0), 0.5, 1e-15);
        assert_close(normal_cdf(1.959_963_984_540_054), 0.975, 1e-10);
        assert_close(normal_cdf(-1.959_963_984_540_054), 0.025, 1e-10);
        assert_close(normal_cdf(3.0), 0.998_650_101_968_369_9, 1e-10);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[1e-6, 0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999, 1.0 - 1e-6] {
            let x = normal_quantile(p).unwrap();
            assert_close(normal_cdf(x), p, 1e-10);
        }
    }

    #[test]
    fn normal_quantile_known_values() {
        assert_close(normal_quantile(0.5).unwrap(), 0.0, 1e-12);
        assert_close(normal_quantile(0.975).unwrap(), 1.959_963_984_540_054, 1e-9);
        assert_close(normal_quantile(0.995).unwrap(), 2.575_829_303_548_901, 1e-9);
    }

    #[test]
    fn normal_quantile_rejects_invalid() {
        assert!(normal_quantile(0.0).is_err());
        assert!(normal_quantile(1.0).is_err());
        assert!(normal_quantile(-0.2).is_err());
        assert!(normal_quantile(f64::NAN).is_err());
    }

    #[test]
    fn normal_pdf_is_symmetric_and_normalized_at_zero() {
        assert_close(
            normal_pdf(0.0),
            1.0 / (2.0 * std::f64::consts::PI).sqrt(),
            1e-15,
        );
        assert_close(normal_pdf(1.3), normal_pdf(-1.3), 1e-15);
    }
}
