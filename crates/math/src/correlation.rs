//! Sample moments and correlation.
//!
//! These are the ordinal/numerical dependence measures used by the
//! attribute-clustering Algorithm 1 of the paper: the absolute value of
//! Pearson's correlation coefficient (Expression (8)) and the covariance
//! analysed in Proposition 1 / Corollary 1 (Section 4.1), which shows that
//! uniform-keep randomization attenuates the covariance by `p_a · p_b` but
//! preserves the relative ordering of covariances between attribute pairs.

use crate::error::MathError;

/// Arithmetic mean of a sample.
///
/// # Errors
/// Returns [`MathError::InvalidParameter`] when the sample is empty.
pub fn mean(sample: &[f64]) -> Result<f64, MathError> {
    if sample.is_empty() {
        return Err(MathError::invalid(
            "sample",
            "mean of an empty sample is undefined",
        ));
    }
    Ok(sample.iter().sum::<f64>() / sample.len() as f64)
}

/// Population variance (normalised by `n`) of a sample.
///
/// The paper treats each attribute's empirical distribution as the law of a
/// random variable, so population (not Bessel-corrected) moments are the
/// natural choice; tests exercise both conventions where it matters.
///
/// # Errors
/// Returns [`MathError::InvalidParameter`] when the sample is empty.
pub fn variance(sample: &[f64]) -> Result<f64, MathError> {
    let m = mean(sample)?;
    Ok(sample.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / sample.len() as f64)
}

/// Population covariance (normalised by `n`) of two equally long samples.
///
/// # Errors
/// Returns [`MathError::InvalidParameter`] when the samples are empty and
/// [`MathError::DimensionMismatch`] when their lengths differ.
pub fn covariance(xs: &[f64], ys: &[f64]) -> Result<f64, MathError> {
    if xs.is_empty() || ys.is_empty() {
        return Err(MathError::invalid(
            "sample",
            "covariance of an empty sample is undefined",
        ));
    }
    if xs.len() != ys.len() {
        return Err(MathError::DimensionMismatch {
            context: "covariance".to_string(),
            left: (xs.len(), 1),
            right: (ys.len(), 1),
        });
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let acc: f64 = xs
        .iter()
        .zip(ys.iter())
        .map(|(x, y)| (x - mx) * (y - my))
        .sum();
    Ok(acc / xs.len() as f64)
}

/// Pearson's correlation coefficient between two equally long samples.
///
/// Returns 0 when either sample is constant (zero variance); this matches
/// how the clustering algorithm treats attributes that carry no signal —
/// they cannot be meaningfully clustered with anything.
///
/// # Errors
/// Same conditions as [`covariance`].
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> Result<f64, MathError> {
    let cov = covariance(xs, ys)?;
    let vx = variance(xs)?;
    let vy = variance(ys)?;
    if vx <= 0.0 || vy <= 0.0 {
        return Ok(0.0);
    }
    Ok(cov / (vx.sqrt() * vy.sqrt()))
}

/// Pearson correlation between two *categorical columns encoded as ordinal
/// codes* (`u32` category indices).  This is the form in which the dataset
/// layer stores attributes, so the protocols can call this without
/// materialising `f64` copies at every call site.
///
/// # Errors
/// Same conditions as [`covariance`].
pub fn pearson_correlation_codes(xs: &[u32], ys: &[u32]) -> Result<f64, MathError> {
    let xf: Vec<f64> = xs.iter().map(|&v| v as f64).collect();
    let yf: Vec<f64> = ys.iter().map(|&v| v as f64).collect();
    pearson_correlation(&xf, &yf)
}

/// Covariance between two categorical columns encoded as ordinal codes.
///
/// # Errors
/// Same conditions as [`covariance`].
pub fn covariance_codes(xs: &[u32], ys: &[u32]) -> Result<f64, MathError> {
    let xf: Vec<f64> = xs.iter().map(|&v| v as f64).collect();
    let yf: Vec<f64> = ys.iter().map(|&v| v as f64).collect();
    covariance(&xf, &yf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn mean_and_variance_known_values() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_close(mean(&xs).unwrap(), 5.0, 1e-12);
        assert_close(variance(&xs).unwrap(), 4.0, 1e-12);
    }

    #[test]
    fn empty_samples_are_rejected() {
        assert!(mean(&[]).is_err());
        assert!(variance(&[]).is_err());
        assert!(covariance(&[], &[]).is_err());
        assert!(pearson_correlation(&[], &[]).is_err());
    }

    #[test]
    fn covariance_of_identical_samples_is_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        assert_close(covariance(&xs, &xs).unwrap(), variance(&xs).unwrap(), 1e-12);
    }

    #[test]
    fn covariance_mismatched_lengths() {
        assert!(covariance(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn covariance_sign() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys_pos = [2.0, 4.0, 6.0, 8.0];
        let ys_neg = [8.0, 6.0, 4.0, 2.0];
        assert!(covariance(&xs, &ys_pos).unwrap() > 0.0);
        assert!(covariance(&xs, &ys_neg).unwrap() < 0.0);
    }

    #[test]
    fn perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 7.0).collect();
        assert_close(pearson_correlation(&xs, &ys).unwrap(), 1.0, 1e-12);
        let ys_neg: Vec<f64> = xs.iter().map(|x| -2.0 * x + 1.0).collect();
        assert_close(pearson_correlation(&xs, &ys_neg).unwrap(), -1.0, 1e-12);
    }

    #[test]
    fn independent_samples_have_near_zero_correlation() {
        // A balanced, exactly orthogonal design.
        let xs = [0.0, 0.0, 1.0, 1.0];
        let ys = [0.0, 1.0, 0.0, 1.0];
        assert_close(pearson_correlation(&xs, &ys).unwrap(), 0.0, 1e-12);
    }

    #[test]
    fn constant_sample_has_zero_correlation() {
        let xs = [5.0, 5.0, 5.0];
        let ys = [1.0, 2.0, 3.0];
        assert_close(pearson_correlation(&xs, &ys).unwrap(), 0.0, 0.0);
    }

    #[test]
    fn correlation_is_bounded() {
        let xs = [1.0, 5.0, 2.0, 8.0, 4.0, 9.0, 0.5];
        let ys = [2.0, 4.0, 1.0, 9.0, 5.0, 7.0, 1.5];
        let r = pearson_correlation(&xs, &ys).unwrap();
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn code_helpers_match_f64_path() {
        let xs = [0u32, 1, 2, 3, 1, 0];
        let ys = [1u32, 1, 3, 4, 2, 0];
        let xf: Vec<f64> = xs.iter().map(|&v| v as f64).collect();
        let yf: Vec<f64> = ys.iter().map(|&v| v as f64).collect();
        assert_close(
            pearson_correlation_codes(&xs, &ys).unwrap(),
            pearson_correlation(&xf, &yf).unwrap(),
            1e-15,
        );
        assert_close(
            covariance_codes(&xs, &ys).unwrap(),
            covariance(&xf, &yf).unwrap(),
            1e-15,
        );
    }

    #[test]
    fn correlation_invariant_to_affine_transform() {
        let xs = [1.0, 4.0, 2.0, 7.0, 5.0];
        let ys = [3.0, 8.0, 4.0, 9.0, 6.0];
        let base = pearson_correlation(&xs, &ys).unwrap();
        let xs2: Vec<f64> = xs.iter().map(|x| 10.0 * x - 3.0).collect();
        let ys2: Vec<f64> = ys.iter().map(|y| 0.5 * y + 100.0).collect();
        assert_close(pearson_correlation(&xs2, &ys2).unwrap(), base, 1e-12);
    }
}
