//! A small dense, row-major `f64` matrix.
//!
//! The randomized-response machinery only needs square matrices of moderate
//! size (the largest cluster domains in the paper's experiments are a few
//! hundred categories), so a straightforward contiguous `Vec<f64>` storage
//! with `O(n³)` kernels is both simple and fast enough.  Hot paths that
//! matter for the protocols (inverting the structured randomization
//! matrices) use closed forms in [`crate::linsolve`] instead of the generic
//! kernels.

use crate::error::MathError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense row-major matrix of `f64` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    ///
    /// # Panics
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        // lint:allow(panic-reachability, reason = "documented overflow guard; dimensions reaching this from the release path are validated channel sizes whose square fits a Vec long before rows*cols can overflow usize")
        let len = rows.checked_mul(cols).expect("matrix dimensions overflow");
        Matrix {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix where every entry equals `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        let len = rows.checked_mul(cols).expect("matrix dimensions overflow");
        Matrix {
            rows,
            cols,
            data: vec![value; len],
        }
    }

    /// Creates a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Creates a matrix from row slices.  All rows must have equal length.
    ///
    /// # Errors
    /// Returns [`MathError::DimensionMismatch`] if rows have differing
    /// lengths, or [`MathError::InvalidParameter`] if `rows` is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, MathError> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(MathError::invalid(
                "rows",
                "matrix must have at least one row",
            ));
        }
        let ncols = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(MathError::DimensionMismatch {
                    context: format!("from_rows (row {i})"),
                    left: (1, ncols),
                    right: (1, r.len()),
                });
            }
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns the entry at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.cols + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.cols + col] = value;
    }

    /// Returns the row as a slice.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Returns the row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        assert!(row < self.rows, "row index out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Returns a copy of the column.
    pub fn column(&self, col: usize) -> Vec<f64> {
        assert!(col < self.cols, "column index out of bounds");
        (0..self.rows).map(|i| self.get(i, col)).collect()
    }

    /// Returns the diagonal entries of a square matrix.
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Immutable view of the backing storage (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Matrix–matrix product `self * other`.
    ///
    /// # Errors
    /// Returns [`MathError::DimensionMismatch`] if the inner dimensions do
    /// not agree.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, MathError> {
        if self.cols != other.rows {
            return Err(MathError::DimensionMismatch {
                context: "matmul".to_string(),
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop contiguous in both `other`
        // and `out`, which matters once cluster domains reach a few hundred
        // categories.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let other_row = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(other_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    /// Returns [`MathError::DimensionMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, MathError> {
        if v.len() != self.cols {
            return Err(MathError::DimensionMismatch {
                context: "matvec".to_string(),
                left: (self.rows, self.cols),
                right: (v.len(), 1),
            });
        }
        let mut out = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v.iter()) {
                acc += a * b;
            }
            out.push(acc);
        }
        Ok(out)
    }

    /// Vector–matrix product `vᵀ * self`, returned as a flat vector.
    ///
    /// Equivalent to `self.transpose().matvec(v)` but without materialising
    /// the transpose; this is the shape used when propagating a true
    /// distribution through a randomization matrix (`λ = Pᵀ π`).
    ///
    /// # Errors
    /// Returns [`MathError::DimensionMismatch`] if `v.len() != self.rows()`.
    pub fn vecmat(&self, v: &[f64]) -> Result<Vec<f64>, MathError> {
        if v.len() != self.rows {
            return Err(MathError::DimensionMismatch {
                context: "vecmat".to_string(),
                left: (1, v.len()),
                right: (self.rows, self.cols),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i).iter()) {
                *o += vi * a;
            }
        }
        Ok(out)
    }

    /// Scales every entry by `factor`, in place.
    pub fn scale(&mut self, factor: f64) {
        for x in &mut self.data {
            *x *= factor;
        }
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Errors
    /// Returns [`MathError::DimensionMismatch`] if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, MathError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(MathError::DimensionMismatch {
                context: "add".to_string(),
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Maximum absolute difference between two matrices of equal shape.
    ///
    /// # Errors
    /// Returns [`MathError::DimensionMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f64, MathError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(MathError::DimensionMismatch {
                context: "max_abs_diff".to_string(),
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }

    /// Whether every entry of `self` is within `tol` of the corresponding
    /// entry of `other`.  Matrices of different shapes are never
    /// approximately equal.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        if self.rows != other.rows || self.cols != other.cols {
            return false;
        }
        self.max_abs_diff(other).map(|d| d <= tol).unwrap_or(false)
    }

    /// Whether the matrix is row-stochastic: all entries lie in `[0, 1]`
    /// (within `tol`) and every row sums to 1 (within `tol`).
    pub fn is_row_stochastic(&self, tol: f64) -> bool {
        for i in 0..self.rows {
            let mut sum = 0.0;
            for &x in self.row(i) {
                if x < -tol || x > 1.0 + tol {
                    return false;
                }
                sum += x;
            }
            if (sum - 1.0).abs() > tol {
                return false;
            }
        }
        true
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            let row: Vec<String> = self.row(i).iter().map(|x| format!("{x:.6}")).collect();
            writeln!(f, "[{}]", row.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert_eq!(z.sum(), 0.0);

        let i = Matrix::identity(3);
        assert!(i.is_square());
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn from_rows_validates_shape() {
        let ok = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(ok.get(1, 0), 3.0);

        let ragged = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
        assert!(matches!(ragged, Err(MathError::DimensionMismatch { .. })));

        let empty = Matrix::from_rows(&[]);
        assert!(matches!(empty, Err(MathError::InvalidParameter { .. })));
    }

    #[test]
    fn from_diagonal_places_entries() {
        let d = Matrix::from_diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(1, 1), 2.0);
        assert_eq!(d.get(2, 2), 3.0);
        assert_eq!(d.get(0, 1), 0.0);
        assert_eq!(d.diagonal(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]).unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert!(a.matmul(&i).unwrap().approx_eq(&a, 1e-12));
        assert!(i.matmul(&a).unwrap().approx_eq(&a, 1e-12));
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(MathError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn matvec_and_vecmat() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert_eq!(m.vecmat(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);

        // vecmat(v) == transpose().matvec(v)
        let via_t = m.transpose().matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(m.vecmat(&[1.0, 1.0]).unwrap(), via_t);

        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.vecmat(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn row_stochastic_detection() {
        let p = Matrix::from_rows(&[vec![0.7, 0.3], vec![0.2, 0.8]]).unwrap();
        assert!(p.is_row_stochastic(1e-12));

        let not_normalized = Matrix::from_rows(&[vec![0.7, 0.2], vec![0.2, 0.8]]).unwrap();
        assert!(!not_normalized.is_row_stochastic(1e-12));

        let negative = Matrix::from_rows(&[vec![1.2, -0.2], vec![0.2, 0.8]]).unwrap();
        assert!(!negative.is_row_stochastic(1e-12));
    }

    #[test]
    fn scale_and_add() {
        let mut m = Matrix::identity(2);
        m.scale(3.0);
        assert_eq!(m.get(0, 0), 3.0);
        let s = m.add(&Matrix::identity(2)).unwrap();
        assert_eq!(s.get(0, 0), 4.0);
        assert_eq!(s.get(0, 1), 0.0);
        assert!(m.add(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn column_extraction() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.column(1), vec![2.0, 4.0]);
    }

    #[test]
    fn frobenius_norm_known_value() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_readable() {
        let m = Matrix::identity(2);
        let text = format!("{m}");
        assert!(text.contains("1.000000"));
        assert!(text.lines().count() >= 2);
    }

    #[test]
    fn approx_eq_shape_mismatch_is_false() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(!a.approx_eq(&b, 1.0));
    }
}
