//! # mdrr-math
//!
//! Numerical substrate for the multi-dimensional randomized-response (MDRR)
//! library.  Everything in this crate is implemented from scratch on top of
//! `std`, because the MDRR protocols only need a narrow, well-understood
//! slice of numerical computing:
//!
//! * dense linear algebra over `f64` ([`Matrix`], Gauss–Jordan inversion,
//!   and the closed-form inverse of `aI + bJ` matrices that every optimal
//!   randomization matrix has) — used by the unbiased frequency estimator
//!   `π̂ = (Pᵀ)⁻¹ λ̂` of the paper's Equation (2);
//! * special functions (ln-gamma, regularized incomplete gamma, error
//!   function, normal and χ² quantiles) — used by the estimation-error
//!   bounds of Section 2.3 (Definitions 1–2, Expressions 5–6, Figure 1);
//! * contingency statistics (χ² independence statistic, Cramér's V,
//!   Pearson correlation, covariance) — the dependence measures fed to the
//!   attribute-clustering Algorithm 1;
//! * probability-vector utilities (simplex projection, distances) — the
//!   paper's Section 6.4 post-processing of improper estimates.
//!
//! The crate is deliberately free of `unsafe` and free of heavyweight
//! dependencies so it can be audited in isolation.
//!
//! ## Example
//!
//! Invert a uniform-perturbation randomization matrix and project an
//! improper estimate back onto the simplex:
//!
//! ```
//! use mdrr_math::{project_clamp_rescale, is_probability_vector, Matrix};
//! use mdrr_math::linsolve::invert;
//!
//! // P = 0.7·I + 0.1·J is the "keep with probability 0.7" matrix on 3
//! // categories; its inverse recovers true frequencies from reported ones.
//! let p = Matrix::from_fn(3, 3, |i, j| if i == j { 0.8 } else { 0.1 });
//! let p_inv = invert(&p)?;
//! let product = p.matmul(&p_inv)?;
//! assert!(product.approx_eq(&Matrix::identity(3), 1e-10));
//!
//! // Estimates leaving the simplex are clamped and rescaled (Section 6.4).
//! let proper = project_clamp_rescale(&[0.8, 0.3, -0.1])?;
//! assert!(is_probability_vector(&proper, 1e-12));
//! # Ok::<(), mdrr_math::MathError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chi2;
pub mod contingency;
pub mod correlation;
pub mod error;
pub mod linsolve;
pub mod matrix;
pub mod simplex;
pub mod special;

pub use chi2::{b_factor, chi2_cdf, chi2_quantile, chi2_sf};
pub use contingency::ContingencyTable;
pub use correlation::{covariance, mean, pearson_correlation, variance};
pub use error::MathError;
pub use matrix::Matrix;
pub use simplex::{
    is_probability_vector, l1_distance, l2_distance, project_clamp_rescale,
    total_variation_distance,
};
pub use special::{erf, erfc, ln_gamma, normal_cdf, normal_quantile, regularized_gamma_p};

/// Default absolute tolerance used across the crate when comparing floats
/// that should be exactly equal in exact arithmetic (row sums of stochastic
/// matrices, probability totals, …).
pub const DEFAULT_TOLERANCE: f64 = 1e-9;
