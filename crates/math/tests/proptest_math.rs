//! Property-based tests for the numerical substrate.
//!
//! These complement the unit tests inside each module with randomized
//! invariants: inversion round-trips, probability-vector closure of the
//! simplex projection, bounds on the dependence statistics, and consistency
//! between the closed-form and general linear-algebra paths.

use mdrr_math::linsolve::{invert, invert_uniform_perturbation, solve, solve_uniform_perturbation};
use mdrr_math::{
    b_factor, chi2_cdf, chi2_quantile, is_probability_vector, normal_cdf, normal_quantile,
    pearson_correlation, project_clamp_rescale, ContingencyTable, Matrix,
};
use proptest::prelude::*;

/// Strategy producing a "keep with probability p, otherwise uniform"
/// randomization matrix together with its `(a, b)` decomposition.
fn rr_matrix_strategy() -> impl Strategy<Value = (Matrix, f64, f64, usize)> {
    (2usize..20, 0.05f64..0.95).prop_map(|(r, p)| {
        let b = (1.0 - p) / r as f64;
        let a = p;
        let m = Matrix::from_fn(r, r, |i, j| if i == j { a + b } else { b });
        (m, a, b, r)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn inversion_roundtrips_to_identity((m, _a, _b, r) in rr_matrix_strategy()) {
        let inv = invert(&m).unwrap();
        let prod = m.matmul(&inv).unwrap();
        prop_assert!(prod.approx_eq(&Matrix::identity(r), 1e-8));
    }

    #[test]
    fn closed_form_inverse_matches_general((m, a, b, r) in rr_matrix_strategy()) {
        let closed = invert_uniform_perturbation(a, b, r).unwrap();
        let general = invert(&m).unwrap();
        prop_assert!(closed.approx_eq(&general, 1e-8));
    }

    #[test]
    fn fast_solve_matches_general_solve((m, a, b, _r) in rr_matrix_strategy(),
                                         seed in 0u64..1_000) {
        // Deterministic pseudo-random RHS derived from the seed.
        let r = m.rows();
        let v: Vec<f64> = (0..r)
            .map(|i| ((seed as f64 + 1.0) * (i as f64 + 1.0)).sin().abs() + 0.01)
            .collect();
        let fast = solve_uniform_perturbation(a, b, &v).unwrap();
        let general = solve(&m, &v).unwrap();
        for (x, y) in fast.iter().zip(general.iter()) {
            prop_assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn projection_always_returns_distribution(v in prop::collection::vec(-5.0f64..5.0, 1..40)) {
        let p = project_clamp_rescale(&v).unwrap();
        prop_assert!(is_probability_vector(&p, 1e-9));
        prop_assert_eq!(p.len(), v.len());
    }

    #[test]
    fn projection_is_idempotent(v in prop::collection::vec(-5.0f64..5.0, 1..40)) {
        let p1 = project_clamp_rescale(&v).unwrap();
        let p2 = project_clamp_rescale(&p1).unwrap();
        for (a, b) in p1.iter().zip(p2.iter()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn correlation_is_bounded(xs in prop::collection::vec(-100.0f64..100.0, 3..60),
                              ys in prop::collection::vec(-100.0f64..100.0, 3..60)) {
        let n = xs.len().min(ys.len());
        let r = pearson_correlation(&xs[..n], &ys[..n]).unwrap();
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
    }

    #[test]
    fn cramers_v_is_bounded(pairs in prop::collection::vec((0u32..5, 0u32..4), 10..200)) {
        let xs: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<u32> = pairs.iter().map(|p| p.1).collect();
        let t = ContingencyTable::from_codes(&xs, &ys, 5, 4).unwrap();
        let v = t.cramers_v();
        prop_assert!((0.0..=1.0).contains(&v));
        prop_assert!(t.chi_squared_statistic() >= 0.0);
    }

    #[test]
    fn chi2_quantile_inverts_cdf(q in 0.001f64..0.999, df in 1.0f64..50.0) {
        let x = chi2_quantile(q, df).unwrap();
        let back = chi2_cdf(x, df).unwrap();
        prop_assert!((back - q).abs() < 1e-7);
    }

    #[test]
    fn normal_quantile_inverts_cdf(p in 0.0001f64..0.9999) {
        let x = normal_quantile(p).unwrap();
        prop_assert!((normal_cdf(x) - p).abs() < 1e-9);
    }

    #[test]
    fn b_factor_monotone_in_r(alpha in 0.01f64..0.2, r in 2usize..5_000) {
        let b_small = b_factor(alpha, r).unwrap();
        let b_big = b_factor(alpha, r * 2).unwrap();
        prop_assert!(b_big > b_small);
        prop_assert!(b_small > 0.0);
    }

    #[test]
    fn matrix_transpose_involution(rows in 1usize..8, cols in 1usize..8, seed in 0u64..1_000) {
        let m = Matrix::from_fn(rows, cols, |i, j| {
            ((seed + 1) as f64 * (i as f64 + 0.5) * (j as f64 + 1.3)).sin()
        });
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn vecmat_matches_transpose_matvec(rows in 1usize..8, cols in 1usize..8, seed in 0u64..1_000) {
        let m = Matrix::from_fn(rows, cols, |i, j| {
            ((seed + 1) as f64 * (i as f64 + 0.5) * (j as f64 + 1.3)).cos()
        });
        let v: Vec<f64> = (0..rows).map(|i| (i as f64 + 1.0) / rows as f64).collect();
        let a = m.vecmat(&v).unwrap();
        let b = m.transpose().matvec(&v).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }
}
