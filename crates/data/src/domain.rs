//! Mixed-radix codec between attribute-value tuples and joint-domain codes.
//!
//! RR-Joint (Protocol 2) and RR-Clusters (Section 4) treat the Cartesian
//! product of several attributes as one big categorical attribute.  The
//! [`JointDomain`] maps a tuple of per-attribute category codes to a single
//! index in `0 .. Π|A_j|` and back, so the single-attribute randomization
//! and estimation machinery of `mdrr-core` applies unchanged to clusters of
//! any width.
//!
//! The encoding is the usual mixed-radix positional system: the first
//! attribute in the domain varies slowest.

use crate::error::DataError;
use serde::{Deserialize, Serialize};

/// A mixed-radix codec over a fixed, ordered list of attribute
/// cardinalities.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JointDomain {
    cardinalities: Vec<usize>,
    /// `strides[i]` is the weight of attribute `i` in the code.
    strides: Vec<usize>,
    size: usize,
}

impl JointDomain {
    /// Builds the codec for the given attribute cardinalities, in order.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidParameter`] if the list is empty, any
    /// cardinality is zero, or the product overflows `usize`.
    pub fn new(cardinalities: &[usize]) -> Result<Self, DataError> {
        if cardinalities.is_empty() {
            return Err(DataError::invalid(
                "cardinalities",
                "joint domain needs at least one attribute",
            ));
        }
        if cardinalities.contains(&0) {
            return Err(DataError::invalid(
                "cardinalities",
                "every attribute must have at least one category",
            ));
        }
        let mut size = 1usize;
        for &c in cardinalities {
            size = size.checked_mul(c).ok_or_else(|| {
                DataError::invalid("cardinalities", "joint domain size overflows usize")
            })?;
        }
        // First attribute varies slowest: stride of attribute i is the
        // product of the cardinalities of all later attributes.
        let mut strides = vec![1usize; cardinalities.len()];
        for i in (0..cardinalities.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * cardinalities[i + 1];
        }
        Ok(JointDomain {
            cardinalities: cardinalities.to_vec(),
            strides,
            size,
        })
    }

    /// Number of attributes in the domain.
    pub fn arity(&self) -> usize {
        self.cardinalities.len()
    }

    /// Cardinalities of the attributes, in order.
    pub fn cardinalities(&self) -> &[usize] {
        &self.cardinalities
    }

    /// Total number of value combinations `Π |A_j|`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The mixed-radix weight of each attribute in the joint code, in
    /// attribute order (`encode(values) = Σ values[i] · strides()[i]`).
    /// Exposed so batched encoders can fuse the encoding into their hot
    /// loops after validating each column once.
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Encodes a tuple of per-attribute category codes into a joint code.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidParameter`] if the tuple has the wrong
    /// arity or a code is out of range.
    pub fn encode(&self, values: &[u32]) -> Result<usize, DataError> {
        if values.len() != self.cardinalities.len() {
            return Err(DataError::invalid(
                "values",
                format!(
                    "expected {} values, got {}",
                    self.cardinalities.len(),
                    values.len()
                ),
            ));
        }
        let mut code = 0usize;
        for ((&v, &card), &stride) in values.iter().zip(&self.cardinalities).zip(&self.strides) {
            if v as usize >= card {
                return Err(DataError::invalid(
                    "values",
                    format!("code {v} out of range for cardinality {card}"),
                ));
            }
            code += v as usize * stride;
        }
        Ok(code)
    }

    /// Decodes a joint code back into per-attribute category codes.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidParameter`] if `code >= size()`.
    pub fn decode(&self, code: usize) -> Result<Vec<u32>, DataError> {
        if code >= self.size {
            return Err(DataError::invalid(
                "code",
                format!("joint code {code} out of range (domain size {})", self.size),
            ));
        }
        let mut rest = code;
        let mut out = Vec::with_capacity(self.cardinalities.len());
        for &stride in &self.strides {
            out.push((rest / stride) as u32);
            rest %= stride;
        }
        Ok(out)
    }

    /// Iterator over all value combinations of the domain, in code order.
    ///
    /// Intended for small domains (query generation, RR-Joint on clusters);
    /// the full Adult joint domain of 1 814 400 combinations is still fine,
    /// but callers should check [`JointDomain::size`] before materialising.
    pub fn iter(&self) -> impl Iterator<Item = Vec<u32>> + '_ {
        // lint:allow(panic-reachability, reason = "code ranges over 0..size and decode only errors on code >= size, so the expect is unreachable by construction")
        (0..self.size).map(move |code| self.decode(code).expect("code < size is always decodable"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_construction() {
        assert!(JointDomain::new(&[]).is_err());
        assert!(JointDomain::new(&[3, 0, 2]).is_err());
        assert!(JointDomain::new(&[usize::MAX, 2]).is_err());
    }

    #[test]
    fn size_and_arity() {
        let d = JointDomain::new(&[9, 16, 7]).unwrap();
        assert_eq!(d.arity(), 3);
        assert_eq!(d.size(), 9 * 16 * 7);
        assert_eq!(d.cardinalities(), &[9, 16, 7]);
    }

    #[test]
    fn adult_joint_domain_size_matches_paper() {
        // The paper reports 1 814 400 combinations for the 8 categorical
        // Adult attributes.
        let d = JointDomain::new(&[9, 16, 7, 15, 6, 5, 2, 2]).unwrap();
        assert_eq!(d.size(), 1_814_400);
    }

    #[test]
    fn encode_decode_roundtrip_small_domain() {
        let d = JointDomain::new(&[3, 4, 2]).unwrap();
        for code in 0..d.size() {
            let tuple = d.decode(code).unwrap();
            assert_eq!(d.encode(&tuple).unwrap(), code);
        }
    }

    #[test]
    fn first_attribute_varies_slowest() {
        let d = JointDomain::new(&[2, 3]).unwrap();
        assert_eq!(d.encode(&[0, 0]).unwrap(), 0);
        assert_eq!(d.encode(&[0, 2]).unwrap(), 2);
        assert_eq!(d.encode(&[1, 0]).unwrap(), 3);
        assert_eq!(d.decode(5).unwrap(), vec![1, 2]);
    }

    #[test]
    fn encode_validates_inputs() {
        let d = JointDomain::new(&[2, 3]).unwrap();
        assert!(d.encode(&[0]).is_err());
        assert!(d.encode(&[2, 0]).is_err());
        assert!(d.encode(&[0, 3]).is_err());
        assert!(d.decode(6).is_err());
    }

    #[test]
    fn iterator_enumerates_all_combinations_in_order() {
        let d = JointDomain::new(&[2, 2]).unwrap();
        let all: Vec<Vec<u32>> = d.iter().collect();
        assert_eq!(all, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn single_attribute_domain_is_identity() {
        let d = JointDomain::new(&[5]).unwrap();
        for v in 0..5u32 {
            assert_eq!(d.encode(&[v]).unwrap(), v as usize);
            assert_eq!(d.decode(v as usize).unwrap(), vec![v]);
        }
    }
}
