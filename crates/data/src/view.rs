//! Borrowed and owned columnar record batches — the zero-copy currency of
//! the bulk encode → ingest → estimate pipeline.
//!
//! [`crate::Dataset`] stores records column-major, and every bulk consumer
//! (the batched protocol encoders, the sharded streaming collector, the
//! experiment drivers) works column-wise too.  Historically they still met
//! through *row-major* `Vec<u32>` records — one heap allocation per record
//! per hop.  A [`RecordsView`] is the fix: a borrowed set of equal-length
//! column slices over a contiguous range of records, free to construct,
//! free to sub-slice, and naturally produced by
//! [`crate::Dataset::column_chunks`].  [`RecordsBuffer`] is its owned,
//! reusable counterpart for callers whose records arrive row by row (a
//! client generator, a network decoder): push rows in, hand the columnar
//! view to the batch encoder, `clear`, repeat — the buffers amortise to
//! zero allocations per record.

use crate::error::DataError;
use std::ops::Range;

/// A borrowed columnar batch of records: one `&[u32]` per attribute, all of
/// equal length.  `columns()[j][i]` is record `i`'s code for attribute `j`.
///
/// The view performs no schema validation — it only guarantees shape
/// (equal-length columns).  Code-range validation belongs to the consumer
/// (the batched protocol encoders validate each column once per batch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordsView<'a> {
    columns: Vec<&'a [u32]>,
    n_records: usize,
}

impl<'a> RecordsView<'a> {
    /// Wraps column slices as a batch of records.
    ///
    /// # Errors
    /// Returns [`DataError::SchemaMismatch`] if no column is given or the
    /// columns have differing lengths.
    pub fn new(columns: Vec<&'a [u32]>) -> Result<Self, DataError> {
        let n_records = match columns.first() {
            Some(c) => c.len(),
            None => {
                return Err(DataError::SchemaMismatch {
                    message: "a records view needs at least one column".to_string(),
                })
            }
        };
        if let Some((j, col)) = columns
            .iter()
            .enumerate()
            .find(|(_, col)| col.len() != n_records)
        {
            return Err(DataError::SchemaMismatch {
                message: format!(
                    "column {j} has {} values but column 0 has {n_records}",
                    col.len()
                ),
            });
        }
        Ok(RecordsView { columns, n_records })
    }

    /// Number of records in the batch.
    pub fn n_records(&self) -> usize {
        self.n_records
    }

    /// Number of attributes (columns) per record.
    pub fn n_attributes(&self) -> usize {
        self.columns.len()
    }

    /// Whether the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.n_records == 0
    }

    /// The column slices, in attribute order.
    pub fn columns(&self) -> &[&'a [u32]] {
        &self.columns
    }

    /// The column of attribute `index`.
    ///
    /// # Errors
    /// Returns [`DataError::AttributeIndexOutOfRange`] for a bad index.
    pub fn column(&self, index: usize) -> Result<&'a [u32], DataError> {
        self.columns
            .get(index)
            .copied()
            .ok_or(DataError::AttributeIndexOutOfRange {
                index,
                len: self.columns.len(),
            })
    }

    /// Fills `row` with record `i` (cleared first) — the bridge for
    /// consumers that still need a row-major record, without allocating a
    /// fresh `Vec` per record.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidParameter`] if `i >= n_records()`.
    pub fn read_record(&self, i: usize, row: &mut Vec<u32>) -> Result<(), DataError> {
        if i >= self.n_records {
            return Err(DataError::invalid(
                "record",
                format!("record index {i} out of range ({} records)", self.n_records),
            ));
        }
        row.clear();
        row.extend(self.columns.iter().map(|c| c[i]));
        Ok(())
    }

    /// A sub-view over the records at `range` (column sub-slicing; no
    /// copying).
    ///
    /// # Errors
    /// Returns [`DataError::InvalidParameter`] if the range exceeds the
    /// batch.
    pub fn slice(&self, range: Range<usize>) -> Result<RecordsView<'a>, DataError> {
        if range.start > range.end || range.end > self.n_records {
            return Err(DataError::invalid(
                "range",
                format!(
                    "record range {}..{} out of bounds ({} records)",
                    range.start, range.end, self.n_records
                ),
            ));
        }
        Ok(RecordsView {
            n_records: range.end - range.start,
            columns: self
                .columns
                .iter()
                .map(|c| &c[range.start..range.end])
                .collect(),
        })
    }
}

/// An owned, reusable columnar record buffer: the transpose target for
/// records that arrive row by row.
///
/// `clear` keeps the column capacities, so a worker that fills, encodes and
/// clears the same buffer per chunk allocates nothing after warm-up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordsBuffer {
    columns: Vec<Vec<u32>>,
}

impl RecordsBuffer {
    /// An empty buffer for records of `n_attributes` values.
    ///
    /// # Errors
    /// Returns [`DataError::SchemaMismatch`] if `n_attributes` is zero.
    pub fn new(n_attributes: usize) -> Result<Self, DataError> {
        if n_attributes == 0 {
            return Err(DataError::SchemaMismatch {
                message: "a records buffer needs at least one attribute".to_string(),
            });
        }
        Ok(RecordsBuffer {
            columns: vec![Vec::new(); n_attributes],
        })
    }

    /// Appends one row-major record, transposing it into the columns.
    ///
    /// # Errors
    /// Returns [`DataError::SchemaMismatch`] for an arity mismatch; the
    /// buffer is unchanged on error.  Codes are *not* range-checked here —
    /// the batched encoders validate each column once per batch.
    pub fn push_record(&mut self, record: &[u32]) -> Result<(), DataError> {
        if record.len() != self.columns.len() {
            return Err(DataError::SchemaMismatch {
                message: format!(
                    "record has {} values but the buffer has {} attributes",
                    record.len(),
                    self.columns.len()
                ),
            });
        }
        for (col, &v) in self.columns.iter_mut().zip(record.iter()) {
            col.push(v);
        }
        Ok(())
    }

    /// Number of buffered records.
    pub fn n_records(&self) -> usize {
        self.columns.first().map(Vec::len).unwrap_or(0)
    }

    /// Number of attributes per record.
    pub fn n_attributes(&self) -> usize {
        self.columns.len()
    }

    /// Whether the buffer holds no records.
    pub fn is_empty(&self) -> bool {
        self.n_records() == 0
    }

    /// Empties the buffer, keeping the column capacities for reuse.
    pub fn clear(&mut self) {
        for col in &mut self.columns {
            col.clear();
        }
    }

    /// The buffered records as a borrowed columnar view.
    pub fn view(&self) -> RecordsView<'_> {
        RecordsView {
            n_records: self.n_records(),
            columns: self.columns.iter().map(Vec::as_slice).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_validates_shape() {
        assert!(RecordsView::new(vec![]).is_err());
        assert!(RecordsView::new(vec![&[0, 1][..], &[0][..]]).is_err());
        let view = RecordsView::new(vec![&[0, 1, 2][..], &[1, 0, 1][..]]).unwrap();
        assert_eq!(view.n_records(), 3);
        assert_eq!(view.n_attributes(), 2);
        assert!(!view.is_empty());
        assert_eq!(view.column(1).unwrap(), &[1, 0, 1]);
        assert!(view.column(2).is_err());
    }

    #[test]
    fn view_reads_rows_and_slices() {
        let view = RecordsView::new(vec![&[0, 1, 2][..], &[1, 0, 1][..]]).unwrap();
        let mut row = vec![99; 7];
        view.read_record(1, &mut row).unwrap();
        assert_eq!(row, vec![1, 0]);
        assert!(view.read_record(3, &mut row).is_err());

        let sub = view.slice(1..3).unwrap();
        assert_eq!(sub.n_records(), 2);
        assert_eq!(sub.columns()[0], &[1, 2]);
        assert!(view.slice(1..4).is_err());
        assert!(view.slice(0..0).unwrap().is_empty());
    }

    #[test]
    fn buffer_transposes_and_reuses() {
        assert!(RecordsBuffer::new(0).is_err());
        let mut buf = RecordsBuffer::new(2).unwrap();
        assert!(buf.is_empty());
        buf.push_record(&[0, 1]).unwrap();
        buf.push_record(&[2, 0]).unwrap();
        assert!(buf.push_record(&[1]).is_err());
        assert_eq!(buf.n_records(), 2);
        let view = buf.view();
        assert_eq!(view.columns()[0], &[0, 2]);
        assert_eq!(view.columns()[1], &[1, 0]);
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.n_attributes(), 2);
    }
}
