//! # mdrr-data
//!
//! Categorical microdata model for the multi-dimensional randomized-response
//! (MDRR) library:
//!
//! * [`schema`] — attributes (name, ordinal/nominal kind, category labels)
//!   and schemas;
//! * [`dataset`] — column-major record storage with the marginal/joint
//!   frequency counting primitives the estimators need;
//! * [`domain`] — the mixed-radix codec that lets RR-Joint and RR-Clusters
//!   treat a Cartesian product of attributes as one categorical attribute;
//! * [`csv`] — minimal CSV import/export so the real UCI Adult file (or any
//!   categorical CSV) can be used instead of the synthetic generator;
//! * [`adult`] — the synthetic Adult generator used by the experiment
//!   harness (same schema and dependence structure as the paper's data set;
//!   see DESIGN.md §4 for the substitution argument).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adult;
pub mod csv;
pub mod dataset;
pub mod domain;
pub mod error;
pub mod schema;

pub use adult::{adult_schema, AdultAttribute, AdultSynthesizer, ADULT_RECORD_COUNT};
pub use dataset::Dataset;
pub use domain::JointDomain;
pub use error::DataError;
pub use schema::{Attribute, AttributeKind, Schema};
