//! # mdrr-data
//!
//! Categorical microdata model for the multi-dimensional randomized-response
//! (MDRR) library:
//!
//! * [`schema`] — attributes (name, ordinal/nominal kind, category labels)
//!   and schemas;
//! * [`dataset`] — column-major record storage with the marginal/joint
//!   frequency counting primitives the estimators need;
//! * [`domain`] — the mixed-radix codec that lets RR-Joint and RR-Clusters
//!   treat a Cartesian product of attributes as one categorical attribute;
//! * [`view`] — borrowed ([`RecordsView`]) and owned ([`RecordsBuffer`])
//!   columnar record batches, the zero-copy currency of the batched
//!   encode → ingest pipeline;
//! * [`csv`] — minimal CSV import/export so the real UCI Adult file (or any
//!   categorical CSV) can be used instead of the synthetic generator;
//! * [`adult`] — the synthetic Adult generator used by the experiment
//!   harness (same schema and dependence structure as the paper's data set;
//!   see `DESIGN.md` §4 at the repository root for the substitution
//!   argument).
//!
//! ## Example
//!
//! Build a two-attribute dataset and count joint frequencies through the
//! mixed-radix joint domain:
//!
//! ```
//! use mdrr_data::{Attribute, AttributeKind, Dataset, Schema};
//!
//! let schema = Schema::new(vec![
//!     Attribute::new("smoker", AttributeKind::Nominal,
//!                    vec!["no".into(), "yes".into()])?,
//!     Attribute::new("band", AttributeKind::Ordinal,
//!                    vec!["low".into(), "mid".into(), "high".into()])?,
//! ])?;
//! let mut dataset = Dataset::empty(schema);
//! dataset.push_record(&[0, 2])?;
//! dataset.push_record(&[1, 0])?;
//! dataset.push_record(&[0, 2])?;
//!
//! assert_eq!(dataset.marginal_counts(0)?, vec![2, 1]);
//! let (domain, joint) = dataset.joint_counts(&[0, 1])?;
//! assert_eq!(joint[domain.encode(&[0, 2])?], 2);
//! # Ok::<(), mdrr_data::DataError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adult;
pub mod csv;
pub mod dataset;
pub mod domain;
pub mod error;
pub mod schema;
pub mod view;

pub use adult::{adult_schema, AdultAttribute, AdultSynthesizer, ADULT_RECORD_COUNT};
pub use dataset::Dataset;
pub use domain::JointDomain;
pub use error::DataError;
pub use schema::{Attribute, AttributeKind, Schema};
pub use view::{RecordsBuffer, RecordsView};
