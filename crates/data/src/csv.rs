//! Minimal CSV import/export for categorical microdata.
//!
//! The paper evaluates on the UCI Adult data set.  This repository ships a
//! synthetic generator with the same schema ([`crate::adult`]), but the CSV
//! loader below lets users drop in the real file (or any other categorical
//! CSV) without extra dependencies.  Only the features needed for
//! categorical microdata are implemented: comma separation, a header row
//! with attribute names, values without embedded commas or quotes, and
//! optional surrounding whitespace.

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::schema::{Attribute, AttributeKind, Schema};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Writes a dataset as CSV with a header row of attribute names and one row
/// of category *labels* per record.
///
/// # Errors
/// Propagates I/O errors and label-lookup failures (the latter cannot occur
/// for datasets built through the validated constructors).
pub fn write_csv<W: Write>(dataset: &Dataset, writer: &mut W) -> Result<(), DataError> {
    let schema = dataset.schema();
    let header: Vec<&str> = schema.attributes().iter().map(Attribute::name).collect();
    writeln!(writer, "{}", header.join(",")).map_err(DataError::from)?;
    // Read rows through the columnar view into one reused buffer instead of
    // allocating a fresh record Vec per row.
    let view = dataset.view();
    let mut row = Vec::with_capacity(view.n_attributes());
    let mut labels: Vec<&str> = Vec::with_capacity(view.n_attributes());
    for i in 0..view.n_records() {
        view.read_record(i, &mut row)?;
        labels.clear();
        for (j, &code) in row.iter().enumerate() {
            labels.push(schema.attribute(j)?.label(code)?);
        }
        writeln!(writer, "{}", labels.join(",")).map_err(DataError::from)?;
    }
    Ok(())
}

/// Writes a dataset as CSV to a file path.
///
/// # Errors
/// Same conditions as [`write_csv`].
pub fn write_csv_path(dataset: &Dataset, path: impl AsRef<Path>) -> Result<(), DataError> {
    let mut file = std::fs::File::create(path).map_err(DataError::from)?;
    write_csv(dataset, &mut file)
}

/// Reads a CSV with a header row into a dataset over a *known* schema.
/// Column order must match the schema; values are matched against category
/// labels.
///
/// # Errors
/// Returns [`DataError::Parse`] for malformed rows, header mismatches or
/// unknown category labels, plus I/O errors.
pub fn read_csv<R: Read>(schema: Schema, reader: R) -> Result<Dataset, DataError> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines();
    let header_line = match lines.next() {
        Some(line) => line.map_err(DataError::from)?,
        None => {
            return Err(DataError::Parse {
                line: 1,
                message: "missing header row".to_string(),
            })
        }
    };
    let header: Vec<String> = split_row(&header_line);
    let expected: Vec<&str> = schema.attributes().iter().map(Attribute::name).collect();
    if header.len() != expected.len() || header.iter().zip(&expected).any(|(h, e)| h != e) {
        return Err(DataError::Parse {
            line: 1,
            message: format!("header {header:?} does not match schema attributes {expected:?}"),
        });
    }

    let mut dataset = Dataset::empty(schema);
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        let line = line.map_err(DataError::from)?;
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_row(&line);
        if fields.len() != dataset.schema().len() {
            return Err(DataError::Parse {
                line: line_no,
                message: format!(
                    "expected {} fields, got {}",
                    dataset.schema().len(),
                    fields.len()
                ),
            });
        }
        let mut record = Vec::with_capacity(fields.len());
        for (j, field) in fields.iter().enumerate() {
            let attribute = dataset.schema().attribute(j)?;
            let code = attribute.code(field).map_err(|_| DataError::Parse {
                line: line_no,
                message: format!(
                    "unknown label `{field}` for attribute `{}`",
                    attribute.name()
                ),
            })?;
            record.push(code);
        }
        dataset.push_record(&record)?;
    }
    Ok(dataset)
}

/// Reads a CSV with a header row, inferring the schema from the data: every
/// column becomes a nominal attribute whose categories are the distinct
/// labels in order of first appearance.
///
/// # Errors
/// Returns [`DataError::Parse`] for malformed rows, plus I/O errors.
pub fn read_csv_infer_schema<R: Read>(reader: R) -> Result<Dataset, DataError> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines();
    let header_line = match lines.next() {
        Some(line) => line.map_err(DataError::from)?,
        None => {
            return Err(DataError::Parse {
                line: 1,
                message: "missing header row".to_string(),
            })
        }
    };
    let names = split_row(&header_line);
    if names.is_empty() {
        return Err(DataError::Parse {
            line: 1,
            message: "empty header row".to_string(),
        });
    }

    // First pass: collect rows and per-column category labels.
    let mut categories: Vec<Vec<String>> = vec![Vec::new(); names.len()];
    let mut rows: Vec<Vec<u32>> = Vec::new();
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        let line = line.map_err(DataError::from)?;
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_row(&line);
        if fields.len() != names.len() {
            return Err(DataError::Parse {
                line: line_no,
                message: format!("expected {} fields, got {}", names.len(), fields.len()),
            });
        }
        let mut row = Vec::with_capacity(fields.len());
        for (j, field) in fields.iter().enumerate() {
            let code = match categories[j].iter().position(|c| c == field) {
                Some(pos) => pos as u32,
                None => {
                    categories[j].push(field.clone());
                    (categories[j].len() - 1) as u32
                }
            };
            row.push(code);
        }
        rows.push(row);
    }

    let attributes: Result<Vec<Attribute>, DataError> = names
        .iter()
        .zip(categories)
        .map(|(name, cats)| {
            let cats = if cats.is_empty() {
                vec!["<empty>".to_string()]
            } else {
                cats
            };
            Attribute::new(name.clone(), AttributeKind::Nominal, cats)
        })
        .collect();
    let schema = Schema::new(attributes?)?;
    Dataset::from_records(schema, &rows)
}

/// Reads a CSV file from disk against a known schema.
///
/// # Errors
/// Same conditions as [`read_csv`].
pub fn read_csv_path(schema: Schema, path: impl AsRef<Path>) -> Result<Dataset, DataError> {
    let file = std::fs::File::open(path).map_err(DataError::from)?;
    read_csv(schema, file)
}

fn split_row(line: &str) -> Vec<String> {
    line.split(',').map(|f| f.trim().to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new(
                "Sex",
                AttributeKind::Nominal,
                vec!["Male".into(), "Female".into()],
            )
            .unwrap(),
            Attribute::new(
                "Income",
                AttributeKind::Ordinal,
                vec!["<=50K".into(), ">50K".into()],
            )
            .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn roundtrip_through_csv() {
        let ds = Dataset::from_records(schema(), &[vec![0, 0], vec![1, 1], vec![0, 1]]).unwrap();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("Sex,Income\n"));
        assert!(text.contains("Female,>50K"));

        let back = read_csv(schema(), buf.as_slice()).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn read_rejects_bad_header() {
        let data = "Sex,Age\nMale,23\n";
        assert!(matches!(
            read_csv(schema(), data.as_bytes()),
            Err(DataError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn read_rejects_bad_arity_and_labels() {
        let missing_field = "Sex,Income\nMale\n";
        assert!(matches!(
            read_csv(schema(), missing_field.as_bytes()),
            Err(DataError::Parse { line: 2, .. })
        ));
        let bad_label = "Sex,Income\nMale,Unknown\n";
        assert!(matches!(
            read_csv(schema(), bad_label.as_bytes()),
            Err(DataError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn read_skips_blank_lines_and_trims_whitespace() {
        let data = "Sex,Income\n Male , <=50K \n\nFemale,>50K\n";
        let ds = read_csv(schema(), data.as_bytes()).unwrap();
        assert_eq!(ds.n_records(), 2);
        assert_eq!(ds.record(0).unwrap(), vec![0, 0]);
        assert_eq!(ds.record(1).unwrap(), vec![1, 1]);
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(read_csv(schema(), "".as_bytes()).is_err());
        assert!(read_csv_infer_schema("".as_bytes()).is_err());
    }

    #[test]
    fn infer_schema_builds_categories_in_order_of_appearance() {
        let data = "City,Pet\nParis,Cat\nRome,Dog\nParis,Dog\n";
        let ds = read_csv_infer_schema(data.as_bytes()).unwrap();
        assert_eq!(ds.n_records(), 3);
        assert_eq!(
            ds.schema().attribute(0).unwrap().categories(),
            &["Paris", "Rome"]
        );
        assert_eq!(
            ds.schema().attribute(1).unwrap().categories(),
            &["Cat", "Dog"]
        );
        assert_eq!(ds.record(2).unwrap(), vec![0, 1]);
    }

    #[test]
    fn infer_schema_rejects_ragged_rows() {
        let data = "A,B\nx,y\nz\n";
        assert!(matches!(
            read_csv_infer_schema(data.as_bytes()),
            Err(DataError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn path_roundtrip() {
        let ds = Dataset::from_records(schema(), &[vec![0, 1], vec![1, 0]]).unwrap();
        let dir = std::env::temp_dir();
        let path = dir.join("mdrr_csv_roundtrip_test.csv");
        write_csv_path(&ds, &path).unwrap();
        let back = read_csv_path(schema(), &path).unwrap();
        assert_eq!(back, ds);
        let _ = std::fs::remove_file(&path);
    }
}
