//! Attribute and schema definitions for categorical microdata.
//!
//! Randomized response operates on categorical attributes (the paper assumes
//! numerical attributes have been discretized, Section 4).  An
//! [`Attribute`] carries its name, its ordered list of category labels and a
//! [`AttributeKind`] flag; the kind decides which dependence measure the
//! clustering algorithm uses for a pair of attributes (|Pearson correlation|
//! for two ordinal attributes, Cramér's V otherwise — Expressions (8)/(9)).

use crate::error::DataError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Whether an attribute's categories have a meaningful order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttributeKind {
    /// Categories have a natural order (e.g. education level, income band).
    Ordinal,
    /// Categories have no order (e.g. occupation, race).
    Nominal,
}

/// A single categorical attribute: a name, a kind and its category labels.
///
/// The category *code* of a value is its index in the label list; datasets
/// store codes, not labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribute {
    name: String,
    kind: AttributeKind,
    categories: Vec<String>,
}

impl Attribute {
    /// Creates an attribute from a name, kind and category labels.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidCategory`] if there are no categories or
    /// if two categories share a label.
    pub fn new(
        name: impl Into<String>,
        kind: AttributeKind,
        categories: Vec<String>,
    ) -> Result<Self, DataError> {
        let name = name.into();
        if categories.is_empty() {
            return Err(DataError::InvalidCategory {
                attribute: name,
                message: "attribute must have at least one category".to_string(),
            });
        }
        let mut seen = HashMap::with_capacity(categories.len());
        for (i, c) in categories.iter().enumerate() {
            if let Some(prev) = seen.insert(c.clone(), i) {
                return Err(DataError::InvalidCategory {
                    attribute: name,
                    message: format!("duplicate category label `{c}` at positions {prev} and {i}"),
                });
            }
        }
        Ok(Attribute {
            name,
            kind,
            categories,
        })
    }

    /// Creates a nominal attribute whose categories are `"0", "1", …,
    /// "cardinality-1"`.  Convenient for synthetic experiments where labels
    /// do not matter.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidParameter`] if `cardinality == 0`.
    pub fn indexed(name: impl Into<String>, cardinality: usize) -> Result<Self, DataError> {
        if cardinality == 0 {
            return Err(DataError::invalid(
                "cardinality",
                "attribute cardinality must be positive",
            ));
        }
        let categories = (0..cardinality).map(|i| i.to_string()).collect();
        Attribute::new(name, AttributeKind::Nominal, categories)
    }

    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the attribute is ordinal or nominal.
    pub fn kind(&self) -> AttributeKind {
        self.kind
    }

    /// Number of categories (`r_j` in the paper).
    pub fn cardinality(&self) -> usize {
        self.categories.len()
    }

    /// Category labels, in code order.
    pub fn categories(&self) -> &[String] {
        &self.categories
    }

    /// Label of a category code.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidCategory`] if the code is out of range.
    pub fn label(&self, code: u32) -> Result<&str, DataError> {
        self.categories
            .get(code as usize)
            .map(String::as_str)
            .ok_or_else(|| DataError::InvalidCategory {
                attribute: self.name.clone(),
                message: format!(
                    "code {code} out of range (cardinality {})",
                    self.cardinality()
                ),
            })
    }

    /// Code of a category label.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidCategory`] if the label is unknown.
    pub fn code(&self, label: &str) -> Result<u32, DataError> {
        self.categories
            .iter()
            .position(|c| c == label)
            .map(|i| i as u32)
            .ok_or_else(|| DataError::InvalidCategory {
                attribute: self.name.clone(),
                message: format!("unknown category label `{label}`"),
            })
    }

    /// Whether `code` is a valid category code for this attribute.
    pub fn contains_code(&self, code: u32) -> bool {
        (code as usize) < self.categories.len()
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:?}, {} categories)",
            self.name,
            self.kind,
            self.cardinality()
        )
    }
}

/// An ordered collection of attributes describing a categorical microdata
/// set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Creates a schema from a list of attributes.
    ///
    /// # Errors
    /// Returns [`DataError::SchemaMismatch`] if the schema is empty or two
    /// attributes share a name.
    pub fn new(attributes: Vec<Attribute>) -> Result<Self, DataError> {
        if attributes.is_empty() {
            return Err(DataError::SchemaMismatch {
                message: "schema must contain at least one attribute".to_string(),
            });
        }
        let mut seen = HashMap::with_capacity(attributes.len());
        for (i, a) in attributes.iter().enumerate() {
            if let Some(prev) = seen.insert(a.name().to_string(), i) {
                return Err(DataError::SchemaMismatch {
                    message: format!(
                        "duplicate attribute name `{}` at positions {prev} and {i}",
                        a.name()
                    ),
                });
            }
        }
        Ok(Schema { attributes })
    }

    /// Number of attributes (`m` in the paper).
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Whether the schema has no attributes.  Always `false` for a schema
    /// built through [`Schema::new`], but kept for API completeness.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// The attributes, in order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Attribute at position `index`.
    ///
    /// # Errors
    /// Returns [`DataError::AttributeIndexOutOfRange`] if out of range.
    pub fn attribute(&self, index: usize) -> Result<&Attribute, DataError> {
        self.attributes
            .get(index)
            .ok_or(DataError::AttributeIndexOutOfRange {
                index,
                len: self.attributes.len(),
            })
    }

    /// Position of the attribute named `name`.
    ///
    /// # Errors
    /// Returns [`DataError::UnknownAttribute`] if no attribute has that name.
    pub fn index_of(&self, name: &str) -> Result<usize, DataError> {
        self.attributes
            .iter()
            .position(|a| a.name() == name)
            .ok_or_else(|| DataError::UnknownAttribute {
                name: name.to_string(),
            })
    }

    /// Cardinalities of all attributes, in order (`|A_1|, …, |A_m|`).
    pub fn cardinalities(&self) -> Vec<usize> {
        self.attributes.iter().map(Attribute::cardinality).collect()
    }

    /// Size of the full joint domain `|A_1| × … × |A_m|`, or `None` if the
    /// product overflows `usize` (the paper's Adult joint domain of
    /// 1 814 400 combinations fits easily, but guarding the overflow keeps
    /// the API honest for wider schemas).
    pub fn joint_domain_size(&self) -> Option<usize> {
        self.attributes
            .iter()
            .try_fold(1usize, |acc, a| acc.checked_mul(a.cardinality()))
    }

    /// Validates that `record` is a legal record for this schema: correct
    /// arity and every code within its attribute's cardinality.
    ///
    /// # Errors
    /// Returns [`DataError::RecordArityMismatch`] or
    /// [`DataError::InvalidCategory`] accordingly.
    pub fn validate_record(&self, record: &[u32]) -> Result<(), DataError> {
        if record.len() != self.attributes.len() {
            return Err(DataError::RecordArityMismatch {
                got: record.len(),
                expected: self.attributes.len(),
            });
        }
        for (value, attribute) in record.iter().zip(self.attributes.iter()) {
            if !attribute.contains_code(*value) {
                return Err(DataError::InvalidCategory {
                    attribute: attribute.name().to_string(),
                    message: format!(
                        "code {value} out of range (cardinality {})",
                        attribute.cardinality()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Builds a sub-schema containing only the attributes at `indices`
    /// (in the given order).
    ///
    /// # Errors
    /// Returns [`DataError::AttributeIndexOutOfRange`] for a bad index.
    pub fn project(&self, indices: &[usize]) -> Result<Schema, DataError> {
        let mut attrs = Vec::with_capacity(indices.len());
        for &i in indices {
            attrs.push(self.attribute(i)?.clone());
        }
        Schema::new(attrs)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Schema with {} attributes:", self.len())?;
        for a in &self.attributes {
            writeln!(f, "  - {a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> Schema {
        Schema::new(vec![
            Attribute::new(
                "Sex",
                AttributeKind::Nominal,
                vec!["Male".into(), "Female".into()],
            )
            .unwrap(),
            Attribute::new(
                "Education",
                AttributeKind::Ordinal,
                vec!["Primary".into(), "Secondary".into(), "Tertiary".into()],
            )
            .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn attribute_basics() {
        let a =
            Attribute::new("Sex", AttributeKind::Nominal, vec!["M".into(), "F".into()]).unwrap();
        assert_eq!(a.name(), "Sex");
        assert_eq!(a.cardinality(), 2);
        assert_eq!(a.kind(), AttributeKind::Nominal);
        assert_eq!(a.label(0).unwrap(), "M");
        assert_eq!(a.code("F").unwrap(), 1);
        assert!(a.contains_code(1));
        assert!(!a.contains_code(2));
        assert!(a.label(2).is_err());
        assert!(a.code("X").is_err());
    }

    #[test]
    fn attribute_rejects_empty_and_duplicates() {
        assert!(Attribute::new("A", AttributeKind::Nominal, vec![]).is_err());
        assert!(Attribute::new("A", AttributeKind::Nominal, vec!["x".into(), "x".into()]).is_err());
    }

    #[test]
    fn indexed_attribute_generates_labels() {
        let a = Attribute::indexed("A", 4).unwrap();
        assert_eq!(a.cardinality(), 4);
        assert_eq!(a.label(3).unwrap(), "3");
        assert!(Attribute::indexed("A", 0).is_err());
    }

    #[test]
    fn schema_lookup() {
        let s = sample_schema();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.index_of("Education").unwrap(), 1);
        assert!(s.index_of("Income").is_err());
        assert_eq!(s.attribute(0).unwrap().name(), "Sex");
        assert!(s.attribute(7).is_err());
        assert_eq!(s.cardinalities(), vec![2, 3]);
        assert_eq!(s.joint_domain_size(), Some(6));
    }

    #[test]
    fn schema_rejects_empty_and_duplicate_names() {
        assert!(Schema::new(vec![]).is_err());
        let a = Attribute::indexed("A", 2).unwrap();
        assert!(Schema::new(vec![a.clone(), a]).is_err());
    }

    #[test]
    fn record_validation() {
        let s = sample_schema();
        assert!(s.validate_record(&[1, 2]).is_ok());
        assert!(matches!(
            s.validate_record(&[1]),
            Err(DataError::RecordArityMismatch { .. })
        ));
        assert!(matches!(
            s.validate_record(&[2, 0]),
            Err(DataError::InvalidCategory { .. })
        ));
    }

    #[test]
    fn schema_projection() {
        let s = sample_schema();
        let p = s.project(&[1]).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.attribute(0).unwrap().name(), "Education");
        assert!(s.project(&[5]).is_err());
    }

    #[test]
    fn display_is_informative() {
        let s = sample_schema();
        let text = format!("{s}");
        assert!(text.contains("Sex"));
        assert!(text.contains("Education"));
        assert!(text.contains("2 attributes"));
    }

    #[test]
    fn joint_domain_size_overflow_is_none() {
        // 64 attributes with cardinality 2^16 overflow usize on any platform
        // we care about (2^1024 combinations).
        let attrs: Vec<Attribute> = (0..64)
            .map(|i| Attribute::indexed(format!("A{i}"), 1 << 16).unwrap())
            .collect();
        let s = Schema::new(attrs).unwrap();
        assert_eq!(s.joint_domain_size(), None);
    }
}
