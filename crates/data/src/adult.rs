//! Synthetic Adult data set.
//!
//! The paper's experiments (Section 6) use the 8 categorical attributes of
//! the UCI *Adult* census data set: Work-class (9 categories), Education
//! (16), Marital-status (7), Occupation (15), Relationship (6), Race (5),
//! Sex (2) and Income (2) — a joint domain of 1 814 400 combinations over
//! 32 561 records.  The real file is not redistributed with this
//! repository, so this module provides:
//!
//! * [`adult_schema`] — the exact schema (names, cardinalities, category
//!   labels, ordinal/nominal kinds) of the categorical Adult attributes, so
//!   the real file can be loaded through [`crate::csv::read_csv`] if
//!   available;
//! * [`AdultSynthesizer`] — a seeded generator that samples records from a
//!   small Bayesian network over the same schema.  The network induces the
//!   dependence structure the experiments rely on: a strong
//!   Education → Occupation → Income chain, a strong
//!   Sex ↔ Marital-status ↔ Relationship triangle, a moderate
//!   Occupation → Work-class link, and a Race attribute that is nearly
//!   independent of everything else.  The clustering and adjustment
//!   protocols only care about (i) the attribute cardinalities, (ii) the
//!   existence of strongly and weakly dependent pairs and (iii) the ratio of
//!   the record count to the joint-domain size, all of which this generator
//!   reproduces (see DESIGN.md §4 for the full substitution argument).

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::schema::{Attribute, AttributeKind, Schema};
use rand::Rng;

/// Number of records in the original Adult data set, as used by the paper.
pub const ADULT_RECORD_COUNT: usize = 32_561;

/// Indices of the Adult attributes inside [`adult_schema`], in schema order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdultAttribute {
    /// Work-class, 9 categories.
    WorkClass = 0,
    /// Education, 16 categories (ordered by attainment).
    Education = 1,
    /// Marital-status, 7 categories.
    MaritalStatus = 2,
    /// Occupation, 15 categories.
    Occupation = 3,
    /// Relationship, 6 categories.
    Relationship = 4,
    /// Race, 5 categories.
    Race = 5,
    /// Sex, 2 categories.
    Sex = 6,
    /// Income, 2 categories.
    Income = 7,
}

impl AdultAttribute {
    /// The attribute's index in [`adult_schema`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// The schema of the 8 categorical Adult attributes used by the paper, with
/// the original category labels (Education ordered by attainment so its
/// ordinal kind is meaningful).
pub fn adult_schema() -> Schema {
    let work_class = Attribute::new(
        "Work-class",
        AttributeKind::Nominal,
        to_strings(&[
            "Private",
            "Self-emp-not-inc",
            "Self-emp-inc",
            "Federal-gov",
            "Local-gov",
            "State-gov",
            "Without-pay",
            "Never-worked",
            "Unknown",
        ]),
    )
    .expect("static attribute definition is valid");

    let education = Attribute::new(
        "Education",
        AttributeKind::Ordinal,
        to_strings(&[
            "Preschool",
            "1st-4th",
            "5th-6th",
            "7th-8th",
            "9th",
            "10th",
            "11th",
            "12th",
            "HS-grad",
            "Some-college",
            "Assoc-voc",
            "Assoc-acdm",
            "Bachelors",
            "Masters",
            "Prof-school",
            "Doctorate",
        ]),
    )
    .expect("static attribute definition is valid");

    let marital = Attribute::new(
        "Marital-status",
        AttributeKind::Nominal,
        to_strings(&[
            "Never-married",
            "Married-civ-spouse",
            "Divorced",
            "Separated",
            "Widowed",
            "Married-spouse-absent",
            "Married-AF-spouse",
        ]),
    )
    .expect("static attribute definition is valid");

    let occupation = Attribute::new(
        "Occupation",
        AttributeKind::Nominal,
        to_strings(&[
            "Priv-house-serv",
            "Handlers-cleaners",
            "Other-service",
            "Farming-fishing",
            "Machine-op-inspct",
            "Transport-moving",
            "Craft-repair",
            "Adm-clerical",
            "Sales",
            "Protective-serv",
            "Tech-support",
            "Armed-Forces",
            "Exec-managerial",
            "Prof-specialty",
            "Unknown",
        ]),
    )
    .expect("static attribute definition is valid");

    let relationship = Attribute::new(
        "Relationship",
        AttributeKind::Nominal,
        to_strings(&[
            "Husband",
            "Wife",
            "Own-child",
            "Not-in-family",
            "Other-relative",
            "Unmarried",
        ]),
    )
    .expect("static attribute definition is valid");

    let race = Attribute::new(
        "Race",
        AttributeKind::Nominal,
        to_strings(&[
            "White",
            "Black",
            "Asian-Pac-Islander",
            "Amer-Indian-Eskimo",
            "Other",
        ]),
    )
    .expect("static attribute definition is valid");

    let sex = Attribute::new(
        "Sex",
        AttributeKind::Nominal,
        to_strings(&["Male", "Female"]),
    )
    .expect("static attribute definition is valid");

    let income = Attribute::new(
        "Income",
        AttributeKind::Ordinal,
        to_strings(&["<=50K", ">50K"]),
    )
    .expect("static attribute definition is valid");

    Schema::new(vec![
        work_class,
        education,
        marital,
        occupation,
        relationship,
        race,
        sex,
        income,
    ])
    .expect("static schema definition is valid")
}

/// Seeded generator of synthetic Adult-like records.
#[derive(Debug, Clone)]
pub struct AdultSynthesizer {
    n: usize,
}

impl AdultSynthesizer {
    /// Generator for `n` records.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidParameter`] if `n == 0`.
    pub fn new(n: usize) -> Result<Self, DataError> {
        if n == 0 {
            return Err(DataError::invalid("n", "record count must be positive"));
        }
        Ok(AdultSynthesizer { n })
    }

    /// Generator sized like the original Adult data set (32 561 records).
    pub fn paper_sized() -> Self {
        AdultSynthesizer {
            n: ADULT_RECORD_COUNT,
        }
    }

    /// Number of records the generator will produce.
    pub fn record_count(&self) -> usize {
        self.n
    }

    /// Samples the full synthetic data set.
    pub fn generate(&self, rng: &mut impl Rng) -> Dataset {
        let schema = adult_schema();
        let mut columns: Vec<Vec<u32>> = vec![Vec::with_capacity(self.n); schema.len()];
        for _ in 0..self.n {
            let record = sample_record(rng);
            for (col, &v) in columns.iter_mut().zip(record.iter()) {
                col.push(v);
            }
        }
        Dataset::from_columns(schema, columns).expect("generated records always fit the schema")
    }

    /// Samples a single synthetic record (valid for [`adult_schema`]) —
    /// the streaming counterpart of [`AdultSynthesizer::generate`]: a
    /// simulator can draw one client at a time without materializing the
    /// whole data set.
    pub fn sample_record(&self, rng: &mut impl Rng) -> Vec<u32> {
        sample_record(rng).to_vec()
    }
}

/// Samples one record as `[work_class, education, marital, occupation,
/// relationship, race, sex, income]` codes.
fn sample_record(rng: &mut impl Rng) -> [u32; 8] {
    // Sex: roughly the Adult split (about two thirds male).
    let sex = sample_weighted(rng, &[0.67, 0.33]);

    // Education marginal: concentrated on HS-grad / Some-college /
    // Bachelors, thin tails at the extremes, like the real data.
    let education = sample_weighted(
        rng,
        &[
            0.002, 0.005, 0.010, 0.020, 0.016, 0.028, 0.036, 0.013, 0.322, 0.224, 0.042, 0.033,
            0.164, 0.054, 0.018, 0.013,
        ],
    );

    // Marital-status depends on sex and (through education as an age/stage
    // proxy) on educational attainment: men and the more educated are
    // married with a civilian spouse far more often, while the
    // low-attainment group (mostly young respondents in the real data) is
    // dominated by "Never-married".  This mirrors the broad dependence
    // structure of the real Adult, where marital status correlates with
    // almost every other attribute.
    let marital = {
        let education_tier = if education < 8 {
            0
        } else if education < 12 {
            1
        } else {
            2
        };
        match (sex, education_tier) {
            (0, 0) => sample_weighted(rng, &[0.52, 0.33, 0.09, 0.03, 0.01, 0.015, 0.005]),
            (0, 1) => sample_weighted(rng, &[0.27, 0.58, 0.09, 0.03, 0.01, 0.015, 0.005]),
            (0, _) => sample_weighted(rng, &[0.13, 0.75, 0.07, 0.02, 0.01, 0.015, 0.005]),
            (_, 0) => sample_weighted(rng, &[0.62, 0.08, 0.15, 0.06, 0.05, 0.035, 0.005]),
            (_, 1) => sample_weighted(rng, &[0.43, 0.16, 0.22, 0.06, 0.09, 0.035, 0.005]),
            (_, _) => sample_weighted(rng, &[0.30, 0.28, 0.26, 0.05, 0.07, 0.035, 0.005]),
        }
    };

    // Relationship is almost a deterministic function of (marital, sex):
    // married men are husbands, married women are wives, never-married
    // people are mostly own-child or not-in-family, the rest are
    // unmarried/not-in-family.
    let relationship = match (marital, sex) {
        (1, 0) | (6, 0) => sample_weighted(rng, &[0.96, 0.00, 0.01, 0.01, 0.01, 0.01]),
        (1, 1) | (6, 1) => sample_weighted(rng, &[0.00, 0.93, 0.02, 0.02, 0.02, 0.01]),
        (0, _) => sample_weighted(rng, &[0.0, 0.0, 0.62, 0.28, 0.05, 0.05]),
        _ => sample_weighted(rng, &[0.0, 0.0, 0.05, 0.25, 0.06, 0.64]),
    };

    // Occupation depends strongly on education: low attainment maps to
    // manual categories (low codes), high attainment to managerial and
    // professional categories (high codes).  A triangular kernel around the
    // education-implied centre keeps the dependence strong but noisy.
    let occupation = {
        let centre = (education as f64 / 15.0) * 13.0; // target occupation code in 0..=13
        let mut weights = [0.0f64; 15];
        for (code, w) in weights.iter_mut().enumerate().take(14) {
            let dist = code as f64 - centre;
            // Narrow Gaussian kernel with a small floor: occupations close to
            // the education-implied centre dominate, but every occupation
            // stays reachable from every education level.
            *w = (-(dist * dist) / 3.0).exp().max(0.02);
        }
        weights[14] = 0.15; // "Unknown" occupation appears at every education level
        sample_weighted(rng, &weights)
    };

    // Work-class depends on occupation: professional and managerial
    // occupations are far more often government or self-employed, manual
    // occupations are overwhelmingly "Private", protective services and the
    // armed forces lean heavily on government, and an unknown occupation
    // almost always comes with an unknown work-class (as in the real file,
    // where both are "?" together).
    let work_class = if occupation == 14 {
        sample_weighted(
            rng,
            &[0.10, 0.01, 0.01, 0.01, 0.01, 0.01, 0.002, 0.008, 0.95],
        )
    } else if occupation >= 12 {
        sample_weighted(
            rng,
            &[0.47, 0.10, 0.10, 0.07, 0.11, 0.10, 0.002, 0.002, 0.046],
        )
    } else if occupation == 9 || occupation == 11 {
        sample_weighted(
            rng,
            &[0.25, 0.03, 0.02, 0.22, 0.28, 0.15, 0.002, 0.002, 0.046],
        )
    } else if occupation == 3 {
        // Farming and fishing is dominated by self-employment.
        sample_weighted(
            rng,
            &[0.40, 0.38, 0.08, 0.01, 0.03, 0.02, 0.01, 0.002, 0.068],
        )
    } else {
        sample_weighted(
            rng,
            &[0.82, 0.06, 0.02, 0.02, 0.04, 0.02, 0.004, 0.002, 0.014],
        )
    };

    // Race: weakly dependent on everything else (close to the Adult
    // marginals).
    let race = sample_weighted(rng, &[0.854, 0.096, 0.031, 0.010, 0.009]);

    // Income depends on education, occupation, work-class, sex and marital
    // status via a simple log-odds score.  Married, highly educated men in
    // managerial or professional occupations (and the incorporated
    // self-employed) have by far the highest probability of the ">50K"
    // class, matching the well-known structure of the real data.
    let income = {
        let mut score = -2.6f64;
        score += 0.24 * (education as f64 - 8.0); // HS-grad is the pivot
        score += 0.15 * (occupation as f64 - 7.0);
        if sex == 0 {
            score += 0.45;
        }
        if marital == 1 || marital == 6 {
            score += 1.2;
        }
        if work_class == 2 {
            score += 0.8; // incorporated self-employed
        } else if work_class == 6 || work_class == 7 {
            score -= 2.0; // without pay / never worked
        }
        let p_high = 1.0 / (1.0 + (-score).exp());
        if rng.gen::<f64>() < p_high {
            1
        } else {
            0
        }
    };

    [
        work_class,
        education,
        marital,
        occupation,
        relationship,
        race,
        sex,
        income,
    ]
}

/// Samples an index proportionally to the given non-negative weights.
fn sample_weighted(rng: &mut impl Rng, weights: &[f64]) -> u32 {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "weights must not all be zero");
    let mut draw = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        draw -= w;
        if draw <= 0.0 {
            return i as u32;
        }
    }
    (weights.len() - 1) as u32
}

fn to_strings(labels: &[&str]) -> Vec<String> {
    labels.iter().map(|s| s.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdrr_math::ContingencyTable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn schema_matches_paper_cardinalities() {
        let s = adult_schema();
        assert_eq!(s.len(), 8);
        assert_eq!(s.cardinalities(), vec![9, 16, 7, 15, 6, 5, 2, 2]);
        assert_eq!(s.joint_domain_size(), Some(1_814_400));
        assert_eq!(
            s.attribute(AdultAttribute::Education.index())
                .unwrap()
                .name(),
            "Education"
        );
        assert_eq!(
            s.attribute(AdultAttribute::Income.index()).unwrap().name(),
            "Income"
        );
    }

    #[test]
    fn sample_record_matches_schema_and_generator_stream() {
        let synth = AdultSynthesizer::new(10).unwrap();
        let schema = adult_schema();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let record = synth.sample_record(&mut rng);
            assert!(schema.validate_record(&record).is_ok());
        }
        // Drawing records one at a time reproduces generate() exactly.
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let ds = synth.generate(&mut a);
        let streamed: Vec<Vec<u32>> = (0..10).map(|_| synth.sample_record(&mut b)).collect();
        let direct: Vec<Vec<u32>> = ds.records().collect();
        assert_eq!(streamed, direct);
    }

    #[test]
    fn synthesizer_respects_requested_size() {
        let mut rng = StdRng::seed_from_u64(7);
        let ds = AdultSynthesizer::new(500).unwrap().generate(&mut rng);
        assert_eq!(ds.n_records(), 500);
        assert_eq!(ds.n_attributes(), 8);
        assert!(AdultSynthesizer::new(0).is_err());
        assert_eq!(
            AdultSynthesizer::paper_sized().record_count(),
            ADULT_RECORD_COUNT
        );
    }

    #[test]
    fn generation_is_deterministic_for_a_fixed_seed() {
        let a = AdultSynthesizer::new(200)
            .unwrap()
            .generate(&mut StdRng::seed_from_u64(42));
        let b = AdultSynthesizer::new(200)
            .unwrap()
            .generate(&mut StdRng::seed_from_u64(42));
        let c = AdultSynthesizer::new(200)
            .unwrap()
            .generate(&mut StdRng::seed_from_u64(43));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn every_category_of_common_attributes_appears() {
        let mut rng = StdRng::seed_from_u64(11);
        let ds = AdultSynthesizer::new(20_000).unwrap().generate(&mut rng);
        for attr in [
            AdultAttribute::Education,
            AdultAttribute::MaritalStatus,
            AdultAttribute::Relationship,
            AdultAttribute::Sex,
            AdultAttribute::Income,
        ] {
            let counts = ds.marginal_counts(attr.index()).unwrap();
            assert!(
                counts.iter().all(|&c| c > 0),
                "attribute {attr:?} has empty categories: {counts:?}"
            );
        }
    }

    #[test]
    fn dependence_structure_matches_design() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = AdultSynthesizer::new(15_000).unwrap().generate(&mut rng);

        let v = |a: AdultAttribute, b: AdultAttribute| {
            let xs = ds.column(a.index()).unwrap();
            let ys = ds.column(b.index()).unwrap();
            let ca = ds.schema().attribute(a.index()).unwrap().cardinality();
            let cb = ds.schema().attribute(b.index()).unwrap().cardinality();
            ContingencyTable::from_codes(xs, ys, ca, cb)
                .unwrap()
                .cramers_v()
        };

        let marital_relationship = v(AdultAttribute::MaritalStatus, AdultAttribute::Relationship);
        let sex_relationship = v(AdultAttribute::Sex, AdultAttribute::Relationship);
        let education_occupation = v(AdultAttribute::Education, AdultAttribute::Occupation);
        let education_income = v(AdultAttribute::Education, AdultAttribute::Income);
        let race_education = v(AdultAttribute::Race, AdultAttribute::Education);
        let race_income = v(AdultAttribute::Race, AdultAttribute::Income);

        // Strong pairs clearly dominate the near-independent Race pairs.
        assert!(marital_relationship > 0.5, "got {marital_relationship}");
        assert!(sex_relationship > 0.4, "got {sex_relationship}");
        assert!(education_occupation > 0.3, "got {education_occupation}");
        assert!(education_income > 0.2, "got {education_income}");
        assert!(race_education < 0.1, "got {race_education}");
        assert!(race_income < 0.1, "got {race_income}");
        assert!(marital_relationship > race_education * 5.0);
    }

    #[test]
    fn income_is_positively_associated_with_education() {
        let mut rng = StdRng::seed_from_u64(5);
        let ds = AdultSynthesizer::new(20_000).unwrap().generate(&mut rng);
        let edu = ds.column(AdultAttribute::Education.index()).unwrap();
        let inc = ds.column(AdultAttribute::Income.index()).unwrap();

        // Share of ">50K" among low-education vs high-education records.
        let share = |lo: u32, hi: u32| {
            let mut total = 0usize;
            let mut high = 0usize;
            for (&e, &i) in edu.iter().zip(inc.iter()) {
                if e >= lo && e <= hi {
                    total += 1;
                    if i == 1 {
                        high += 1;
                    }
                }
            }
            high as f64 / total.max(1) as f64
        };
        let low_edu = share(0, 7);
        let high_edu = share(12, 15);
        assert!(high_edu > low_edu + 0.2, "high {high_edu} vs low {low_edu}");
    }

    #[test]
    fn generated_codes_are_always_valid() {
        let mut rng = StdRng::seed_from_u64(19);
        let ds = AdultSynthesizer::new(2_000).unwrap().generate(&mut rng);
        for record in ds.records() {
            ds.schema().validate_record(&record).unwrap();
        }
    }
}
