//! Error type for the dataset layer.

use std::fmt;

/// Errors produced while building or manipulating categorical datasets.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// An attribute name was not found in the schema.
    UnknownAttribute {
        /// The name that was looked up.
        name: String,
    },
    /// An attribute index was out of range for the schema.
    AttributeIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of attributes in the schema.
        len: usize,
    },
    /// A category code or label was invalid for an attribute.
    InvalidCategory {
        /// Attribute the category belongs to.
        attribute: String,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A record had the wrong number of values for the schema.
    RecordArityMismatch {
        /// Number of values in the record.
        got: usize,
        /// Number of attributes in the schema.
        expected: usize,
    },
    /// Two datasets or schemas that must agree do not.
    SchemaMismatch {
        /// Description of the discrepancy.
        message: String,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Description of the constraint that was violated.
        message: String,
    },
    /// A CSV line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An I/O error occurred while reading or writing a dataset file.
    Io {
        /// Stringified `std::io::Error` (kept as a string so the error type
        /// stays `Clone + PartialEq`).
        message: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownAttribute { name } => write!(f, "unknown attribute `{name}`"),
            DataError::AttributeIndexOutOfRange { index, len } => {
                write!(
                    f,
                    "attribute index {index} out of range (schema has {len} attributes)"
                )
            }
            DataError::InvalidCategory { attribute, message } => {
                write!(f, "invalid category for attribute `{attribute}`: {message}")
            }
            DataError::RecordArityMismatch { got, expected } => {
                write!(
                    f,
                    "record has {got} values but the schema has {expected} attributes"
                )
            }
            DataError::SchemaMismatch { message } => write!(f, "schema mismatch: {message}"),
            DataError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            DataError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            DataError::Io { message } => write!(f, "I/O error: {message}"),
        }
    }
}

impl std::error::Error for DataError {}

impl DataError {
    /// Convenience constructor for [`DataError::InvalidParameter`].
    pub fn invalid(name: &'static str, message: impl Into<String>) -> Self {
        DataError::InvalidParameter {
            name,
            message: message.into(),
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(err: std::io::Error) -> Self {
        DataError::Io {
            message: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_details() {
        assert!(DataError::UnknownAttribute { name: "Age".into() }
            .to_string()
            .contains("Age"));
        assert!(DataError::AttributeIndexOutOfRange { index: 9, len: 8 }
            .to_string()
            .contains('9'));
        assert!(DataError::RecordArityMismatch {
            got: 3,
            expected: 8
        }
        .to_string()
        .contains('3'));
        assert!(DataError::invalid("p", "must be in [0,1]")
            .to_string()
            .contains("`p`"));
        assert!(DataError::Parse {
            line: 12,
            message: "bad".into()
        }
        .to_string()
        .contains("12"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: DataError = io.into();
        assert!(err.to_string().contains("missing"));
    }
}
