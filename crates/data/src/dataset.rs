//! Categorical microdata sets.
//!
//! A [`Dataset`] is an `n × m` table of category codes together with its
//! [`Schema`].  Storage is column-major (`columns[j][i]` is the code of
//! record `i` for attribute `j`) because every protocol in the paper either
//! works attribute-by-attribute (RR-Independent, dependence estimation) or
//! cluster-by-cluster (RR-Clusters), so column access dominates.
//!
//! The type also provides the frequency-counting primitives the estimators
//! need: marginal counts/distributions per attribute, joint counts over an
//! arbitrary subset of attributes (via the mixed-radix [`JointDomain`]),
//! and count queries over value combinations — the workload of the paper's
//! Section 6.5.

use crate::domain::JointDomain;
use crate::error::DataError;
use crate::schema::Schema;
use crate::view::RecordsView;
use serde::{Deserialize, Serialize};

/// An `n`-record categorical microdata set over a fixed schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    schema: Schema,
    /// Column-major storage: `columns[j][i]` is record `i`'s code for
    /// attribute `j`.  All columns have the same length.
    columns: Vec<Vec<u32>>,
}

impl Dataset {
    /// Creates an empty dataset over `schema`.
    pub fn empty(schema: Schema) -> Self {
        let columns = vec![Vec::new(); schema.len()];
        Dataset { schema, columns }
    }

    /// Builds a dataset from row-major records, validating every record
    /// against the schema.
    ///
    /// # Errors
    /// Returns the first validation error encountered.
    pub fn from_records(schema: Schema, records: &[Vec<u32>]) -> Result<Self, DataError> {
        let mut ds = Dataset::empty(schema);
        for r in records {
            ds.push_record(r)?;
        }
        Ok(ds)
    }

    /// Builds a dataset directly from column-major data.
    ///
    /// # Errors
    /// Returns [`DataError::SchemaMismatch`] if the number of columns does
    /// not match the schema or columns have differing lengths, and
    /// [`DataError::InvalidCategory`] if a code is out of range.
    pub fn from_columns(schema: Schema, columns: Vec<Vec<u32>>) -> Result<Self, DataError> {
        if columns.len() != schema.len() {
            return Err(DataError::SchemaMismatch {
                message: format!(
                    "{} columns provided but the schema has {} attributes",
                    columns.len(),
                    schema.len()
                ),
            });
        }
        let n = columns.first().map(Vec::len).unwrap_or(0);
        for (j, col) in columns.iter().enumerate() {
            if col.len() != n {
                return Err(DataError::SchemaMismatch {
                    message: format!("column {j} has {} values but column 0 has {n}", col.len()),
                });
            }
            let attribute = schema.attribute(j)?;
            if let Some(&bad) = col.iter().find(|&&v| !attribute.contains_code(v)) {
                return Err(DataError::InvalidCategory {
                    attribute: attribute.name().to_string(),
                    message: format!(
                        "code {bad} out of range (cardinality {})",
                        attribute.cardinality()
                    ),
                });
            }
        }
        Ok(Dataset { schema, columns })
    }

    /// Appends a record (row of codes).
    ///
    /// # Errors
    /// Returns a validation error if the record does not fit the schema.
    pub fn push_record(&mut self, record: &[u32]) -> Result<(), DataError> {
        self.schema.validate_record(record)?;
        for (col, &v) in self.columns.iter_mut().zip(record.iter()) {
            col.push(v);
        }
        Ok(())
    }

    /// The schema of the dataset.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of records (`n` in the paper).
    pub fn n_records(&self) -> usize {
        self.columns.first().map(Vec::len).unwrap_or(0)
    }

    /// Number of attributes (`m` in the paper).
    pub fn n_attributes(&self) -> usize {
        self.schema.len()
    }

    /// Whether the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.n_records() == 0
    }

    /// The column of codes for attribute `index`.
    ///
    /// # Errors
    /// Returns [`DataError::AttributeIndexOutOfRange`] for a bad index.
    pub fn column(&self, index: usize) -> Result<&[u32], DataError> {
        self.columns
            .get(index)
            .map(Vec::as_slice)
            .ok_or(DataError::AttributeIndexOutOfRange {
                index,
                len: self.columns.len(),
            })
    }

    /// The record at position `i` as a row of codes.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidParameter`] if `i >= n_records()`.
    pub fn record(&self, i: usize) -> Result<Vec<u32>, DataError> {
        if i >= self.n_records() {
            return Err(DataError::invalid(
                "record",
                format!(
                    "record index {i} out of range ({} records)",
                    self.n_records()
                ),
            ));
        }
        Ok(self.columns.iter().map(|c| c[i]).collect())
    }

    /// Iterator over records as rows of codes.
    ///
    /// **Note:** every item is a freshly allocated `Vec<u32>`, which makes
    /// this iterator unsuitable for bulk work — prefer the zero-copy
    /// columnar [`Dataset::view`] / [`Dataset::column_chunks`] (or
    /// [`RecordsView::read_record`] into a reused row buffer when a
    /// row-major record is unavoidable).  Kept for small result sets and
    /// tests.
    pub fn records(&self) -> impl Iterator<Item = Vec<u32>> + '_ {
        (0..self.n_records()).map(move |i| self.columns.iter().map(|c| c[i]).collect())
    }

    /// The whole dataset as a borrowed columnar [`RecordsView`] — the
    /// zero-copy input of the batched protocol encoders.
    pub fn view(&self) -> RecordsView<'_> {
        let columns: Vec<&[u32]> = self.columns.iter().map(Vec::as_slice).collect();
        RecordsView::new(columns).expect("dataset columns are equal-length by construction")
    }

    /// Iterator over columnar chunk views of at most `chunk_size` records —
    /// the bulk sibling of [`Dataset::record_chunks`] that never
    /// materializes row-major records (each chunk is a set of column
    /// sub-slices; no copying at all).  The last chunk may be shorter; an
    /// empty dataset yields no chunks.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidParameter`] if `chunk_size == 0`.
    pub fn column_chunks(
        &self,
        chunk_size: usize,
    ) -> Result<impl Iterator<Item = RecordsView<'_>> + '_, DataError> {
        if chunk_size == 0 {
            return Err(DataError::invalid("chunk_size", "must be positive"));
        }
        let n = self.n_records();
        let view = self.view();
        Ok((0..n).step_by(chunk_size).map(move |start| {
            let end = (start + chunk_size).min(n);
            view.slice(start..end)
                .expect("chunk ranges are in bounds by construction")
        }))
    }

    /// Iterator over row-major chunks of at most `chunk_size` records.
    /// The last chunk may be shorter; an empty dataset yields no chunks.
    ///
    /// **Note:** every chunk allocates one `Vec<u32>` per record, which
    /// is why the streaming pipeline no longer uses this — its shard
    /// workers consume zero-copy columnar [`Dataset::column_chunks`] /
    /// [`RecordsView`] slices instead.  Kept for row-oriented consumers
    /// and tests.
    ///
    /// # Errors
    /// Returns [`DataError::InvalidParameter`] if `chunk_size == 0`.
    pub fn record_chunks(
        &self,
        chunk_size: usize,
    ) -> Result<impl Iterator<Item = Vec<Vec<u32>>> + '_, DataError> {
        if chunk_size == 0 {
            return Err(DataError::invalid("chunk_size", "must be positive"));
        }
        let n = self.n_records();
        Ok((0..n).step_by(chunk_size).map(move |start| {
            let end = (start + chunk_size).min(n);
            (start..end)
                .map(|i| self.columns.iter().map(|c| c[i]).collect())
                .collect()
        }))
    }

    /// Absolute counts of each category of attribute `index`.
    ///
    /// # Errors
    /// Returns [`DataError::AttributeIndexOutOfRange`] for a bad index.
    pub fn marginal_counts(&self, index: usize) -> Result<Vec<u64>, DataError> {
        let attribute = self.schema.attribute(index)?;
        let mut counts = vec![0u64; attribute.cardinality()];
        for &v in self.column(index)? {
            counts[v as usize] += 1;
        }
        Ok(counts)
    }

    /// Relative frequencies of each category of attribute `index`
    /// (the empirical `λ̂_j` / `π_j` vector).  Uniform over the categories
    /// when the dataset is empty.
    ///
    /// # Errors
    /// Returns [`DataError::AttributeIndexOutOfRange`] for a bad index.
    pub fn marginal_distribution(&self, index: usize) -> Result<Vec<f64>, DataError> {
        let counts = self.marginal_counts(index)?;
        let n = self.n_records();
        if n == 0 {
            let r = counts.len();
            return Ok(vec![1.0 / r as f64; r]);
        }
        Ok(counts.into_iter().map(|c| c as f64 / n as f64).collect())
    }

    /// Joint domain codec over the attributes at `indices` (in that order).
    ///
    /// # Errors
    /// Returns [`DataError::AttributeIndexOutOfRange`] for a bad index or
    /// an overflow error for absurdly large domains.
    pub fn joint_domain(&self, indices: &[usize]) -> Result<JointDomain, DataError> {
        let mut cards = Vec::with_capacity(indices.len());
        for &i in indices {
            cards.push(self.schema.attribute(i)?.cardinality());
        }
        JointDomain::new(&cards)
    }

    /// Column of joint codes over the attributes at `indices`: record `i`
    /// maps to `domain.encode([record[i][j] for j in indices])`.
    ///
    /// This is the "view a cluster of attributes as one attribute"
    /// operation that RR-Joint and RR-Clusters rely on.
    ///
    /// # Errors
    /// Returns [`DataError::AttributeIndexOutOfRange`] for a bad index.
    pub fn joint_codes(&self, indices: &[usize]) -> Result<(JointDomain, Vec<u32>), DataError> {
        let domain = self.joint_domain(indices)?;
        let cols: Vec<&[u32]> = indices
            .iter()
            .map(|&i| self.column(i))
            .collect::<Result<_, _>>()?;
        let n = self.n_records();
        let mut codes = Vec::with_capacity(n);
        let mut tuple = vec![0u32; indices.len()];
        for i in 0..n {
            for (t, col) in tuple.iter_mut().zip(cols.iter()) {
                *t = col[i];
            }
            let code = domain.encode(&tuple)?;
            codes.push(code as u32);
        }
        Ok((domain, codes))
    }

    /// Absolute counts over the joint domain of the attributes at `indices`.
    ///
    /// # Errors
    /// Returns [`DataError::AttributeIndexOutOfRange`] for a bad index.
    pub fn joint_counts(&self, indices: &[usize]) -> Result<(JointDomain, Vec<u64>), DataError> {
        let (domain, codes) = self.joint_codes(indices)?;
        let mut counts = vec![0u64; domain.size()];
        for c in codes {
            counts[c as usize] += 1;
        }
        Ok((domain, counts))
    }

    /// Relative frequencies over the joint domain of the attributes at
    /// `indices`.
    ///
    /// # Errors
    /// Returns [`DataError::AttributeIndexOutOfRange`] for a bad index.
    pub fn joint_distribution(
        &self,
        indices: &[usize],
    ) -> Result<(JointDomain, Vec<f64>), DataError> {
        let (domain, counts) = self.joint_counts(indices)?;
        let n = self.n_records();
        let dist = if n == 0 {
            vec![1.0 / domain.size() as f64; domain.size()]
        } else {
            counts.into_iter().map(|c| c as f64 / n as f64).collect()
        };
        Ok((domain, dist))
    }

    /// Number of records matching every `(attribute index, code)` constraint
    /// in `assignment`.  This is the ground-truth side of the count queries
    /// used in the evaluation (Section 6.5, `X_S`).
    ///
    /// # Errors
    /// Returns [`DataError::AttributeIndexOutOfRange`] or
    /// [`DataError::InvalidCategory`] for bad constraints.
    pub fn count_matching(&self, assignment: &[(usize, u32)]) -> Result<u64, DataError> {
        let mut cols = Vec::with_capacity(assignment.len());
        for &(idx, code) in assignment {
            let attribute = self.schema.attribute(idx)?;
            if !attribute.contains_code(code) {
                return Err(DataError::InvalidCategory {
                    attribute: attribute.name().to_string(),
                    message: format!(
                        "code {code} out of range (cardinality {})",
                        attribute.cardinality()
                    ),
                });
            }
            cols.push((self.column(idx)?, code));
        }
        let n = self.n_records();
        let mut count = 0u64;
        for i in 0..n {
            if cols.iter().all(|(col, code)| col[i] == *code) {
                count += 1;
            }
        }
        Ok(count)
    }

    /// Concatenates two datasets over the same schema (used to build the
    /// paper's Adult6 = Adult repeated 6 times).
    ///
    /// # Errors
    /// Returns [`DataError::SchemaMismatch`] if the schemas differ.
    pub fn concat(&self, other: &Dataset) -> Result<Dataset, DataError> {
        if self.schema != other.schema {
            return Err(DataError::SchemaMismatch {
                message: "cannot concatenate datasets with different schemas".to_string(),
            });
        }
        let mut columns = self.columns.clone();
        for (col, other_col) in columns.iter_mut().zip(other.columns.iter()) {
            col.extend_from_slice(other_col);
        }
        Ok(Dataset {
            schema: self.schema.clone(),
            columns,
        })
    }

    /// The dataset repeated `times` times (Adult6 is `adult.repeat(6)`).
    ///
    /// # Errors
    /// Returns [`DataError::InvalidParameter`] if `times == 0`.
    pub fn repeat(&self, times: usize) -> Result<Dataset, DataError> {
        if times == 0 {
            return Err(DataError::invalid(
                "times",
                "repetition count must be positive",
            ));
        }
        let columns = self
            .columns
            .iter()
            .map(|col| {
                let mut out = Vec::with_capacity(col.len() * times);
                for _ in 0..times {
                    out.extend_from_slice(col);
                }
                out
            })
            .collect();
        Ok(Dataset {
            schema: self.schema.clone(),
            columns,
        })
    }

    /// Projects the dataset onto the attributes at `indices` (in that
    /// order), keeping all records.
    ///
    /// # Errors
    /// Returns [`DataError::AttributeIndexOutOfRange`] for a bad index.
    pub fn project(&self, indices: &[usize]) -> Result<Dataset, DataError> {
        let schema = self.schema.project(indices)?;
        let mut columns = Vec::with_capacity(indices.len());
        for &i in indices {
            columns.push(self.column(i)?.to_vec());
        }
        Ok(Dataset { schema, columns })
    }

    /// Keeps only the first `n` records (or all of them if `n` exceeds the
    /// record count).  Useful for scaled-down experiment runs.
    pub fn truncate(&self, n: usize) -> Dataset {
        let columns = self
            .columns
            .iter()
            .map(|col| col.iter().take(n).copied().collect())
            .collect();
        Dataset {
            schema: self.schema.clone(),
            columns,
        }
    }

    /// Replaces the column of attribute `index` with `values` (same length
    /// as the dataset).  This is how protocols materialise randomized
    /// datasets column by column.
    ///
    /// # Errors
    /// * [`DataError::AttributeIndexOutOfRange`] for a bad index;
    /// * [`DataError::SchemaMismatch`] for a length mismatch;
    /// * [`DataError::InvalidCategory`] for an out-of-range code.
    pub fn replace_column(&mut self, index: usize, values: Vec<u32>) -> Result<(), DataError> {
        let attribute = self.schema.attribute(index)?.clone();
        if values.len() != self.n_records() {
            return Err(DataError::SchemaMismatch {
                message: format!(
                    "replacement column has {} values but the dataset has {} records",
                    values.len(),
                    self.n_records()
                ),
            });
        }
        if let Some(&bad) = values.iter().find(|&&v| !attribute.contains_code(v)) {
            return Err(DataError::InvalidCategory {
                attribute: attribute.name().to_string(),
                message: format!(
                    "code {bad} out of range (cardinality {})",
                    attribute.cardinality()
                ),
            });
        }
        self.columns[index] = values;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, AttributeKind};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("A", AttributeKind::Nominal, vec!["a0".into(), "a1".into()]).unwrap(),
            Attribute::new(
                "B",
                AttributeKind::Ordinal,
                vec!["b0".into(), "b1".into(), "b2".into()],
            )
            .unwrap(),
        ])
        .unwrap()
    }

    fn sample() -> Dataset {
        Dataset::from_records(
            schema(),
            &[vec![0, 0], vec![0, 1], vec![1, 2], vec![1, 2], vec![0, 2]],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_basic_accessors() {
        let ds = sample();
        assert_eq!(ds.n_records(), 5);
        assert_eq!(ds.n_attributes(), 2);
        assert!(!ds.is_empty());
        assert_eq!(ds.record(2).unwrap(), vec![1, 2]);
        assert!(ds.record(5).is_err());
        assert_eq!(ds.column(0).unwrap(), &[0, 0, 1, 1, 0]);
        assert!(ds.column(2).is_err());
        let rows: Vec<Vec<u32>> = ds.records().collect();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[4], vec![0, 2]);
    }

    #[test]
    fn push_record_validates() {
        let mut ds = Dataset::empty(schema());
        assert!(ds.push_record(&[0, 1]).is_ok());
        assert!(ds.push_record(&[0]).is_err());
        assert!(ds.push_record(&[2, 0]).is_err());
        assert_eq!(ds.n_records(), 1);
    }

    #[test]
    fn from_columns_validates() {
        let ok = Dataset::from_columns(schema(), vec![vec![0, 1], vec![2, 0]]).unwrap();
        assert_eq!(ok.n_records(), 2);
        assert!(Dataset::from_columns(schema(), vec![vec![0, 1]]).is_err());
        assert!(Dataset::from_columns(schema(), vec![vec![0, 1], vec![2]]).is_err());
        assert!(Dataset::from_columns(schema(), vec![vec![0, 9], vec![2, 0]]).is_err());
    }

    #[test]
    fn marginal_counts_and_distribution() {
        let ds = sample();
        assert_eq!(ds.marginal_counts(0).unwrap(), vec![3, 2]);
        assert_eq!(ds.marginal_counts(1).unwrap(), vec![1, 1, 3]);
        let dist = ds.marginal_distribution(1).unwrap();
        assert!((dist[2] - 0.6).abs() < 1e-12);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_distribution_is_uniform() {
        let ds = Dataset::empty(schema());
        let dist = ds.marginal_distribution(1).unwrap();
        assert_eq!(dist, vec![1.0 / 3.0; 3]);
    }

    #[test]
    fn joint_counts_and_codes() {
        let ds = sample();
        let (domain, counts) = ds.joint_counts(&[0, 1]).unwrap();
        assert_eq!(domain.size(), 6);
        // Records: (0,0) (0,1) (1,2) (1,2) (0,2)
        assert_eq!(counts[domain.encode(&[0, 0]).unwrap()], 1);
        assert_eq!(counts[domain.encode(&[0, 1]).unwrap()], 1);
        assert_eq!(counts[domain.encode(&[1, 2]).unwrap()], 2);
        assert_eq!(counts[domain.encode(&[0, 2]).unwrap()], 1);
        assert_eq!(counts.iter().sum::<u64>(), 5);

        let (_, dist) = ds.joint_distribution(&[0, 1]).unwrap();
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn joint_codes_respect_attribute_order() {
        let ds = sample();
        let (d_ab, codes_ab) = ds.joint_codes(&[0, 1]).unwrap();
        let (d_ba, codes_ba) = ds.joint_codes(&[1, 0]).unwrap();
        assert_eq!(d_ab.size(), d_ba.size());
        // Record 0 is (A=0, B=0): code 0 under both orders.
        assert_eq!(codes_ab[0], 0);
        assert_eq!(codes_ba[0], 0);
        // Record 2 is (A=1, B=2): code 1*3+2=5 under [A,B], 2*2+1=5 under [B,A].
        assert_eq!(codes_ab[2], 5);
        assert_eq!(codes_ba[2], 5);
    }

    #[test]
    fn record_chunks_cover_all_records_in_order() {
        let ds = sample();
        assert!(ds.record_chunks(0).is_err());

        let chunks: Vec<Vec<Vec<u32>>> = ds.record_chunks(2).unwrap().collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 2);
        assert_eq!(chunks[2].len(), 1);
        let flattened: Vec<Vec<u32>> = chunks.into_iter().flatten().collect();
        let direct: Vec<Vec<u32>> = ds.records().collect();
        assert_eq!(flattened, direct);

        // A chunk size beyond the record count yields a single chunk.
        assert_eq!(ds.record_chunks(100).unwrap().count(), 1);
        // An empty dataset yields no chunks at all.
        let empty = Dataset::empty(schema());
        assert_eq!(empty.record_chunks(4).unwrap().count(), 0);
    }

    #[test]
    fn count_matching_queries() {
        let ds = sample();
        assert_eq!(ds.count_matching(&[(0, 1)]).unwrap(), 2);
        assert_eq!(ds.count_matching(&[(1, 2)]).unwrap(), 3);
        assert_eq!(ds.count_matching(&[(0, 1), (1, 2)]).unwrap(), 2);
        assert_eq!(ds.count_matching(&[(0, 0), (1, 2)]).unwrap(), 1);
        assert_eq!(ds.count_matching(&[]).unwrap(), 5);
        assert!(ds.count_matching(&[(9, 0)]).is_err());
        assert!(ds.count_matching(&[(0, 9)]).is_err());
    }

    #[test]
    fn concat_and_repeat() {
        let ds = sample();
        let doubled = ds.concat(&ds).unwrap();
        assert_eq!(doubled.n_records(), 10);
        assert_eq!(doubled.marginal_counts(0).unwrap(), vec![6, 4]);

        let six = ds.repeat(6).unwrap();
        assert_eq!(six.n_records(), 30);
        assert_eq!(six.marginal_counts(1).unwrap(), vec![6, 6, 18]);
        assert!(ds.repeat(0).is_err());

        let other_schema = Schema::new(vec![Attribute::indexed("X", 2).unwrap()]).unwrap();
        let other = Dataset::empty(other_schema);
        assert!(ds.concat(&other).is_err());
    }

    #[test]
    fn repeat_preserves_distribution() {
        let ds = sample();
        let six = ds.repeat(6).unwrap();
        assert_eq!(
            ds.marginal_distribution(0).unwrap(),
            six.marginal_distribution(0).unwrap()
        );
        assert_eq!(
            ds.joint_distribution(&[0, 1]).unwrap().1,
            six.joint_distribution(&[0, 1]).unwrap().1
        );
    }

    #[test]
    fn projection_and_truncation() {
        let ds = sample();
        let p = ds.project(&[1]).unwrap();
        assert_eq!(p.n_attributes(), 1);
        assert_eq!(p.column(0).unwrap(), ds.column(1).unwrap());
        assert!(ds.project(&[4]).is_err());

        let t = ds.truncate(2);
        assert_eq!(t.n_records(), 2);
        let t_all = ds.truncate(100);
        assert_eq!(t_all.n_records(), 5);
    }

    #[test]
    fn replace_column_validates() {
        let mut ds = sample();
        ds.replace_column(0, vec![1, 1, 1, 1, 1]).unwrap();
        assert_eq!(ds.marginal_counts(0).unwrap(), vec![0, 5]);
        assert!(ds.replace_column(0, vec![0, 0]).is_err());
        assert!(ds.replace_column(0, vec![7, 0, 0, 0, 0]).is_err());
        assert!(ds.replace_column(9, vec![0, 0, 0, 0, 0]).is_err());
    }
}
