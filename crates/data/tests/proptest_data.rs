//! Property-based tests for the dataset layer.

use mdrr_data::{Attribute, AttributeKind, Dataset, JointDomain, Schema};
use proptest::prelude::*;

/// Strategy for a small schema (2–4 attributes, cardinalities 2–6).
fn schema_strategy() -> impl Strategy<Value = Schema> {
    prop::collection::vec(2usize..7, 2..5).prop_map(|cards| {
        let attrs = cards
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let kind = if i % 2 == 0 {
                    AttributeKind::Nominal
                } else {
                    AttributeKind::Ordinal
                };
                let cats = (0..c).map(|k| format!("c{k}")).collect();
                Attribute::new(format!("A{i}"), kind, cats).unwrap()
            })
            .collect();
        Schema::new(attrs).unwrap()
    })
}

/// Strategy for a schema plus a set of valid records over it.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (schema_strategy(), 1usize..120, any::<u64>()).prop_map(|(schema, n, seed)| {
        // Simple deterministic record filler driven by the seed.
        let cards = schema.cardinalities();
        let mut ds = Dataset::empty(schema);
        let mut state = seed | 1;
        for _ in 0..n {
            let record: Vec<u32> = cards
                .iter()
                .map(|&c| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) % c as u64) as u32
                })
                .collect();
            ds.push_record(&record).unwrap();
        }
        ds
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn joint_domain_codec_is_a_bijection(cards in prop::collection::vec(1usize..8, 1..5)) {
        let domain = JointDomain::new(&cards).unwrap();
        let mut seen = vec![false; domain.size()];
        for tuple in domain.iter() {
            let code = domain.encode(&tuple).unwrap();
            prop_assert!(!seen[code], "code {code} produced twice");
            seen[code] = true;
            prop_assert_eq!(domain.decode(code).unwrap(), tuple);
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn marginal_counts_sum_to_record_count(ds in dataset_strategy()) {
        for j in 0..ds.n_attributes() {
            let counts = ds.marginal_counts(j).unwrap();
            prop_assert_eq!(counts.iter().sum::<u64>() as usize, ds.n_records());
            let dist = ds.marginal_distribution(j).unwrap();
            prop_assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn joint_counts_are_consistent_with_marginals(ds in dataset_strategy()) {
        // Summing the joint counts of (0, 1) over attribute 1 recovers the
        // marginal counts of attribute 0.
        let (domain, joint) = ds.joint_counts(&[0, 1]).unwrap();
        let card0 = ds.schema().attribute(0).unwrap().cardinality();
        let card1 = ds.schema().attribute(1).unwrap().cardinality();
        let mut recovered = vec![0u64; card0];
        for a in 0..card0 {
            for b in 0..card1 {
                recovered[a] += joint[domain.encode(&[a as u32, b as u32]).unwrap()];
            }
        }
        prop_assert_eq!(recovered, ds.marginal_counts(0).unwrap());
    }

    #[test]
    fn count_matching_agrees_with_joint_counts(ds in dataset_strategy()) {
        let (domain, joint) = ds.joint_counts(&[0, 1]).unwrap();
        for tuple in domain.iter().take(12) {
            let count = ds.count_matching(&[(0, tuple[0]), (1, tuple[1])]).unwrap();
            prop_assert_eq!(count, joint[domain.encode(&tuple).unwrap()]);
        }
    }

    #[test]
    fn csv_roundtrip_preserves_dataset(ds in dataset_strategy()) {
        let mut buf = Vec::new();
        mdrr_data::csv::write_csv(&ds, &mut buf).unwrap();
        let back = mdrr_data::csv::read_csv(ds.schema().clone(), buf.as_slice()).unwrap();
        prop_assert_eq!(back, ds);
    }

    #[test]
    fn repeat_scales_counts_linearly(ds in dataset_strategy(), k in 1usize..5) {
        let repeated = ds.repeat(k).unwrap();
        prop_assert_eq!(repeated.n_records(), ds.n_records() * k);
        for j in 0..ds.n_attributes() {
            let base = ds.marginal_counts(j).unwrap();
            let scaled: Vec<u64> = base.iter().map(|c| c * k as u64).collect();
            prop_assert_eq!(repeated.marginal_counts(j).unwrap(), scaled);
        }
    }

    #[test]
    fn projection_keeps_columns_intact(ds in dataset_strategy()) {
        let last = ds.n_attributes() - 1;
        let projected = ds.project(&[last, 0]).unwrap();
        prop_assert_eq!(projected.n_attributes(), 2);
        prop_assert_eq!(projected.column(0).unwrap(), ds.column(last).unwrap());
        prop_assert_eq!(projected.column(1).unwrap(), ds.column(0).unwrap());
    }
}
