//! Typed errors of the snapshot store.
//!
//! Every way a snapshot can fail to round-trip has its own
//! [`StoreError`] variant, so callers (and the corruption tests) can
//! distinguish a truncated file from a flipped byte from a spec mismatch
//! without parsing messages.  Nothing in this crate panics on malformed
//! input.

use mdrr_protocols::MdrrError;
use std::fmt;
use std::io;

/// Whether an I/O failure is worth retrying.
///
/// The store's retry layer ([`crate::RetryPolicy`]) retries
/// [`IoClass::Transient`] failures with bounded exponential backoff and
/// gives up immediately on [`IoClass::Permanent`] ones.  The class is
/// derived from the OS error kind by default ([`IoClass::classify`]) and
/// can be forced by fault-injecting backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoClass {
    /// The operation may well succeed if simply re-executed (interrupted
    /// syscall, timeout, resource temporarily unavailable).
    Transient,
    /// Retrying is pointless (missing file, permission denied, disk
    /// full-style invariants, corruption).
    Permanent,
}

impl IoClass {
    /// The default class of an OS error: interrupted / would-block /
    /// timed-out failures are transient, everything else permanent.
    pub fn classify(kind: io::ErrorKind) -> IoClass {
        match kind {
            io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
                IoClass::Transient
            }
            _ => IoClass::Permanent,
        }
    }
}

impl fmt::Display for IoClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoClass::Transient => write!(f, "transient"),
            IoClass::Permanent => write!(f, "permanent"),
        }
    }
}

/// Errors produced by the snapshot store.
///
/// ```
/// use mdrr_store::{Snapshot, StoreError};
///
/// // Three stray bytes are not a snapshot: the reader reports a typed
/// // error instead of panicking.
/// match Snapshot::from_bytes(&[0u8; 3]) {
///     Err(StoreError::Truncated { .. }) => {}
///     other => panic!("expected Truncated, got {other:?}"),
/// }
/// ```
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure (open, read, write, rename, sync).
    Io {
        /// What the store was doing when the failure happened.
        context: String,
        /// Whether re-executing the operation could succeed — the retry
        /// layer only retries [`IoClass::Transient`] failures.
        class: IoClass,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// The file does not start with the `MDRRSNAP` magic bytes — it is not
    /// a snapshot at all (or its first bytes were corrupted).
    BadMagic {
        /// The eight bytes actually found.
        found: [u8; 8],
    },
    /// The snapshot declares a format version this reader does not
    /// implement.  Readers must reject unknown versions rather than guess.
    UnsupportedVersion {
        /// The version the file declares.
        found: u32,
        /// The version this reader implements.
        supported: u32,
    },
    /// The file ends before the declared structure does (a partial write
    /// or a truncation).
    Truncated {
        /// Byte offset at which more data was needed.
        offset: usize,
        /// How many more bytes the structure required.
        needed: usize,
        /// How many bytes were actually available.
        available: usize,
    },
    /// The trailing checksum does not match the file contents — some byte
    /// between the magic and the checksum was altered.
    ChecksumMismatch {
        /// The checksum stored in the file.
        stored: u64,
        /// The checksum computed over the file contents.
        computed: u64,
    },
    /// The embedded header JSON is not valid UTF-8 / JSON, or its fields
    /// are inconsistent with the binary section.
    InvalidHeader {
        /// Description of the problem.
        message: String,
    },
    /// The count section violates the format's structural invariants
    /// (no channels, an oversized channel, counts that do not sum to the
    /// declared record count).
    InvalidLayout {
        /// Description of the violated invariant.
        message: String,
    },
    /// Two snapshots were asked to merge but describe different protocols,
    /// schemas or channel layouts.
    SpecMismatch {
        /// Description of the incompatibility.
        message: String,
    },
    /// Merging would overflow a `u64` count or the `u64` record total.
    CountOverflow {
        /// Channel index of the overflowing cell, if any.
        channel: Option<usize>,
    },
}

impl StoreError {
    /// Convenience constructor for [`StoreError::Io`].
    ///
    /// ```
    /// let e = mdrr_store::StoreError::io(
    ///     "open snapshot",
    ///     std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
    /// );
    /// assert!(e.to_string().contains("open snapshot"));
    /// ```
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        StoreError::Io {
            context: context.into(),
            class: IoClass::classify(source.kind()),
            source,
        }
    }

    /// An I/O error forced to the transient class (retry-worthy),
    /// regardless of what [`IoClass::classify`] would say.
    ///
    /// ```
    /// let e = mdrr_store::StoreError::io_transient(
    ///     "write shard file",
    ///     std::io::Error::other("injected"),
    /// );
    /// assert!(e.is_transient());
    /// ```
    pub fn io_transient(context: impl Into<String>, source: io::Error) -> Self {
        StoreError::Io {
            context: context.into(),
            class: IoClass::Transient,
            source,
        }
    }

    /// An I/O error forced to the permanent class (never retried).
    ///
    /// ```
    /// let e = mdrr_store::StoreError::io_permanent(
    ///     "sync shard file",
    ///     std::io::Error::new(std::io::ErrorKind::Interrupted, "injected"),
    /// );
    /// assert!(!e.is_transient());
    /// ```
    pub fn io_permanent(context: impl Into<String>, source: io::Error) -> Self {
        StoreError::Io {
            context: context.into(),
            class: IoClass::Permanent,
            source,
        }
    }

    /// Whether this error is a transient I/O failure, i.e. one the retry
    /// layer is allowed to re-execute.  Every non-I/O store error
    /// (corruption, layout, spec mismatch) is permanent by definition.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            StoreError::Io {
                class: IoClass::Transient,
                ..
            }
        )
    }

    /// Convenience constructor for [`StoreError::InvalidHeader`].
    ///
    /// ```
    /// let e = mdrr_store::StoreError::header("spec JSON does not parse");
    /// assert!(e.to_string().contains("spec JSON"));
    /// ```
    pub fn header(message: impl Into<String>) -> Self {
        StoreError::InvalidHeader {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`StoreError::InvalidLayout`].
    ///
    /// ```
    /// let e = mdrr_store::StoreError::layout("channel 2 sums to 9, not 10");
    /// assert!(e.to_string().contains("channel 2"));
    /// ```
    pub fn layout(message: impl Into<String>) -> Self {
        StoreError::InvalidLayout {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`StoreError::SpecMismatch`].
    ///
    /// ```
    /// let e = mdrr_store::StoreError::spec_mismatch("different clusterings");
    /// assert!(e.to_string().contains("clusterings"));
    /// ```
    pub fn spec_mismatch(message: impl Into<String>) -> Self {
        StoreError::SpecMismatch {
            message: message.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io {
                context,
                class,
                source,
            } => write!(f, "{class} i/o error ({context}): {source}"),
            StoreError::BadMagic { found } => {
                write!(f, "not a snapshot: bad magic bytes {found:02x?}")
            }
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this reader implements {supported})"
            ),
            StoreError::Truncated {
                offset,
                needed,
                available,
            } => write!(
                f,
                "truncated snapshot: needed {needed} bytes at offset {offset}, only {available} available"
            ),
            StoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: file stores {stored:#018x} but contents hash to {computed:#018x}"
            ),
            StoreError::InvalidHeader { message } => write!(f, "invalid snapshot header: {message}"),
            StoreError::InvalidLayout { message } => write!(f, "invalid snapshot layout: {message}"),
            StoreError::SpecMismatch { message } => {
                write!(f, "snapshot spec mismatch: {message}")
            }
            StoreError::CountOverflow { channel: Some(k) } => {
                write!(f, "count overflow while merging channel {k}")
            }
            StoreError::CountOverflow { channel: None } => {
                write!(f, "record-count overflow while merging snapshots")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<StoreError> for MdrrError {
    fn from(e: StoreError) -> Self {
        MdrrError::config(format!("snapshot store: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_every_failure_mode() {
        let cases: Vec<(StoreError, &str)> = vec![
            (
                StoreError::io("write", io::Error::other("disk full")),
                "disk full",
            ),
            (
                StoreError::BadMagic {
                    found: *b"NOTASNAP",
                },
                "magic",
            ),
            (
                StoreError::UnsupportedVersion {
                    found: 9,
                    supported: 1,
                },
                "version 9",
            ),
            (
                StoreError::Truncated {
                    offset: 12,
                    needed: 8,
                    available: 3,
                },
                "offset 12",
            ),
            (
                StoreError::ChecksumMismatch {
                    stored: 1,
                    computed: 2,
                },
                "checksum",
            ),
            (StoreError::header("bad json"), "bad json"),
            (StoreError::layout("no channels"), "no channels"),
            (StoreError::spec_mismatch("joint vs independent"), "joint"),
            (StoreError::CountOverflow { channel: Some(3) }, "channel 3"),
            (StoreError::CountOverflow { channel: None }, "record-count"),
        ];
        for (error, needle) in cases {
            assert!(
                error.to_string().contains(needle),
                "{error} should mention {needle}"
            );
        }
    }

    #[test]
    fn io_errors_expose_their_source() {
        use std::error::Error;
        let e = StoreError::io("read", io::Error::other("x"));
        assert!(e.source().is_some());
        assert!(StoreError::layout("y").source().is_none());
    }

    #[test]
    fn io_class_is_derived_and_forceable() {
        // Derived: interrupted syscalls retry, missing files do not.
        assert_eq!(
            IoClass::classify(io::ErrorKind::Interrupted),
            IoClass::Transient
        );
        assert_eq!(
            IoClass::classify(io::ErrorKind::TimedOut),
            IoClass::Transient
        );
        assert_eq!(
            IoClass::classify(io::ErrorKind::NotFound),
            IoClass::Permanent
        );
        assert!(
            StoreError::io("read", io::Error::new(io::ErrorKind::Interrupted, "eintr"))
                .is_transient()
        );
        assert!(!StoreError::io("read", io::Error::other("gone")).is_transient());
        // Forced: a fault-injecting backend decides the class itself.
        assert!(StoreError::io_transient("w", io::Error::other("x")).is_transient());
        assert!(
            !StoreError::io_permanent("w", io::Error::new(io::ErrorKind::Interrupted, "x"))
                .is_transient()
        );
        // Non-I/O errors are never retried.
        assert!(!StoreError::layout("bad").is_transient());
        // Display names the class so logs distinguish the two.
        let shown = StoreError::io_transient("w", io::Error::other("x")).to_string();
        assert!(shown.contains("transient"), "{shown}");
    }

    #[test]
    fn converts_into_the_protocol_layer_error() {
        let e: MdrrError = StoreError::layout("no channels").into();
        assert!(e.to_string().contains("snapshot store"));
    }
}
