//! # mdrr-store
//!
//! The durable snapshot store of the MDRR pipeline: a versioned,
//! checksummed on-disk format for accumulator state — the per-channel
//! `u64` count vectors that are the sufficient statistics of Equation (2)
//! — plus crash-safe atomic writes and exact cross-process merging.
//!
//! * [`Snapshot`] — self-describing state: magic + format version, the
//!   embedded [`mdrr_protocols::ProtocolSpec`] and schema JSON, the count
//!   vectors, a record count and a trailing CRC-64/XZ checksum.  The
//!   byte-level contract is specified in `docs/FORMAT.md` so external
//!   writers and readers can implement it independently; [`crc64`],
//!   [`MAGIC`] and [`FORMAT_VERSION`] are public for exactly that reason.
//! * [`SnapshotWriter`] / [`SnapshotReader`] — atomic temp-file-and-rename
//!   persistence and fully validated reads: a crash mid-write can never
//!   leave a torn snapshot, and any corruption (truncation, flipped
//!   bytes, foreign files) surfaces as a typed [`StoreError`], never a
//!   panic.
//! * [`StoreObs`] — optional instrumentation: `write_observed` /
//!   `read_observed` / [`merge_snapshots_observed`] siblings that record
//!   durations, byte counts and CRC verification time into an injected
//!   `mdrr_obs` registry, timed by an injected clock (never an ambient
//!   one), with the unobserved paths left untouched.
//! * [`merge_snapshots`] / [`merge_snapshot_files`] — exact pooling of the
//!   shards of any number of collector processes: spec compatibility is
//!   verified, counts are summed with overflow checks, and the merged
//!   release is numerically identical to a single process having ingested
//!   every report itself.
//! * [`StorageBackend`] / [`Storage`] — every file operation goes through
//!   an injectable backend seam: [`OsBackend`] is the real filesystem,
//!   [`FaultyBackend`] executes scripted fault plans (torn writes, lying
//!   fsyncs, transient errors) for the crash-consistency torture tests.
//!   Transient failures ([`IoClass`]) are retried under a bounded
//!   exponential-backoff [`RetryPolicy`] timed by an injected clock.
//! * [`CheckpointManifest`] and the generation-named shard-file grammar
//!   ([`shard_file_name`]) — the commit record of a checkpoint directory;
//!   [`salvage_checkpoint`] rebuilds a usable manifest from whatever
//!   shard snapshots survive out-of-band damage.
//!
//! The streaming layer (`mdrr-stream`) builds `ShardedCollector::
//! {checkpoint, restore}` on top of this crate; `stream_sim` drives
//! checkpoint/resume/merge end to end from the command line.
//!
//! ## Example
//!
//! Persist counts on one "machine", pool them on another:
//!
//! ```
//! use mdrr_data::{Attribute, Schema};
//! use mdrr_protocols::{FrequencyEstimator, ProtocolSpec, RandomizationLevel};
//! use mdrr_store::{merge_snapshot_files, Snapshot, SnapshotWriter};
//!
//! let dir = std::env::temp_dir().join(format!("mdrr-store-doc-{}", std::process::id()));
//! let schema = Schema::new(vec![Attribute::indexed("A", 2)?])?;
//! let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.8));
//!
//! // Two machines each persist their shard's sufficient statistics…
//! let paths = [dir.join("machine-a.mdrrsnap"), dir.join("machine-b.mdrrsnap")];
//! SnapshotWriter::new(&paths[0])
//!     .write(&Snapshot::new(schema.clone(), spec.clone(), vec![vec![350, 150]], 500)?)?;
//! SnapshotWriter::new(&paths[1])
//!     .write(&Snapshot::new(schema, spec, vec![vec![360, 140]], 500)?)?;
//!
//! // …and any process can pool them and estimate, no coordination needed.
//! let pooled = merge_snapshot_files(&paths)?;
//! assert_eq!(pooled.n_reports(), 1000);
//! let release = pooled.release()?;
//! assert!(release.frequency(&[(0, 0)])? > 0.5);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod backend;
pub mod error;
pub mod format;
pub mod io;
pub mod manifest;
pub mod merge;
pub mod obs;
pub mod retry;
pub mod salvage;
pub mod snapshot;

pub use backend::{Fault, FaultKind, FaultPlan, FaultyBackend, OsBackend, StorageBackend};
pub use error::{IoClass, StoreError};
pub use format::{crc64, FORMAT_VERSION, MAGIC};
pub use io::{atomic_write, SnapshotReader, SnapshotWriter, Storage};
pub use manifest::{
    next_generation, parse_shard_file_name, shard_file_name, CheckpointManifest, MANIFEST_FILE,
    MANIFEST_VERSION,
};
pub use merge::{merge_snapshot_files, merge_snapshots, merge_snapshots_observed};
pub use obs::StoreObs;
pub use retry::RetryPolicy;
pub use salvage::{salvage_checkpoint, SalvageReport};
pub use snapshot::Snapshot;
