//! Crash-safe snapshot file I/O.
//!
//! [`SnapshotWriter`] never leaves a half-written snapshot at its target
//! path: it serializes to a sibling temp file, fsyncs it, and atomically
//! renames it over the target (then best-effort fsyncs the directory so
//! the rename itself survives a power cut).  A reader therefore sees
//! either the previous complete snapshot or the new complete snapshot,
//! never a torn one — and [`SnapshotReader`] verifies the checksum anyway,
//! so even out-of-band corruption surfaces as a typed error.
//!
//! Every file operation flows through a [`Storage`] handle: an injected
//! [`StorageBackend`] (the OS, or a fault-injecting test double) wrapped
//! with a [`RetryPolicy`] that re-executes transient failures under
//! bounded exponential backoff, timed by an injected
//! [`Clock`] — never ambient time.  The plain entry points
//! ([`atomic_write`], [`SnapshotWriter::write`], …) run on
//! [`Storage::os`], so existing callers keep today's behavior.

use crate::backend::{OsBackend, StorageBackend};
use crate::error::StoreError;
use crate::retry::RetryPolicy;
use crate::snapshot::Snapshot;
use mdrr_obs::{Clock, EventKind, Journal, NullClock};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Extension of the sibling temp file an atomic write goes through.
const TMP_SUFFIX: &str = "tmp";

/// The sibling temp path an atomic write of `path` goes through
/// (`x.mdrrsnap` → `x.mdrrsnap.tmp`).
fn tmp_sibling(path: &Path) -> PathBuf {
    match path.extension() {
        Some(ext) => {
            let mut ext = ext.to_os_string();
            ext.push(".");
            ext.push(TMP_SUFFIX);
            path.with_extension(ext)
        }
        None => path.with_extension(TMP_SUFFIX),
    }
}

/// Atomically replaces `path` with `bytes`: write to a sibling `*.tmp`
/// file, fsync, rename over the target, best-effort fsync the directory.
/// Parent directories are created as needed.  This is the write
/// discipline of every durable artifact in the store (snapshots and the
/// checkpoint manifests built on top of them); a crash at any point
/// leaves either the old complete file or the new complete file at
/// `path`, never a torn one.
///
/// Runs on [`Storage::os`]; inject a [`Storage`] yourself (fault
/// backends, real backoff clocks) via [`Storage::atomic_write`].
///
/// ```
/// let dir = std::env::temp_dir().join(format!("mdrr-doc-aw-{}", std::process::id()));
/// let path = dir.join("note.txt");
/// mdrr_store::atomic_write(&path, b"first")?;
/// mdrr_store::atomic_write(&path, b"second")?;
/// assert_eq!(std::fs::read(&path)?, b"second");
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
/// Returns [`StoreError::Io`] naming the failing step (create, write,
/// sync or rename).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    Storage::os().atomic_write(path, bytes)
}

/// A storage handle: a [`StorageBackend`] plus the [`RetryPolicy`] and
/// injected [`Clock`] that govern transient-failure retries, and an
/// optional [`Journal`] that records `retry_exhausted` events.
///
/// [`Storage::os`] is the production default (real filesystem, default
/// retry bounds, no waiting clock — transient retries re-execute
/// immediately); tests and the chaos harness inject a
/// [`crate::FaultyBackend`] and a real or manual clock instead.
///
/// ```
/// use mdrr_store::Storage;
/// let dir = std::env::temp_dir().join(format!("mdrr-doc-storage-{}", std::process::id()));
/// let storage = Storage::os();
/// storage.atomic_write(&dir.join("a.txt"), b"payload")?;
/// assert_eq!(storage.read(&dir.join("a.txt"))?, b"payload");
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), mdrr_store::StoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Storage {
    backend: Arc<dyn StorageBackend>,
    retry: RetryPolicy,
    clock: Arc<dyn Clock>,
    journal: Option<Arc<Journal>>,
}

impl Storage {
    /// The production storage: [`OsBackend`], default [`RetryPolicy`],
    /// and a disabled clock — transient failures are still retried up to
    /// the attempt bound, just without waiting in between.  Callers that
    /// want real backoff pacing inject a real clock via
    /// [`Storage::new`].
    pub fn os() -> Self {
        Storage {
            backend: Arc::new(OsBackend),
            retry: RetryPolicy::default(),
            clock: Arc::new(NullClock),
            journal: None,
        }
    }

    /// A storage handle over an explicit backend, retry policy and clock.
    pub fn new(
        backend: Arc<dyn StorageBackend>,
        retry: RetryPolicy,
        clock: Arc<dyn Clock>,
    ) -> Self {
        Storage {
            backend,
            retry,
            clock,
            journal: None,
        }
    }

    /// Attaches a journal: every exhausted retry loop records a
    /// `retry_exhausted` event with the attempts spent.
    pub fn with_journal(mut self, journal: Arc<Journal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// The backend operations execute against.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// The retry policy governing transient failures.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The clock that paces retry backoff.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.as_ref()
    }

    /// Records `kind` in the attached journal (a no-op without one).
    pub(crate) fn record_event(&self, kind: EventKind) {
        if let Some(journal) = &self.journal {
            journal.record(self.clock.now_nanos(), kind);
        }
    }

    /// Runs one backend operation under the retry policy, journalling a
    /// `retry_exhausted` event when every attempt failed transiently.
    fn attempt<T>(&self, op: impl FnMut() -> Result<T, StoreError>) -> Result<T, StoreError> {
        let (result, attempts) = self.retry.run(self.clock.as_ref(), op);
        if let Err(e) = &result {
            if e.is_transient() {
                self.record_event(EventKind::RetryExhausted {
                    attempts: u64::from(attempts),
                });
            }
        }
        result
    }

    /// [`atomic_write`] through this handle's backend, retry policy and
    /// clock: create the parent directory, write a sibling `*.tmp` file,
    /// fsync it, rename it over `path`, fsync the directory.  Each step
    /// retries transient failures under the policy.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] naming the failing step.
    pub fn atomic_write(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            self.attempt(|| self.backend.create_dir_all(parent))?;
        }
        let tmp = tmp_sibling(path);
        self.attempt(|| self.backend.write(&tmp, bytes))?;
        self.attempt(|| self.backend.sync(&tmp))?;
        self.attempt(|| self.backend.rename(&tmp, path))?;
        // Persist the rename itself; the backend treats unsupported
        // directory fsyncs as success, so this stays best-effort.
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            self.attempt(|| self.backend.sync_dir(parent))?;
        }
        Ok(())
    }

    /// Reads the full contents of `path` (with transient-failure
    /// retries).
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] when the file cannot be read.
    pub fn read(&self, path: &Path) -> Result<Vec<u8>, StoreError> {
        self.attempt(|| self.backend.read(path))
    }

    /// Serializes `snapshot` and atomically writes it to `path`,
    /// returning the serialized byte count.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] for filesystem failures and the
    /// serialization errors of [`Snapshot::to_bytes`].
    pub fn write_snapshot(&self, path: &Path, snapshot: &Snapshot) -> Result<u64, StoreError> {
        let bytes = snapshot.to_bytes()?;
        self.atomic_write(path, &bytes)?;
        Ok(bytes.len() as u64)
    }

    /// [`Storage::write_snapshot`], instrumented like
    /// [`SnapshotWriter::write_observed`]: records the write count,
    /// serialized byte count and wall time in `obs`.
    ///
    /// # Errors
    /// Same as [`Storage::write_snapshot`].
    pub fn write_snapshot_observed(
        &self,
        path: &Path,
        snapshot: &Snapshot,
        obs: &crate::StoreObs,
    ) -> Result<u64, StoreError> {
        let clock = obs.clock();
        let start = clock.enabled().then(|| clock.now_nanos());
        let n = self.write_snapshot(path, snapshot)?;
        if let Some(start) = start {
            obs.write_nanos
                .record(clock.now_nanos().saturating_sub(start));
        }
        obs.writes.inc();
        obs.bytes_written.add(n);
        Ok(n)
    }

    /// Reads and fully validates the snapshot at `path` through this
    /// handle's backend.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] for filesystem failures and the typed
    /// validation errors of [`Snapshot::from_bytes`].
    pub fn read_snapshot(&self, path: &Path) -> Result<Snapshot, StoreError> {
        let bytes = self.read(path)?;
        Snapshot::from_bytes(&bytes)
    }

    /// Creates `path` and every missing ancestor directory (with
    /// transient-failure retries).
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] when creation fails.
    pub fn create_dir_all(&self, path: &Path) -> Result<(), StoreError> {
        self.attempt(|| self.backend.create_dir_all(path))
    }

    /// The file names in `dir`, sorted; a missing directory lists as
    /// empty.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] when the directory cannot be listed.
    pub fn list_dir(&self, dir: &Path) -> Result<Vec<String>, StoreError> {
        self.attempt(|| self.backend.list_dir(dir))
    }

    /// Removes the file at `path` (with transient-failure retries).
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] when removal fails.
    pub fn remove_file(&self, path: &Path) -> Result<(), StoreError> {
        self.attempt(|| self.backend.remove_file(path))
    }

    /// Whether a file or directory exists at `path`.
    pub fn exists(&self, path: &Path) -> bool {
        self.backend.exists(path)
    }

    /// Sweeps orphaned `*.tmp` debris from `dir` — the stranded siblings
    /// of atomic writes that faulted between create and rename.  Only
    /// names ending in `.tmp` are touched; committed snapshots and
    /// manifests never match.  Best-effort by design (a sweep must never
    /// fail the checkpoint that requested it): unreadable directories
    /// sweep nothing, unremovable files are skipped.  Returns the number
    /// of files removed.
    pub fn sweep_tmp(&self, dir: &Path) -> usize {
        let Ok(names) = self.list_dir(dir) else {
            return 0;
        };
        let mut swept = 0;
        for name in names {
            if name.ends_with(".tmp") && self.remove_file(&dir.join(&name)).is_ok() {
                swept += 1;
            }
        }
        swept
    }
}

/// Writes snapshots to a fixed path with atomic temp-file-and-rename
/// semantics.
///
/// ```
/// use mdrr_data::{Attribute, Schema};
/// use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
/// use mdrr_store::{Snapshot, SnapshotReader, SnapshotWriter};
///
/// let dir = std::env::temp_dir().join(format!("mdrr-doc-{}", std::process::id()));
/// let path = dir.join("shard-00000.mdrrsnap");
/// let schema = Schema::new(vec![Attribute::indexed("A", 2)?])?;
/// let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
/// let snapshot = Snapshot::new(schema, spec, vec![vec![3, 1]], 4)?;
///
/// SnapshotWriter::new(&path).write(&snapshot)?;
/// assert_eq!(SnapshotReader::read(&path)?, snapshot);
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SnapshotWriter {
    path: PathBuf,
}

impl SnapshotWriter {
    /// A writer targeting `path`.  Parent directories are created on the
    /// first write; nothing touches the filesystem until then.
    ///
    /// ```
    /// let writer = mdrr_store::SnapshotWriter::new("/tmp/never-written.mdrrsnap");
    /// assert_eq!(writer.path().file_name().unwrap(), "never-written.mdrrsnap");
    /// ```
    pub fn new(path: impl Into<PathBuf>) -> Self {
        SnapshotWriter { path: path.into() }
    }

    /// The target path of this writer.
    ///
    /// ```
    /// let writer = mdrr_store::SnapshotWriter::new("a/b.mdrrsnap");
    /// assert!(writer.path().ends_with("b.mdrrsnap"));
    /// ```
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Atomically replaces the target path with `snapshot`: serialize,
    /// write to a sibling `*.tmp` file, fsync, rename over the target,
    /// best-effort fsync the directory.  A crash at any point leaves
    /// either the old complete file or the new complete file.
    ///
    /// ```
    /// # use mdrr_data::{Attribute, Schema};
    /// # use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
    /// # use mdrr_store::{Snapshot, SnapshotReader, SnapshotWriter};
    /// # let dir = std::env::temp_dir().join(format!("mdrr-doc-w-{}", std::process::id()));
    /// # let schema = Schema::new(vec![Attribute::indexed("A", 2)?])?;
    /// # let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
    /// let writer = SnapshotWriter::new(dir.join("state.mdrrsnap"));
    /// writer.write(&Snapshot::new(schema.clone(), spec.clone(), vec![vec![1, 0]], 1)?)?;
    /// writer.write(&Snapshot::new(schema, spec, vec![vec![1, 1]], 2)?)?; // replaces
    /// assert_eq!(SnapshotReader::read(writer.path())?.n_reports(), 2);
    /// # std::fs::remove_dir_all(&dir).ok();
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] for filesystem failures and the
    /// serialization errors of [`Snapshot::to_bytes`].
    pub fn write(&self, snapshot: &Snapshot) -> Result<(), StoreError> {
        atomic_write(&self.path, &snapshot.to_bytes()?)
    }

    /// [`SnapshotWriter::write`], instrumented: records the write count,
    /// serialized byte count and wall time in `obs`, and returns the
    /// number of bytes written.  Identical filesystem behavior; under a
    /// disabled clock only the counters move.
    ///
    /// ```
    /// # use mdrr_data::{Attribute, Schema};
    /// # use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
    /// # use mdrr_store::{Snapshot, SnapshotWriter, StoreObs};
    /// # use mdrr_obs::{MonotonicClock, Registry};
    /// # use std::sync::Arc;
    /// # let dir = std::env::temp_dir().join(format!("mdrr-doc-wo-{}", std::process::id()));
    /// # let schema = Schema::new(vec![Attribute::indexed("A", 2)?])?;
    /// # let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
    /// let registry = Registry::new();
    /// let obs = StoreObs::new(Arc::new(MonotonicClock::new()), &registry);
    /// let writer = SnapshotWriter::new(dir.join("obs.mdrrsnap"));
    /// let bytes = writer.write_observed(&Snapshot::new(schema, spec, vec![vec![1, 0]], 1)?, &obs)?;
    /// let snap = registry.snapshot();
    /// assert_eq!(snap.counter_value("store_snapshot_writes_total", &[]), Some(1));
    /// assert_eq!(snap.counter_value("store_bytes_written_total", &[]), Some(bytes));
    /// # std::fs::remove_dir_all(&dir).ok();
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    /// Same as [`SnapshotWriter::write`].
    pub fn write_observed(
        &self,
        snapshot: &Snapshot,
        obs: &crate::StoreObs,
    ) -> Result<u64, StoreError> {
        let clock = obs.clock();
        let start = clock.enabled().then(|| clock.now_nanos());
        let bytes = snapshot.to_bytes()?;
        atomic_write(&self.path, &bytes)?;
        if let Some(start) = start {
            obs.write_nanos
                .record(clock.now_nanos().saturating_sub(start));
        }
        obs.writes.inc();
        let n = bytes.len() as u64;
        obs.bytes_written.add(n);
        Ok(n)
    }
}

/// Reads and fully validates snapshot files (magic, version, structure,
/// checksum, header, counting invariants).
///
/// ```
/// use mdrr_store::{SnapshotReader, StoreError};
///
/// // Reading a missing file is a typed I/O error, not a panic.
/// match SnapshotReader::read("/nonexistent/missing.mdrrsnap") {
///     Err(StoreError::Io { .. }) => {}
///     other => panic!("expected Io, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SnapshotReader;

impl SnapshotReader {
    /// Reads the snapshot at `path`, validating everything the format
    /// promises before returning it.
    ///
    /// ```
    /// # use mdrr_data::{Attribute, Schema};
    /// # use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
    /// # use mdrr_store::{Snapshot, SnapshotReader, SnapshotWriter};
    /// # let dir = std::env::temp_dir().join(format!("mdrr-doc-r-{}", std::process::id()));
    /// # let path = dir.join("x.mdrrsnap");
    /// # let schema = Schema::new(vec![Attribute::indexed("A", 2)?])?;
    /// # let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
    /// # let snapshot = Snapshot::new(schema, spec, vec![vec![2, 2]], 4)?;
    /// SnapshotWriter::new(&path).write(&snapshot)?;
    /// let restored = SnapshotReader::read(&path)?;
    /// assert_eq!(restored.counts(), snapshot.counts());
    /// # std::fs::remove_dir_all(&dir).ok();
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] for filesystem failures and the typed
    /// validation errors of [`Snapshot::from_bytes`] for malformed
    /// contents.
    pub fn read(path: impl AsRef<Path>) -> Result<Snapshot, StoreError> {
        let path = path.as_ref();
        let bytes = fs::read(path)
            .map_err(|e| StoreError::io(format!("read snapshot {}", path.display()), e))?;
        Snapshot::from_bytes(&bytes)
    }

    /// [`SnapshotReader::read`], instrumented: records the read count,
    /// file byte count, wall time and — separately — the CRC-64
    /// verification time in `obs`.  The checksum is hashed once (inside
    /// decoding), not re-hashed for measurement.
    ///
    /// ```
    /// # use mdrr_data::{Attribute, Schema};
    /// # use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
    /// # use mdrr_store::{Snapshot, SnapshotReader, SnapshotWriter, StoreObs};
    /// # use mdrr_obs::{MonotonicClock, Registry};
    /// # use std::sync::Arc;
    /// # let dir = std::env::temp_dir().join(format!("mdrr-doc-ro-{}", std::process::id()));
    /// # let path = dir.join("obs.mdrrsnap");
    /// # let schema = Schema::new(vec![Attribute::indexed("A", 2)?])?;
    /// # let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
    /// # let snapshot = Snapshot::new(schema, spec, vec![vec![2, 2]], 4)?;
    /// SnapshotWriter::new(&path).write(&snapshot)?;
    /// let registry = Registry::new();
    /// let obs = StoreObs::new(Arc::new(MonotonicClock::new()), &registry);
    /// assert_eq!(SnapshotReader::read_observed(&path, &obs)?, snapshot);
    /// let snap = registry.snapshot();
    /// assert_eq!(snap.counter_value("store_snapshot_reads_total", &[]), Some(1));
    /// assert_eq!(snap.histogram_snapshot("store_crc_nanos", &[]).unwrap().count, 1);
    /// # std::fs::remove_dir_all(&dir).ok();
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    /// Same as [`SnapshotReader::read`].
    pub fn read_observed(
        path: impl AsRef<Path>,
        obs: &crate::StoreObs,
    ) -> Result<Snapshot, StoreError> {
        let path = path.as_ref();
        let clock = obs.clock();
        let start = clock.enabled().then(|| clock.now_nanos());
        let bytes = fs::read(path)
            .map_err(|e| StoreError::io(format!("read snapshot {}", path.display()), e))?;
        let (snapshot, crc_nanos) = crate::format::decode_timed(&bytes, Some(clock.as_ref()))?;
        if let Some(start) = start {
            obs.read_nanos
                .record(clock.now_nanos().saturating_sub(start));
            obs.crc_nanos.record(crc_nanos);
        }
        obs.reads.inc();
        obs.bytes_read.add(bytes.len() as u64);
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdrr_data::{Attribute, Schema};
    use mdrr_protocols::{ProtocolSpec, RandomizationLevel};

    fn sample() -> Snapshot {
        let schema = Schema::new(vec![
            Attribute::indexed("A", 3).unwrap(),
            Attribute::indexed("B", 2).unwrap(),
        ])
        .unwrap();
        let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
        Snapshot::new(schema, spec, vec![vec![5, 3, 2], vec![6, 4]], 10).unwrap()
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mdrr-store-io-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_read_round_trip_and_replacement() {
        let dir = scratch_dir("roundtrip");
        let path = dir.join("nested/deeper/shard.mdrrsnap");
        let writer = SnapshotWriter::new(&path);
        let snapshot = sample();
        writer.write(&snapshot).unwrap();
        assert_eq!(SnapshotReader::read(&path).unwrap(), snapshot);
        // No temp residue.
        assert!(!path.with_extension("mdrrsnap.tmp").exists());
        // A second write atomically replaces the first.
        let mut second = snapshot.clone();
        second.set_app_state(Some("v2".to_string()));
        writer.write(&second).unwrap();
        assert_eq!(SnapshotReader::read(&path).unwrap().app_state(), Some("v2"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reading_missing_or_corrupt_files_is_typed() {
        let dir = scratch_dir("corrupt");
        assert!(matches!(
            SnapshotReader::read(dir.join("absent.mdrrsnap")),
            Err(StoreError::Io { .. })
        ));
        // A truncated file (simulating a non-atomic partial write from a
        // foreign writer) is caught structurally.
        let path = dir.join("torn.mdrrsnap");
        let bytes = sample().to_bytes().unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(SnapshotReader::read(&path).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
