//! Salvage: rebuilding a usable checkpoint from a damaged directory.
//!
//! The checkpoint discipline (generation-named shard files, manifest
//! written last) guarantees old-complete-or-new-complete against a crash
//! at any single operation — but not against everything.  A storage
//! device that *lies about fsync* can lose an already-renamed file at the
//! next power cut, and out-of-band damage (operators, bit rot) can
//! corrupt committed snapshots.  [`salvage_checkpoint`] is the recovery
//! path for those cases: it scans a checkpoint directory, keeps every
//! shard snapshot that still passes full validation (CRC-64 and all
//! structural checks), prefers the newest generation per shard, drops
//! anything torn or inconsistent, and commits a fresh manifest over
//! exactly the surviving set.
//!
//! Salvage is deliberately lossy-but-honest: the [`SalvageReport`] names
//! every shard index that was dropped so the caller can re-collect those
//! shards (deterministically, from the shard's seed) and merge them back
//! — `mdrr-stream`'s degraded-mode tests prove the merged result matches
//! an uninterrupted run exactly.

use crate::io::Storage;
use crate::manifest::{parse_shard_file_name, CheckpointManifest, MANIFEST_FILE, MANIFEST_VERSION};
use crate::snapshot::Snapshot;
use crate::StoreError;
use mdrr_obs::EventKind;
use std::collections::BTreeMap;
use std::path::Path;

/// What [`salvage_checkpoint`] recovered and what it had to drop.
#[derive(Debug, Clone, PartialEq)]
pub struct SalvageReport {
    /// Shard indices whose snapshots were recovered, ascending.
    pub recovered: Vec<usize>,
    /// Shard indices present in the directory but unrecoverable (every
    /// candidate file torn, corrupt or inconsistent), ascending.  These
    /// are the shards the caller must re-collect.
    pub dropped: Vec<usize>,
    /// The generation each recovered shard was salvaged from, parallel to
    /// `recovered`.
    pub generations: Vec<u64>,
    /// Whether every recovered shard came from the same generation — a
    /// single-generation salvage is a consistent point-in-time cut, a
    /// mixed one splices surviving files from different checkpoints.
    pub consistent_generation: bool,
    /// Total reports across the recovered snapshots.
    pub total_reports: u64,
    /// Orphaned `*.tmp` files removed before scanning.
    pub swept_tmp: usize,
    /// The manifest committed over the surviving set.
    pub manifest: CheckpointManifest,
}

/// Rebuilds a usable checkpoint from the damaged directory `dir`.
///
/// Sweeps `*.tmp` debris, scans every shard snapshot candidate
/// (generation-named and legacy), validates each fully (the CRC-64 check
/// and every structural invariant of the format), keeps the newest valid
/// generation per shard index, drops shards whose candidates all fail or
/// whose schema/spec/channel layout disagrees with the other survivors,
/// and atomically commits a fresh [`MANIFEST_FILE`] naming exactly the
/// surviving files.  Committed snapshot files are never modified or
/// deleted — salvage only removes `*.tmp` debris and rewrites the
/// manifest.  Records a `salvage_completed` journal event when the
/// storage handle carries a journal.
///
/// The directory restores cleanly afterwards (with `n_shards` equal to
/// the number of survivors); re-collect the `dropped` shard indices and
/// merge to recover the full estimate.
///
/// # Errors
/// Returns [`StoreError::InvalidLayout`] when no shard snapshot survives
/// validation (there is nothing to rebuild a checkpoint from), and
/// propagates [`StoreError::Io`] from listing or the manifest commit.
pub fn salvage_checkpoint(dir: &Path, storage: &Storage) -> Result<SalvageReport, StoreError> {
    let swept_tmp = storage.sweep_tmp(dir);
    let names = storage.list_dir(dir)?;

    // Every candidate file per shard index, newest generation first.
    let mut candidates: BTreeMap<usize, Vec<(u64, String)>> = BTreeMap::new();
    for name in names {
        if let Some((shard, generation)) = parse_shard_file_name(&name) {
            candidates
                .entry(shard)
                .or_default()
                .push((generation, name));
        }
    }
    for versions in candidates.values_mut() {
        versions.sort_by_key(|&(generation, _)| std::cmp::Reverse(generation));
    }

    let mut recovered: Vec<usize> = Vec::new();
    let mut generations: Vec<u64> = Vec::new();
    let mut shard_files: Vec<String> = Vec::new();
    let mut snapshots: Vec<Snapshot> = Vec::new();
    let mut dropped: Vec<usize> = Vec::new();

    for (&shard, versions) in &candidates {
        let mut found = None;
        for (generation, name) in versions {
            match storage.read_snapshot(&dir.join(name)) {
                Ok(snapshot) => {
                    found = Some((*generation, name.clone(), snapshot));
                    break;
                }
                Err(_) => continue,
            }
        }
        let Some((generation, name, snapshot)) = found else {
            dropped.push(shard);
            continue;
        };
        // A survivor must agree with the other survivors on what it is a
        // snapshot *of*; a foreign or stale-schema file is dropped rather
        // than spliced into an unmergeable set.
        if let Some(first) = snapshots.first() {
            if snapshot.schema() != first.schema()
                || snapshot.spec() != first.spec()
                || snapshot.channel_sizes() != first.channel_sizes()
            {
                dropped.push(shard);
                continue;
            }
        }
        recovered.push(shard);
        generations.push(generation);
        shard_files.push(name);
        snapshots.push(snapshot);
    }

    if recovered.is_empty() {
        return Err(StoreError::layout(format!(
            "salvage of {} found no valid shard snapshot",
            dir.display()
        )));
    }

    let mut total_reports: u64 = 0;
    for snapshot in &snapshots {
        total_reports = total_reports
            .checked_add(snapshot.n_reports())
            .ok_or(StoreError::CountOverflow { channel: None })?;
    }

    let manifest = CheckpointManifest {
        manifest_version: MANIFEST_VERSION,
        n_shards: recovered.len(),
        total_reports,
        shard_files: shard_files.clone(),
        app_state: None,
    };
    storage.atomic_write(&dir.join(MANIFEST_FILE), manifest.to_json()?.as_bytes())?;

    let consistent_generation = match generations.first() {
        Some(first) => generations.iter().all(|g| g == first),
        None => true,
    };
    storage.record_event(EventKind::SalvageCompleted {
        recovered: recovered.len() as u64,
        dropped: dropped.len() as u64,
    });

    Ok(SalvageReport {
        recovered,
        dropped,
        generations,
        consistent_generation,
        total_reports,
        swept_tmp,
        manifest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::shard_file_name;
    use mdrr_data::{Attribute, Schema};
    use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
    use std::fs;
    use std::path::PathBuf;

    fn snapshot(counts: Vec<Vec<u64>>, n_reports: u64) -> Snapshot {
        let schema = Schema::new(vec![Attribute::indexed("A", 2).unwrap()]).unwrap();
        let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
        Snapshot::new(schema, spec, counts, n_reports).unwrap()
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mdrr-salvage-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn salvage_keeps_valid_shards_and_drops_torn_ones() {
        let dir = scratch_dir("basic");
        let storage = Storage::os();
        let good = snapshot(vec![vec![3, 1]], 4);
        storage
            .write_snapshot(&dir.join(shard_file_name(0, 2)), &good)
            .unwrap();
        storage
            .write_snapshot(
                &dir.join(shard_file_name(1, 2)),
                &snapshot(vec![vec![2, 2]], 4),
            )
            .unwrap();
        // Shard 2: every candidate is torn.
        let torn = good.to_bytes().unwrap();
        fs::write(dir.join(shard_file_name(2, 2)), &torn[..torn.len() / 2]).unwrap();
        // Plus debris that a faulted checkpoint stranded.
        fs::write(dir.join("shard-00007.g00000003.mdrrsnap.tmp"), b"junk").unwrap();

        let report = salvage_checkpoint(&dir, &storage).unwrap();
        assert_eq!(report.recovered, vec![0, 1]);
        assert_eq!(report.dropped, vec![2]);
        assert_eq!(report.generations, vec![2, 2]);
        assert!(report.consistent_generation);
        assert_eq!(report.total_reports, 8);
        assert_eq!(report.swept_tmp, 1);
        // The committed manifest names exactly the survivors.
        let manifest = CheckpointManifest::from_json(
            &String::from_utf8(storage.read(&dir.join(MANIFEST_FILE)).unwrap()).unwrap(),
        )
        .unwrap();
        assert_eq!(manifest, report.manifest);
        assert_eq!(manifest.n_shards, 2);
        assert_eq!(manifest.total_reports, 8);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn salvage_prefers_the_newest_valid_generation() {
        let dir = scratch_dir("gens");
        let storage = Storage::os();
        let old = snapshot(vec![vec![1, 0]], 1);
        let new = snapshot(vec![vec![5, 5]], 10);
        storage
            .write_snapshot(&dir.join(shard_file_name(0, 1)), &old)
            .unwrap();
        storage
            .write_snapshot(&dir.join(shard_file_name(0, 2)), &new)
            .unwrap();
        // A torn generation 3 falls back to the valid generation 2.
        let bytes = new.to_bytes().unwrap();
        fs::write(dir.join(shard_file_name(0, 3)), &bytes[..bytes.len() / 3]).unwrap();

        let report = salvage_checkpoint(&dir, &storage).unwrap();
        assert_eq!(report.recovered, vec![0]);
        assert_eq!(report.generations, vec![2]);
        assert_eq!(report.total_reports, 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn salvage_with_nothing_valid_is_a_typed_error() {
        let dir = scratch_dir("empty");
        fs::write(dir.join(shard_file_name(0, 1)), b"not a snapshot").unwrap();
        assert!(matches!(
            salvage_checkpoint(&dir, &Storage::os()),
            Err(StoreError::InvalidLayout { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
