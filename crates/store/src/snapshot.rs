//! The in-memory form of a persisted accumulator state.
//!
//! A [`Snapshot`] is everything a process needs to resume or pool
//! estimation: the schema, the declarative [`ProtocolSpec`] that built the
//! protocol, the per-channel `u64` count vectors (the sufficient
//! statistics of Equation (2)), the number of reports they cover, and an
//! optional opaque application-state string (used by `stream_sim` to
//! persist its RNG position).  Because the header embeds both spec and
//! schema, a snapshot is fully self-describing: any process can rebuild
//! the protocol and release from the file alone.

use crate::error::StoreError;
use crate::format;
use mdrr_data::Schema;
use mdrr_protocols::{MdrrError, Protocol, ProtocolSpec, Release};
use serde::{Deserialize, Serialize};

/// The JSON header embedded in every snapshot file (see `docs/FORMAT.md`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct SnapshotHeader {
    /// The schema the protocol was configured for.
    pub(crate) schema: Schema,
    /// The declarative spec that builds the protocol.
    pub(crate) spec: ProtocolSpec,
    /// Opaque application state (`null` when absent).
    pub(crate) app_state: Option<String>,
}

/// A self-describing, durable unit of accumulator state: per-channel count
/// vectors plus the schema and protocol spec that give them meaning.
///
/// ```
/// use mdrr_data::{Attribute, Schema};
/// use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
/// use mdrr_store::Snapshot;
///
/// let schema = Schema::new(vec![Attribute::indexed("A", 3)?])?;
/// let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
/// // Counts over one 3-category channel covering 10 reports:
/// let snapshot = Snapshot::new(schema, spec, vec![vec![5, 3, 2]], 10)?;
/// assert_eq!(snapshot.n_reports(), 10);
/// assert_eq!(snapshot.channel_sizes(), vec![3]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    schema: Schema,
    spec: ProtocolSpec,
    app_state: Option<String>,
    counts: Vec<Vec<u64>>,
    n_reports: u64,
}

impl Snapshot {
    /// Wraps accumulator state into a snapshot, validating the counting
    /// invariants of the format: at least one channel, no empty channel,
    /// and every channel's counts summing to exactly `n_reports` (each
    /// report contributes one code per channel).
    ///
    /// ```
    /// use mdrr_data::{Attribute, Schema};
    /// use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
    /// use mdrr_store::Snapshot;
    ///
    /// let schema = Schema::new(vec![Attribute::indexed("A", 2)?])?;
    /// let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
    /// // 4 + 5 ≠ 10: the counts cannot cover 10 reports.
    /// assert!(Snapshot::new(schema, spec, vec![vec![4, 5]], 10).is_err());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    /// Returns [`StoreError::InvalidLayout`] when an invariant is violated.
    pub fn new(
        schema: Schema,
        spec: ProtocolSpec,
        counts: Vec<Vec<u64>>,
        n_reports: u64,
    ) -> Result<Self, StoreError> {
        if counts.is_empty() {
            return Err(StoreError::layout("a snapshot needs at least one channel"));
        }
        for (k, channel) in counts.iter().enumerate() {
            if channel.is_empty() {
                return Err(StoreError::layout(format!("channel {k} has no categories")));
            }
            let mut total: u64 = 0;
            for &count in channel {
                total = total.checked_add(count).ok_or_else(|| {
                    StoreError::layout(format!("channel {k} counts overflow u64"))
                })?;
            }
            if total != n_reports {
                return Err(StoreError::layout(format!(
                    "channel {k} counts sum to {total} but the snapshot declares {n_reports} reports"
                )));
            }
        }
        Ok(Snapshot {
            schema,
            spec,
            app_state: None,
            counts,
            n_reports,
        })
    }

    /// Attaches (or clears) the opaque application-state string carried in
    /// the header — e.g. a simulator's RNG position, serialized however
    /// the application likes.  The store itself never interprets it.
    ///
    /// ```
    /// # use mdrr_data::{Attribute, Schema};
    /// # use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
    /// # use mdrr_store::Snapshot;
    /// # let schema = Schema::new(vec![Attribute::indexed("A", 2)?])?;
    /// # let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
    /// let mut snapshot = Snapshot::new(schema, spec, vec![vec![1, 1]], 2)?;
    /// snapshot.set_app_state(Some("{\"round\":3}".to_string()));
    /// assert_eq!(snapshot.app_state(), Some("{\"round\":3}"));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn set_app_state(&mut self, app_state: Option<String>) {
        self.app_state = app_state;
    }

    /// The schema the counts were collected under.
    ///
    /// ```
    /// # use mdrr_data::{Attribute, Schema};
    /// # use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
    /// # use mdrr_store::Snapshot;
    /// # let schema = Schema::new(vec![Attribute::indexed("A", 2)?])?;
    /// # let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
    /// let snapshot = Snapshot::new(schema, spec, vec![vec![1, 1]], 2)?;
    /// assert_eq!(snapshot.schema().len(), 1);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The declarative spec of the protocol that produced the counts.
    ///
    /// ```
    /// # use mdrr_data::{Attribute, Schema};
    /// # use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
    /// # use mdrr_store::Snapshot;
    /// # let schema = Schema::new(vec![Attribute::indexed("A", 2)?])?;
    /// # let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
    /// let snapshot = Snapshot::new(schema, spec, vec![vec![1, 1]], 2)?;
    /// assert_eq!(snapshot.spec().label(), "RR-Independent");
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn spec(&self) -> &ProtocolSpec {
        &self.spec
    }

    /// The opaque application-state string, if any.
    ///
    /// ```
    /// # use mdrr_data::{Attribute, Schema};
    /// # use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
    /// # use mdrr_store::Snapshot;
    /// # let schema = Schema::new(vec![Attribute::indexed("A", 2)?])?;
    /// # let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
    /// let snapshot = Snapshot::new(schema, spec, vec![vec![1, 1]], 2)?;
    /// assert_eq!(snapshot.app_state(), None);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn app_state(&self) -> Option<&str> {
        self.app_state.as_deref()
    }

    /// The per-channel count vectors, in channel order.
    ///
    /// ```
    /// # use mdrr_data::{Attribute, Schema};
    /// # use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
    /// # use mdrr_store::Snapshot;
    /// # let schema = Schema::new(vec![Attribute::indexed("A", 2)?])?;
    /// # let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
    /// let snapshot = Snapshot::new(schema, spec, vec![vec![4, 6]], 10)?;
    /// assert_eq!(snapshot.counts(), &[vec![4, 6]]);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn counts(&self) -> &[Vec<u64>] {
        &self.counts
    }

    /// The number of reports the counts cover.
    ///
    /// ```
    /// # use mdrr_data::{Attribute, Schema};
    /// # use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
    /// # use mdrr_store::Snapshot;
    /// # let schema = Schema::new(vec![Attribute::indexed("A", 2)?])?;
    /// # let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
    /// let snapshot = Snapshot::new(schema, spec, vec![vec![4, 6]], 10)?;
    /// assert_eq!(snapshot.n_reports(), 10);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn n_reports(&self) -> u64 {
        self.n_reports
    }

    /// The domain size of each channel, in channel order.
    ///
    /// ```
    /// # use mdrr_data::{Attribute, Schema};
    /// # use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
    /// # use mdrr_store::Snapshot;
    /// # let schema = Schema::new(vec![Attribute::indexed("A", 3)?])?;
    /// # let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
    /// let snapshot = Snapshot::new(schema, spec, vec![vec![1, 1, 0]], 2)?;
    /// assert_eq!(snapshot.channel_sizes(), vec![3]);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn channel_sizes(&self) -> Vec<usize> {
        self.counts.iter().map(Vec::len).collect()
    }

    /// Serializes the snapshot into the on-disk byte layout (see
    /// `docs/FORMAT.md`): header, channel blocks, trailing CRC-64/XZ.
    ///
    /// ```
    /// # use mdrr_data::{Attribute, Schema};
    /// # use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
    /// # use mdrr_store::Snapshot;
    /// # let schema = Schema::new(vec![Attribute::indexed("A", 2)?])?;
    /// # let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
    /// let snapshot = Snapshot::new(schema, spec, vec![vec![1, 1]], 2)?;
    /// let bytes = snapshot.to_bytes()?;
    /// assert_eq!(&bytes[..8], b"MDRRSNAP");
    /// assert_eq!(Snapshot::from_bytes(&bytes)?, snapshot);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    /// Returns [`StoreError::InvalidHeader`] if the header does not
    /// serialize, [`StoreError::InvalidLayout`] for out-of-format shapes.
    pub fn to_bytes(&self) -> Result<Vec<u8>, StoreError> {
        format::encode(self)
    }

    /// Parses and validates the on-disk byte layout: magic, version,
    /// structure, checksum, header JSON, counting invariants — in that
    /// order, each failure mapped to its own [`StoreError`] variant.
    ///
    /// ```
    /// # use mdrr_data::{Attribute, Schema};
    /// # use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
    /// # use mdrr_store::{Snapshot, StoreError};
    /// # let schema = Schema::new(vec![Attribute::indexed("A", 2)?])?;
    /// # let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
    /// # let snapshot = Snapshot::new(schema, spec, vec![vec![1, 1]], 2)?;
    /// let mut bytes = snapshot.to_bytes()?;
    /// let last = bytes.len() - 9; // flip a count byte, not the checksum
    /// bytes[last] ^= 0x01;
    /// assert!(matches!(
    ///     Snapshot::from_bytes(&bytes),
    ///     Err(StoreError::ChecksumMismatch { .. })
    /// ));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    /// Every malformed input maps to a typed [`StoreError`]; this method
    /// never panics on untrusted bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        format::decode(bytes)
    }

    /// Builds the protocol described by the embedded spec and schema, and
    /// verifies that its channel topology matches the stored counts — the
    /// gate every consumer should pass before estimating from a snapshot
    /// of unknown provenance.
    ///
    /// ```
    /// # use mdrr_data::{Attribute, Schema};
    /// # use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
    /// # use mdrr_store::Snapshot;
    /// # let schema = Schema::new(vec![Attribute::indexed("A", 3)?])?;
    /// # let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
    /// let snapshot = Snapshot::new(schema, spec, vec![vec![5, 3, 2]], 10)?;
    /// let protocol = snapshot.build_protocol()?;
    /// assert_eq!(protocol.name(), "RR-Independent");
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    /// Returns [`StoreError::InvalidHeader`] if the spec does not build
    /// over the schema, and [`StoreError::SpecMismatch`] if the built
    /// protocol's channel sizes differ from the stored count vectors.
    pub fn build_protocol(&self) -> Result<Box<dyn Protocol>, StoreError> {
        let protocol = self
            .spec
            .build(&self.schema)
            .map_err(|e| StoreError::header(format!("embedded spec does not build: {e}")))?;
        let expected = protocol.channel_sizes();
        let stored = self.channel_sizes();
        if expected != stored {
            return Err(StoreError::spec_mismatch(format!(
                "the embedded spec implies channel sizes {expected:?} but the snapshot stores {stored:?}"
            )));
        }
        Ok(protocol)
    }

    /// Runs the protocol's closed-form estimation over the stored counts,
    /// yielding the same `Box<dyn Release>` a live collector's snapshot
    /// would — every batch query runs unchanged against a restored file.
    ///
    /// ```
    /// # use mdrr_data::{Attribute, Schema};
    /// # use mdrr_protocols::{FrequencyEstimator, ProtocolSpec, RandomizationLevel};
    /// # use mdrr_store::Snapshot;
    /// # let schema = Schema::new(vec![Attribute::indexed("A", 2)?])?;
    /// # let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.8));
    /// let snapshot = Snapshot::new(schema, spec, vec![vec![70, 30]], 100)?;
    /// let release = snapshot.release()?;
    /// assert_eq!(release.record_count(), 100);
    /// assert!(release.frequency(&[(0, 0)])? > 0.5);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    /// Same conditions as [`Snapshot::build_protocol`], plus the
    /// protocol's own estimation errors (e.g. RR-Adjustment cannot
    /// estimate from counts alone).
    pub fn release(&self) -> Result<Box<dyn Release>, MdrrError> {
        let protocol = self.build_protocol()?;
        protocol.release_from_counts(&self.counts, self.n_reports as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdrr_data::Attribute;
    use mdrr_protocols::RandomizationLevel;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::indexed("A", 3).unwrap(),
            Attribute::indexed("B", 2).unwrap(),
        ])
        .unwrap()
    }

    fn spec() -> ProtocolSpec {
        ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7))
    }

    #[test]
    fn construction_enforces_counting_invariants() {
        assert!(matches!(
            Snapshot::new(schema(), spec(), vec![], 0),
            Err(StoreError::InvalidLayout { .. })
        ));
        assert!(matches!(
            Snapshot::new(schema(), spec(), vec![vec![1, 1, 0], vec![]], 2),
            Err(StoreError::InvalidLayout { .. })
        ));
        // Channel sums must equal the declared record count.
        assert!(matches!(
            Snapshot::new(schema(), spec(), vec![vec![1, 1, 0], vec![1, 2]], 2),
            Err(StoreError::InvalidLayout { .. })
        ));
        // Summation overflow is caught, not wrapped.
        assert!(matches!(
            Snapshot::new(schema(), spec(), vec![vec![u64::MAX, 2, 0], vec![2, 0]], 2),
            Err(StoreError::InvalidLayout { .. })
        ));
        let ok = Snapshot::new(schema(), spec(), vec![vec![1, 1, 0], vec![0, 2]], 2).unwrap();
        assert_eq!(ok.channel_sizes(), vec![3, 2]);
    }

    #[test]
    fn byte_round_trip_preserves_everything() {
        let mut snapshot =
            Snapshot::new(schema(), spec(), vec![vec![5, 3, 2], vec![6, 4]], 10).unwrap();
        snapshot.set_app_state(Some("{\"draws\":42}".to_string()));
        let bytes = snapshot.to_bytes().unwrap();
        let restored = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(restored, snapshot);
        assert_eq!(restored.app_state(), Some("{\"draws\":42}"));
    }

    #[test]
    fn build_protocol_validates_the_channel_topology() {
        let good = Snapshot::new(schema(), spec(), vec![vec![1, 1, 0], vec![0, 2]], 2).unwrap();
        assert_eq!(good.build_protocol().unwrap().channel_sizes(), vec![3, 2]);
        // An RR-Joint spec over the same schema implies one 6-category
        // channel, not two per-attribute channels.
        let joint = ProtocolSpec::Joint {
            level: RandomizationLevel::KeepProbability(0.7),
            max_domain: None,
            equivalent_risk: false,
        };
        let bad = Snapshot::new(schema(), joint, vec![vec![1, 1, 0], vec![0, 2]], 2).unwrap();
        assert!(matches!(
            bad.build_protocol(),
            Err(StoreError::SpecMismatch { .. })
        ));
    }

    #[test]
    fn release_estimates_from_stored_counts() {
        use mdrr_protocols::FrequencyEstimator;
        let snapshot = Snapshot::new(
            schema(),
            spec(),
            vec![vec![700, 200, 100], vec![600, 400]],
            1000,
        )
        .unwrap();
        let release = snapshot.release().unwrap();
        assert_eq!(release.record_count(), 1000);
        let marginal = release.marginal(0).unwrap();
        assert!((marginal.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
