//! Exact cross-process snapshot merging.
//!
//! Counts are sufficient statistics and sums, so pooling the shards of any
//! number of collector processes is exact: merging snapshots adds their
//! per-channel count vectors cell by cell (checked, never wrapping) and
//! their record counts.  The only requirement is *spec compatibility* —
//! every snapshot must have been collected under the same schema and the
//! same protocol spec, with identical channel layouts — which
//! [`merge_snapshots`] verifies before touching any number.  The merged
//! release is numerically identical to a single process having ingested
//! every report itself.

use crate::error::StoreError;
use crate::io::SnapshotReader;
use crate::snapshot::Snapshot;
use std::path::Path;

/// Merges any number of in-memory snapshots into one, verifying spec
/// compatibility and summing counts exactly.
///
/// The merged snapshot keeps the shared schema and spec and carries no
/// application state (per-process state does not pool).
///
/// ```
/// use mdrr_data::{Attribute, Schema};
/// use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
/// use mdrr_store::{merge_snapshots, Snapshot};
///
/// let schema = Schema::new(vec![Attribute::indexed("A", 2)?])?;
/// let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
/// let machine_a = Snapshot::new(schema.clone(), spec.clone(), vec![vec![3, 1]], 4)?;
/// let machine_b = Snapshot::new(schema, spec, vec![vec![2, 4]], 6)?;
///
/// let pooled = merge_snapshots([&machine_a, &machine_b])?;
/// assert_eq!(pooled.counts(), &[vec![5, 5]]);
/// assert_eq!(pooled.n_reports(), 10);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
/// Returns [`StoreError::SpecMismatch`] when schemas, specs or channel
/// layouts differ, [`StoreError::CountOverflow`] when a summed count or
/// the record total would overflow `u64`, and
/// [`StoreError::InvalidLayout`] for an empty input.
pub fn merge_snapshots<'a, I>(snapshots: I) -> Result<Snapshot, StoreError>
where
    I: IntoIterator<Item = &'a Snapshot>,
{
    let mut iter = snapshots.into_iter();
    let first = iter
        .next()
        .ok_or_else(|| StoreError::layout("cannot merge zero snapshots"))?;
    let mut counts = first.counts().to_vec();
    let mut n_reports = first.n_reports();
    for (i, snapshot) in iter.enumerate() {
        if snapshot.schema() != first.schema() {
            return Err(StoreError::spec_mismatch(format!(
                "snapshot {} was collected under a different schema",
                i + 1
            )));
        }
        if snapshot.spec() != first.spec() {
            return Err(StoreError::spec_mismatch(format!(
                "snapshot {} was collected under spec {} but the first under {}",
                i + 1,
                snapshot.spec().label(),
                first.spec().label()
            )));
        }
        if snapshot.channel_sizes() != first.channel_sizes() {
            return Err(StoreError::spec_mismatch(format!(
                "snapshot {} has channel sizes {:?} but the first has {:?}",
                i + 1,
                snapshot.channel_sizes(),
                first.channel_sizes()
            )));
        }
        for (k, (mine, theirs)) in counts.iter_mut().zip(snapshot.counts()).enumerate() {
            for (a, &b) in mine.iter_mut().zip(theirs.iter()) {
                *a = a
                    .checked_add(b)
                    .ok_or(StoreError::CountOverflow { channel: Some(k) })?;
            }
        }
        n_reports = n_reports
            .checked_add(snapshot.n_reports())
            .ok_or(StoreError::CountOverflow { channel: None })?;
    }
    Snapshot::new(
        first.schema().clone(),
        first.spec().clone(),
        counts,
        n_reports,
    )
}

/// Reads every path as a snapshot file and merges them with
/// [`merge_snapshots`] — the one-call pooling of shards checkpointed by
/// any number of machines.
///
/// ```
/// use mdrr_data::{Attribute, Schema};
/// use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
/// use mdrr_store::{merge_snapshot_files, Snapshot, SnapshotWriter};
///
/// let dir = std::env::temp_dir().join(format!("mdrr-doc-m-{}", std::process::id()));
/// let schema = Schema::new(vec![Attribute::indexed("A", 2)?])?;
/// let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
/// let paths = [dir.join("a.mdrrsnap"), dir.join("b.mdrrsnap")];
/// SnapshotWriter::new(&paths[0])
///     .write(&Snapshot::new(schema.clone(), spec.clone(), vec![vec![3, 1]], 4)?)?;
/// SnapshotWriter::new(&paths[1])
///     .write(&Snapshot::new(schema, spec, vec![vec![0, 6]], 6)?)?;
///
/// let pooled = merge_snapshot_files(&paths)?;
/// assert_eq!(pooled.counts(), &[vec![3, 7]]);
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
/// Propagates [`SnapshotReader::read`] errors for each file plus the
/// compatibility errors of [`merge_snapshots`].
pub fn merge_snapshot_files<P: AsRef<Path>>(paths: &[P]) -> Result<Snapshot, StoreError> {
    let snapshots = paths
        .iter()
        .map(SnapshotReader::read)
        .collect::<Result<Vec<_>, _>>()?;
    merge_snapshots(&snapshots)
}

/// [`merge_snapshots`], instrumented: records the merge count and wall
/// time in `obs`.  The merge itself is byte-identical to the unobserved
/// path.
///
/// ```
/// use mdrr_data::{Attribute, Schema};
/// use mdrr_obs::{MonotonicClock, Registry};
/// use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
/// use mdrr_store::{merge_snapshots, merge_snapshots_observed, Snapshot, StoreObs};
/// use std::sync::Arc;
///
/// let schema = Schema::new(vec![Attribute::indexed("A", 2)?])?;
/// let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
/// let a = Snapshot::new(schema.clone(), spec.clone(), vec![vec![3, 1]], 4)?;
/// let b = Snapshot::new(schema, spec, vec![vec![2, 4]], 6)?;
///
/// let registry = Registry::new();
/// let obs = StoreObs::new(Arc::new(MonotonicClock::new()), &registry);
/// let pooled = merge_snapshots_observed([&a, &b], &obs)?;
/// assert_eq!(pooled, merge_snapshots([&a, &b])?);
/// assert_eq!(registry.snapshot().counter_value("store_merges_total", &[]), Some(1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
/// Same as [`merge_snapshots`].
pub fn merge_snapshots_observed<'a, I>(
    snapshots: I,
    obs: &crate::StoreObs,
) -> Result<Snapshot, StoreError>
where
    I: IntoIterator<Item = &'a Snapshot>,
{
    let clock = obs.clock();
    let start = clock.enabled().then(|| clock.now_nanos());
    let merged = merge_snapshots(snapshots)?;
    if let Some(start) = start {
        obs.merge_nanos
            .record(clock.now_nanos().saturating_sub(start));
    }
    obs.merges.inc();
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdrr_data::{Attribute, Schema};
    use mdrr_protocols::{ProtocolSpec, RandomizationLevel};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::indexed("A", 3).unwrap(),
            Attribute::indexed("B", 2).unwrap(),
        ])
        .unwrap()
    }

    fn spec() -> ProtocolSpec {
        ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7))
    }

    fn snapshot(counts: Vec<Vec<u64>>, n: u64) -> Snapshot {
        Snapshot::new(schema(), spec(), counts, n).unwrap()
    }

    #[test]
    fn merge_sums_counts_exactly_in_any_order() {
        let a = snapshot(vec![vec![1, 2, 0], vec![2, 1]], 3);
        let b = snapshot(vec![vec![0, 0, 4], vec![1, 3]], 4);
        let c = snapshot(vec![vec![1, 0, 0], vec![0, 1]], 1);
        let abc = merge_snapshots([&a, &b, &c]).unwrap();
        let cba = merge_snapshots([&c, &b, &a]).unwrap();
        assert_eq!(abc, cba);
        assert_eq!(abc.counts(), &[vec![2, 2, 4], vec![3, 5]]);
        assert_eq!(abc.n_reports(), 8);
        assert_eq!(abc.app_state(), None);
    }

    #[test]
    fn merge_rejects_incompatible_snapshots() {
        let a = snapshot(vec![vec![1, 2, 0], vec![2, 1]], 3);
        // Different spec (different keep probability).
        let other_spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.5));
        let b = Snapshot::new(schema(), other_spec, vec![vec![1, 0, 0], vec![1, 0]], 1).unwrap();
        assert!(matches!(
            merge_snapshots([&a, &b]),
            Err(StoreError::SpecMismatch { .. })
        ));
        // Different schema.
        let narrow = Schema::new(vec![Attribute::indexed("A", 3).unwrap()]).unwrap();
        let c = Snapshot::new(narrow, spec(), vec![vec![1, 0, 0]], 1).unwrap();
        assert!(matches!(
            merge_snapshots([&a, &c]),
            Err(StoreError::SpecMismatch { .. })
        ));
        // Empty input.
        let none: [&Snapshot; 0] = [];
        assert!(matches!(
            merge_snapshots(none),
            Err(StoreError::InvalidLayout { .. })
        ));
    }

    #[test]
    fn merge_overflow_is_typed() {
        let a = snapshot(
            vec![vec![u64::MAX - 1, 0, 0], vec![u64::MAX - 1, 0]],
            u64::MAX - 1,
        );
        let b = snapshot(vec![vec![2, 0, 0], vec![2, 0]], 2);
        assert!(matches!(
            merge_snapshots([&a, &b]),
            Err(StoreError::CountOverflow { .. })
        ));
    }
}
