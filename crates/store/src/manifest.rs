//! The checkpoint manifest: the commit record of a checkpoint directory.
//!
//! A checkpoint directory holds one snapshot file per shard plus
//! [`MANIFEST_FILE`], written *last* and atomically — the manifest is the
//! commit point.  Shard files are *generation-named*
//! (`shard-00003.g00000007.mdrrsnap` is shard 3 of checkpoint generation
//! 7): a new checkpoint writes a complete new generation of shard files
//! *beside* the committed one, commits the manifest naming the new files,
//! and only then deletes the old generation.  A crash at any single
//! operation therefore leaves either the old complete checkpoint (old
//! manifest, old files untouched) or the new complete one — never a
//! manifest pointing at half-replaced shard files.  Legacy un-suffixed
//! names (`shard-00003.mdrrsnap`) parse as generation 0, so pre-existing
//! checkpoint directories restore and upgrade in place.
//!
//! This module owns the manifest schema and the file-name grammar; the
//! checkpoint/restore choreography lives in `mdrr-stream`, and
//! [`crate::salvage_checkpoint`] rebuilds manifests from surviving shard
//! files after out-of-band damage.

use crate::error::StoreError;
use serde::{Deserialize, Serialize};

/// File name of the checkpoint manifest inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "MANIFEST.json";

/// Version of the manifest JSON layout.
pub const MANIFEST_VERSION: u32 = 1;

/// The commit record of a checkpoint directory: which shard files form
/// the consistent set, how many reports they cover in total, and the
/// caller's opaque resume state.  Serialized as pretty JSON in
/// [`MANIFEST_FILE`]; written last, atomically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointManifest {
    /// Version of this manifest layout (currently 1).
    pub manifest_version: u32,
    /// Number of shards (equals `shard_files.len()`).
    pub n_shards: usize,
    /// Total reports across all shard snapshots at checkpoint time —
    /// restore verifies the shard files still sum to this, which catches
    /// out-of-band tampering with committed files.
    pub total_reports: u64,
    /// Shard snapshot file names relative to the checkpoint directory,
    /// in shard order.
    pub shard_files: Vec<String>,
    /// Opaque application resume state (e.g. `stream_sim`'s RNG
    /// position), or `None`.
    pub app_state: Option<String>,
}

impl CheckpointManifest {
    /// Serializes the manifest as the pretty JSON committed to
    /// [`MANIFEST_FILE`].
    ///
    /// # Errors
    /// Returns [`StoreError::InvalidHeader`] if serialization fails.
    pub fn to_json(&self) -> Result<String, StoreError> {
        serde_json::to_string_pretty(self)
            .map_err(|e| StoreError::header(format!("manifest does not serialize: {e}")))
    }

    /// Parses a manifest from its committed JSON.
    ///
    /// # Errors
    /// Returns [`StoreError::InvalidHeader`] for malformed JSON.
    pub fn from_json(json: &str) -> Result<Self, StoreError> {
        serde_json::from_str(json)
            .map_err(|e| StoreError::header(format!("malformed checkpoint manifest: {e}")))
    }
}

/// The snapshot file name of shard `shard` in checkpoint generation
/// `generation`.
///
/// ```
/// assert_eq!(
///     mdrr_store::shard_file_name(3, 7),
///     "shard-00003.g00000007.mdrrsnap"
/// );
/// ```
pub fn shard_file_name(shard: usize, generation: u64) -> String {
    format!("shard-{shard:05}.g{generation:08}.mdrrsnap")
}

/// Parses a shard snapshot file name into `(shard, generation)`.
/// Generation-suffixed names parse exactly; legacy un-suffixed names
/// (`shard-00003.mdrrsnap`, written before generations existed) parse as
/// generation 0.  Anything else — manifests, temp files, foreign files —
/// returns `None`.
///
/// ```
/// use mdrr_store::parse_shard_file_name;
/// assert_eq!(parse_shard_file_name("shard-00003.g00000007.mdrrsnap"), Some((3, 7)));
/// assert_eq!(parse_shard_file_name("shard-00012.mdrrsnap"), Some((12, 0)));
/// assert_eq!(parse_shard_file_name("MANIFEST.json"), None);
/// assert_eq!(parse_shard_file_name("shard-00003.g00000007.mdrrsnap.tmp"), None);
/// ```
pub fn parse_shard_file_name(name: &str) -> Option<(usize, u64)> {
    let rest = name.strip_prefix("shard-")?;
    let (digits, rest) = rest.split_once('.')?;
    let shard: usize = digits.parse().ok()?;
    if !digits.chars().all(|c| c.is_ascii_digit()) {
        return None;
    }
    if rest == "mdrrsnap" {
        return Some((shard, 0));
    }
    let gen_digits = rest.strip_prefix('g')?.strip_suffix(".mdrrsnap")?;
    if !gen_digits.chars().all(|c| c.is_ascii_digit()) {
        return None;
    }
    let generation: u64 = gen_digits.parse().ok()?;
    Some((shard, generation))
}

/// The generation the next checkpoint of a directory should write: one
/// past the highest generation present among `names` (so 1 for an empty
/// or legacy directory — legacy files are generation 0).
///
/// ```
/// let names = ["shard-00000.g00000004.mdrrsnap", "MANIFEST.json"];
/// assert_eq!(
///     mdrr_store::next_generation(names.iter().map(|s| s.to_string())),
///     5
/// );
/// assert_eq!(mdrr_store::next_generation(std::iter::empty()), 1);
/// ```
pub fn next_generation(names: impl Iterator<Item = String>) -> u64 {
    names
        .filter_map(|name| parse_shard_file_name(&name).map(|(_, generation)| generation))
        .max()
        .map_or(1, |highest| highest.saturating_add(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_json_round_trips() {
        let manifest = CheckpointManifest {
            manifest_version: MANIFEST_VERSION,
            n_shards: 2,
            total_reports: 77,
            shard_files: vec![shard_file_name(0, 3), shard_file_name(1, 3)],
            app_state: Some("rng@77".to_string()),
        };
        let json = manifest.to_json().unwrap();
        assert_eq!(CheckpointManifest::from_json(&json).unwrap(), manifest);
        assert!(matches!(
            CheckpointManifest::from_json("{not json"),
            Err(StoreError::InvalidHeader { .. })
        ));
    }

    #[test]
    fn file_name_grammar_round_trips_and_rejects_foreigners() {
        for (shard, generation) in [(0usize, 1u64), (7, 0), (99_999, 99_999_999)] {
            let name = shard_file_name(shard, generation);
            assert_eq!(parse_shard_file_name(&name), Some((shard, generation)));
        }
        for foreign in [
            "MANIFEST.json",
            "shard-00000.mdrrsnap.tmp",
            "shard-abcde.mdrrsnap",
            "shard-00000.gxxxxxxx.mdrrsnap",
            "shard-00000.g0000001.other",
            "shardy-00000.mdrrsnap",
            "notes.txt",
        ] {
            assert_eq!(parse_shard_file_name(foreign), None, "{foreign}");
        }
        // Legacy names are generation 0.
        assert_eq!(parse_shard_file_name("shard-00004.mdrrsnap"), Some((4, 0)));
    }

    #[test]
    fn next_generation_scans_past_the_highest() {
        let names = vec![
            "shard-00000.g00000002.mdrrsnap".to_string(),
            "shard-00001.g00000003.mdrrsnap".to_string(), // torn newer gen
            "shard-00000.mdrrsnap".to_string(),           // legacy, gen 0
            "MANIFEST.json".to_string(),
            "debris.tmp".to_string(),
        ];
        assert_eq!(next_generation(names.into_iter()), 4);
        // A legacy-only directory starts generations at 1.
        assert_eq!(
            next_generation(std::iter::once("shard-00000.mdrrsnap".to_string())),
            1
        );
    }
}
