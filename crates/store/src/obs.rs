//! Optional store instrumentation: durations, byte counts and CRC
//! verification time for snapshot I/O and merging.
//!
//! [`StoreObs`] bundles the injected [`Clock`] with the store's
//! instruments, registered into a caller-supplied
//! [`Registry`] so one registry can hold the whole
//! pipeline's metrics.  Every observed entry point is a sibling of an
//! unobserved one (`write` / `write_observed`, …): the unobserved paths
//! are untouched, and an observed path under a
//! [`NullClock`](mdrr_obs::NullClock) skips all timing work.
//!
//! Metric catalog (all registered on construction, so exports always show
//! the full set even before the first write):
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `store_snapshot_writes_total` | counter | snapshot files written |
//! | `store_write_nanos` | histogram | per-write wall time |
//! | `store_bytes_written_total` | counter | serialized bytes written |
//! | `store_snapshot_reads_total` | counter | snapshot files read |
//! | `store_read_nanos` | histogram | per-read wall time |
//! | `store_bytes_read_total` | counter | file bytes read |
//! | `store_crc_nanos` | histogram | CRC-64 verification time per read |
//! | `store_merges_total` | counter | merge operations |
//! | `store_merge_nanos` | histogram | per-merge wall time |

use mdrr_obs::{Clock, Counter, Histogram, Registry};
use std::sync::Arc;

/// The store's instruments plus the clock that times them.
///
/// ```
/// use mdrr_obs::{MonotonicClock, Registry};
/// use mdrr_store::StoreObs;
/// use std::sync::Arc;
///
/// let registry = Registry::new();
/// let obs = StoreObs::new(Arc::new(MonotonicClock::new()), &registry);
/// assert!(obs.clock().enabled());
/// // All store metrics exist from construction.
/// let snapshot = registry.snapshot();
/// assert_eq!(snapshot.counter_value("store_snapshot_writes_total", &[]), Some(0));
/// assert!(snapshot.histogram_snapshot("store_crc_nanos", &[]).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct StoreObs {
    clock: Arc<dyn Clock>,
    pub(crate) writes: Arc<Counter>,
    pub(crate) write_nanos: Arc<Histogram>,
    pub(crate) bytes_written: Arc<Counter>,
    pub(crate) reads: Arc<Counter>,
    pub(crate) read_nanos: Arc<Histogram>,
    pub(crate) bytes_read: Arc<Counter>,
    pub(crate) crc_nanos: Arc<Histogram>,
    pub(crate) merges: Arc<Counter>,
    pub(crate) merge_nanos: Arc<Histogram>,
}

impl StoreObs {
    /// Registers the store's instruments in `registry` and binds them to
    /// `clock`.
    pub fn new(clock: Arc<dyn Clock>, registry: &Registry) -> Self {
        StoreObs {
            clock,
            writes: registry.counter("store_snapshot_writes_total"),
            write_nanos: registry.histogram("store_write_nanos"),
            bytes_written: registry.counter("store_bytes_written_total"),
            reads: registry.counter("store_snapshot_reads_total"),
            read_nanos: registry.histogram("store_read_nanos"),
            bytes_read: registry.counter("store_bytes_read_total"),
            crc_nanos: registry.histogram("store_crc_nanos"),
            merges: registry.counter("store_merges_total"),
            merge_nanos: registry.histogram("store_merge_nanos"),
        }
    }

    /// The clock the observed store paths read.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }
}
