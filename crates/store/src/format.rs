//! The on-disk snapshot format: byte-level encoding, decoding and the
//! trailing checksum.
//!
//! The format is specified byte by byte in `docs/FORMAT.md` at the
//! repository root — this module is the reference implementation of that
//! contract.  In short (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  = "MDRRSNAP" (ASCII)
//! 8       4     format version (u32, currently 1)
//! 12      8     record count (u64)
//! 20      4     channel count C (u32)
//! 24      4     header JSON length H (u32)
//! 28      H     header JSON (UTF-8: schema, protocol spec, app state)
//! 28+H    …     C channel blocks: u32 length L, then L × u64 counts
//! end-8   8     CRC-64/XZ over every preceding byte (u64)
//! ```
//!
//! Decoding never trusts a declared length beyond the bytes actually
//! present, so corrupt length fields cannot trigger huge allocations;
//! every failure mode maps to a typed [`StoreError`].

use crate::error::StoreError;
use crate::snapshot::{Snapshot, SnapshotHeader};
use std::sync::OnceLock;

/// The eight magic bytes every snapshot starts with (`MDRRSNAP` in ASCII).
///
/// ```
/// assert_eq!(mdrr_store::MAGIC, *b"MDRRSNAP");
/// ```
pub const MAGIC: [u8; 8] = *b"MDRRSNAP";

/// The snapshot format version this crate reads and writes.  Readers must
/// reject any other version (see `docs/FORMAT.md` for the versioning
/// rules).
///
/// ```
/// assert_eq!(mdrr_store::FORMAT_VERSION, 1);
/// ```
pub const FORMAT_VERSION: u32 = 1;

/// The reflected CRC-64/XZ generator polynomial.
const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

/// CRC-64/XZ (also known as CRC-64/GO-ECMA): reflected polynomial
/// `0xC96C5795D7870F42`, initial value `!0`, output
/// xor `!0`.  This is the checksum at the tail of every snapshot; it is
/// also exposed so external implementations of the format can test their
/// own checksummers against this one.
///
/// ```
/// // The standard check vector of CRC-64/XZ:
/// assert_eq!(mdrr_store::crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
/// assert_eq!(mdrr_store::crc64(b""), 0);
/// ```
pub fn crc64(bytes: &[u8]) -> u64 {
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u64; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u64;
            for _ in 0..8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ CRC64_POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    });
    let mut crc = !0u64;
    for &b in bytes {
        // lint:allow(no-panic-paths, reason = "index is masked to 0..256 by the & 0xFF, table has 256 slots")
        crc = table[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Serializes a snapshot into the on-disk byte layout (header, channel
/// blocks, trailing checksum).
pub(crate) fn encode(snapshot: &Snapshot) -> Result<Vec<u8>, StoreError> {
    let header = SnapshotHeader {
        schema: snapshot.schema().clone(),
        spec: snapshot.spec().clone(),
        app_state: snapshot.app_state().map(str::to_string),
    };
    let header_json = serde_json::to_string(&header)
        .map_err(|e| StoreError::header(format!("header does not serialize: {e}")))?;
    let header_bytes = header_json.as_bytes();
    if header_bytes.len() > u32::MAX as usize {
        return Err(StoreError::header("header JSON exceeds u32::MAX bytes"));
    }

    let counts = snapshot.counts();
    let payload: usize = counts.iter().map(|c| 4 + 8 * c.len()).sum();
    let mut out = Vec::with_capacity(28 + header_bytes.len() + payload + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&snapshot.n_reports().to_le_bytes());
    out.extend_from_slice(&(counts.len() as u32).to_le_bytes());
    out.extend_from_slice(&(header_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(header_bytes);
    for channel in counts {
        if channel.len() > u32::MAX as usize {
            return Err(StoreError::layout("a channel exceeds u32::MAX categories"));
        }
        out.extend_from_slice(&(channel.len() as u32).to_le_bytes());
        for &count in channel {
            out.extend_from_slice(&count.to_le_bytes());
        }
    }
    let checksum = crc64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    Ok(out)
}

/// A bounds-checked reader over a byte buffer: every read either returns
/// the requested slice or a [`StoreError::Truncated`] naming the offset.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let available = self.bytes.len().saturating_sub(self.pos);
        let end = self.pos.saturating_add(n);
        let slice = self.bytes.get(self.pos..end).ok_or(StoreError::Truncated {
            offset: self.pos,
            needed: n,
            available,
        })?;
        self.pos = end;
        Ok(slice)
    }

    /// `take(N)` as a fixed-size array, with the length proven by
    /// construction rather than by a panicking conversion.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], StoreError> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        for (dst, src) in out.iter_mut().zip(slice) {
            *dst = *src;
        }
        Ok(out)
    }

    fn take_u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    fn take_u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }
}

/// Parses and validates the on-disk byte layout back into a snapshot:
/// magic and version first, then a bounds-checked structural walk, then
/// the checksum, then the header JSON and the counting invariants.
pub(crate) fn decode(bytes: &[u8]) -> Result<Snapshot, StoreError> {
    decode_timed(bytes, None).map(|(snapshot, _)| snapshot)
}

/// [`decode`], additionally reporting how long the CRC-64 verification
/// took (in nanoseconds of `clock`; 0 when `clock` is `None` or
/// disabled).  The observed read path uses this so checksum cost is
/// measured where it is paid instead of re-hashing the buffer.
pub(crate) fn decode_timed(
    bytes: &[u8],
    clock: Option<&dyn mdrr_obs::Clock>,
) -> Result<(Snapshot, u64), StoreError> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let magic: [u8; 8] = cursor.take_array()?;
    if magic != MAGIC {
        return Err(StoreError::BadMagic { found: magic });
    }
    let version = cursor.take_u32()?;
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let n_reports = cursor.take_u64()?;
    let n_channels = cursor.take_u32()? as usize;
    let header_len = cursor.take_u32()? as usize;
    let header_bytes = cursor.take(header_len)?;
    let mut counts: Vec<Vec<u64>> = Vec::new();
    for _ in 0..n_channels {
        let len = cursor.take_u32()? as usize;
        // Bounds-check the whole block before allocating, so a corrupt
        // length field cannot request a giant buffer.
        let block = cursor.take(len.saturating_mul(8))?;
        counts.push(
            block
                .chunks_exact(8)
                .map(|c| {
                    let mut word = [0u8; 8];
                    for (dst, src) in word.iter_mut().zip(c) {
                        *dst = *src;
                    }
                    u64::from_le_bytes(word)
                })
                .collect(),
        );
    }
    let checksum_offset = cursor.pos;
    let stored = cursor.take_u64()?;
    if cursor.pos != bytes.len() {
        return Err(StoreError::layout(format!(
            "{} unexpected trailing bytes after the checksum",
            bytes.len() - cursor.pos
        )));
    }
    // `cursor.pos` never exceeds `bytes.len()` (every advance is bounds-
    // checked in `take`), so this slice is total; if that invariant ever
    // broke, falling back to the full buffer makes the comparison below
    // fail as a mismatch instead of panicking.
    let timing = clock.filter(|c| c.enabled());
    let crc_start = timing.map(|c| c.now_nanos());
    let computed = crc64(bytes.get(..checksum_offset).unwrap_or(bytes));
    let crc_nanos = match (timing, crc_start) {
        (Some(c), Some(start)) => c.now_nanos().saturating_sub(start),
        _ => 0,
    };
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }

    let header_json = std::str::from_utf8(header_bytes)
        .map_err(|_| StoreError::header("header is not valid UTF-8"))?;
    let header: SnapshotHeader = serde_json::from_str(header_json)
        .map_err(|e| StoreError::header(format!("header JSON does not parse: {e}")))?;
    let mut snapshot = Snapshot::new(header.schema, header.spec, counts, n_reports)?;
    snapshot.set_app_state(header.app_state);
    Ok((snapshot, crc_nanos))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_matches_the_published_check_vectors() {
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
        // A single flipped bit changes the checksum.
        assert_ne!(crc64(b"123456788"), crc64(b"123456789"));
    }

    #[test]
    fn decode_rejects_foreign_and_short_files() {
        assert!(matches!(
            decode(b"PNG\x89abc"),
            Err(StoreError::Truncated { .. })
        ));
        assert!(matches!(
            decode(b"NOTASNAPxxxxxxxxxxxxxxxxxxxxxxxx"),
            Err(StoreError::BadMagic { .. })
        ));
        let mut future = Vec::new();
        future.extend_from_slice(&MAGIC);
        future.extend_from_slice(&7u32.to_le_bytes());
        future.extend_from_slice(&[0u8; 24]);
        assert!(matches!(
            decode(&future),
            Err(StoreError::UnsupportedVersion {
                found: 7,
                supported: 1
            })
        ));
    }
}
