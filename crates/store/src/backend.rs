//! The storage backend boundary: every file operation the store performs,
//! behind one trait.
//!
//! [`StorageBackend`] is the seam between the store's durability logic
//! (atomic temp-file-and-rename writes, checkpoint commits, salvage) and
//! the filesystem that executes it.  [`OsBackend`] is the production
//! implementation — byte-for-byte the operations the store has always
//! performed — and [`FaultyBackend`] executes the same operations against
//! the real filesystem while injecting a scripted [`FaultPlan`]: fail
//! operation *N* transiently or permanently, tear a write after *K*
//! bytes, acknowledge a sync without honouring it, or cut the power
//! entirely.  Because the plan is indexed by a deterministic global
//! operation counter, a crash-consistency harness can enumerate *every*
//! fault point of a multi-file protocol exhaustively (fail at op 0, op 1,
//! …) instead of sampling a few.
//!
//! Fault semantics worth knowing:
//!
//! * [`FaultKind::Crash`] and [`FaultKind::TornWrite`] model a power cut:
//!   the backend truncates every written-but-not-fsynced file back to its
//!   last synced length (what a real disk would lose) and every later
//!   operation fails permanently.
//! * [`FaultKind::LyingSync`] models firmware that acknowledges a flush
//!   without performing it: the sync returns `Ok`, but the file stays in
//!   the not-yet-durable set, so a later `Crash` discards the data the
//!   caller believed safe.  This deliberately breaks the old-or-new
//!   guarantee of atomic writes — it is the scenario
//!   [`crate::salvage_checkpoint`] exists for.
//! * [`FaultKind::Transient`] failures are re-executable: the faulted
//!   call performs nothing, and a retry (a fresh call, hence a fresh
//!   operation index) succeeds unless the plan scripts another fault.

use crate::error::StoreError;
use std::collections::HashMap;
use std::fmt::Debug;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The file operations the store is allowed to perform, each returning a
/// typed [`StoreError`].  Implementations must be safe to share across
/// the collector's ingest/checkpoint threads.
pub trait StorageBackend: Debug + Send + Sync {
    /// Creates `path` and every missing ancestor directory.
    fn create_dir_all(&self, path: &Path) -> Result<(), StoreError>;

    /// Creates (or truncates) the file at `path` and writes `bytes` to it.
    /// The data is *not* durable until [`StorageBackend::sync`] succeeds.
    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError>;

    /// Flushes the file at `path` to stable storage (fsync).
    fn sync(&self, path: &Path) -> Result<(), StoreError>;

    /// Atomically renames `from` to `to` (same filesystem).
    fn rename(&self, from: &Path, to: &Path) -> Result<(), StoreError>;

    /// Flushes the directory entry table at `dir` so a preceding rename
    /// survives a power cut.  Best-effort on filesystems that cannot
    /// fsync a directory handle — implementations swallow that case.
    fn sync_dir(&self, dir: &Path) -> Result<(), StoreError>;

    /// Reads the full contents of the file at `path`.
    fn read(&self, path: &Path) -> Result<Vec<u8>, StoreError>;

    /// The file names (not full paths) of the entries in `dir`,
    /// in sorted order.  A missing directory reads as empty.
    fn list_dir(&self, dir: &Path) -> Result<Vec<String>, StoreError>;

    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> Result<(), StoreError>;

    /// Whether a file or directory exists at `path`.
    fn exists(&self, path: &Path) -> bool;
}

/// The production backend: plain `std::fs`, preserving exactly the
/// operations (and the best-effort directory-fsync behavior) the store
/// performed before the backend seam existed.
///
/// ```
/// use mdrr_store::{OsBackend, StorageBackend};
/// let dir = std::env::temp_dir().join(format!("mdrr-osb-doc-{}", std::process::id()));
/// let backend = OsBackend;
/// backend.create_dir_all(&dir)?;
/// backend.write(&dir.join("a.bin"), b"payload")?;
/// backend.sync(&dir.join("a.bin"))?;
/// assert_eq!(backend.read(&dir.join("a.bin"))?, b"payload");
/// assert_eq!(backend.list_dir(&dir)?, vec!["a.bin".to_string()]);
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), mdrr_store::StoreError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct OsBackend;

impl StorageBackend for OsBackend {
    fn create_dir_all(&self, path: &Path) -> Result<(), StoreError> {
        fs::create_dir_all(path)
            .map_err(|e| StoreError::io(format!("create directory {}", path.display()), e))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        let mut file = File::create(path)
            .map_err(|e| StoreError::io(format!("create file {}", path.display()), e))?;
        file.write_all(bytes)
            .map_err(|e| StoreError::io(format!("write file {}", path.display()), e))
    }

    fn sync(&self, path: &Path) -> Result<(), StoreError> {
        let file = File::open(path)
            .map_err(|e| StoreError::io(format!("open for sync {}", path.display()), e))?;
        file.sync_all()
            .map_err(|e| StoreError::io(format!("sync file {}", path.display()), e))
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), StoreError> {
        fs::rename(from, to).map_err(|e| {
            StoreError::io(
                format!("rename {} over {}", from.display(), to.display()),
                e,
            )
        })
    }

    fn sync_dir(&self, dir: &Path) -> Result<(), StoreError> {
        // Not all filesystems support fsync on a directory handle; this
        // has always been best-effort, so unsupported is not an error.
        if let Ok(handle) = File::open(dir) {
            let _ = handle.sync_all();
        }
        Ok(())
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, StoreError> {
        fs::read(path).map_err(|e| StoreError::io(format!("read file {}", path.display()), e))
    }

    fn list_dir(&self, dir: &Path) -> Result<Vec<String>, StoreError> {
        let entries = match fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => {
                return Err(StoreError::io(
                    format!("list directory {}", dir.display()),
                    e,
                ))
            }
        };
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry
                .map_err(|e| StoreError::io(format!("list directory {}", dir.display()), e))?;
            if let Some(name) = entry.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        names.sort();
        Ok(names)
    }

    fn remove_file(&self, path: &Path) -> Result<(), StoreError> {
        fs::remove_file(path)
            .map_err(|e| StoreError::io(format!("remove file {}", path.display()), e))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// What a scripted fault does to the operation it fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with a transient I/O error and performs
    /// nothing; a retry re-executes it (at a fresh operation index).
    Transient,
    /// The operation fails with a permanent I/O error and performs
    /// nothing; retrying is pointless.
    Permanent,
    /// Power cut mid-write: only the first `keep_bytes` bytes reach the
    /// file, the backend crashes, and every later operation fails.  On a
    /// non-write operation this degrades to [`FaultKind::Crash`].
    TornWrite {
        /// Bytes of the attempted write that survive.
        keep_bytes: usize,
    },
    /// Power cut before the operation: nothing is performed, files
    /// written but not fsynced are truncated to their last synced length
    /// (what a real disk loses), and every later operation fails.
    Crash,
    /// The sync reports success without flushing: the file stays
    /// non-durable, so a later [`FaultKind::Crash`] discards it.  On a
    /// non-sync operation the fault is inert.
    LyingSync,
}

/// One scripted fault: fire `kind` when the backend executes its
/// `at_op`-th operation (0-based, counted across all operation types).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Global operation index the fault fires at.
    pub at_op: u64,
    /// What happens at that operation.
    pub kind: FaultKind,
}

/// A deterministic fault script for a [`FaultyBackend`].
///
/// ```
/// use mdrr_store::{FaultKind, FaultPlan};
/// let plan = FaultPlan::fail_at(3, FaultKind::Crash);
/// assert_eq!(plan.faults().len(), 1);
/// // Seeded plans are reproducible.
/// assert_eq!(FaultPlan::random(7, 100, 4), FaultPlan::random(7, 100, 4));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan with no faults (the backend behaves like [`OsBackend`] with
    /// an operation counter).
    pub fn none() -> Self {
        FaultPlan { faults: Vec::new() }
    }

    /// A plan containing exactly the given faults.
    pub fn new(faults: Vec<Fault>) -> Self {
        FaultPlan { faults }
    }

    /// A single fault: `kind` at operation `at_op`.
    pub fn fail_at(at_op: u64, kind: FaultKind) -> Self {
        FaultPlan {
            faults: vec![Fault { at_op, kind }],
        }
    }

    /// A reproducible pseudo-random plan of `n_faults` faults at distinct
    /// operation indices below `op_bound`, derived from `seed` with a
    /// SplitMix64 stream (no ambient randomness).  Crash-class faults are
    /// excluded — random soak plans exercise transients, torn writes and
    /// lying syncs, while crashes are scripted deliberately.
    // lint:allow(seeded-rng-only, reason = "every draw derives from the explicit `seed` parameter via SplitMix64; the name `random` describes the plan shape, not an ambient RNG")
    pub fn random(seed: u64, op_bound: u64, n_faults: usize) -> Self {
        let bound = op_bound.max(1);
        let mut state = seed;
        let mut next = move || {
            // SplitMix64: the workspace's stock seeded generator for
            // test-infrastructure streams.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut faults = Vec::with_capacity(n_faults);
        let mut used = Vec::new();
        while faults.len() < n_faults && used.len() < bound as usize {
            let at_op = next() % bound;
            if used.contains(&at_op) {
                continue;
            }
            used.push(at_op);
            let kind = match next() % 3 {
                0 => FaultKind::Transient,
                1 => FaultKind::TornWrite {
                    keep_bytes: (next() % 64) as usize,
                },
                _ => FaultKind::LyingSync,
            };
            faults.push(Fault { at_op, kind });
        }
        faults.sort_by_key(|f| f.at_op);
        FaultPlan { faults }
    }

    /// The scripted faults, in the order given.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The fault scripted for operation `at_op`, if any (first match
    /// wins).
    fn fault_at(&self, at_op: u64) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|f| f.at_op == at_op)
            .map(|f| f.kind)
    }
}

/// Mutable fault state behind the [`FaultyBackend`] mutex.
#[derive(Debug, Default)]
struct FaultState {
    /// Operations executed so far (the index the next operation gets).
    ops: u64,
    /// Faults actually fired.
    injected: u64,
    /// Whether a crash-class fault has fired: all later operations fail.
    crashed: bool,
    /// Written-but-not-durably-synced files: path → last synced length.
    /// A crash truncates each to that length (removing files never
    /// synced at all).
    dirty: HashMap<PathBuf, u64>,
}

/// A [`StorageBackend`] that executes real filesystem operations through
/// an [`OsBackend`] while injecting the faults of a scripted
/// [`FaultPlan`] — the deterministic disk-failure simulator behind the
/// crash-consistency torture harness and `stream_sim --chaos`.
///
/// ```
/// use mdrr_store::{FaultKind, FaultPlan, FaultyBackend, StorageBackend};
/// let dir = std::env::temp_dir().join(format!("mdrr-fb-doc-{}", std::process::id()));
/// std::fs::create_dir_all(&dir)?;
/// let backend = FaultyBackend::new(FaultPlan::fail_at(1, FaultKind::Permanent));
/// backend.write(&dir.join("ok.bin"), b"first")?;        // op 0: fine
/// assert!(backend.write(&dir.join("no.bin"), b"second").is_err()); // op 1: faulted
/// assert_eq!(backend.ops_executed(), 2);
/// assert_eq!(backend.injected(), 1);
/// assert!(!backend.crashed());
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct FaultyBackend {
    inner: OsBackend,
    plan: FaultPlan,
    state: Mutex<FaultState>,
}

/// The outcome of consulting the fault plan for one operation.
enum Injection {
    /// Execute the operation normally.
    Proceed,
    /// Fail the operation with this error, performing nothing.
    Fail(StoreError),
    /// Tear the write after this many bytes (write operations only).
    Tear(usize),
    /// Acknowledge the sync without performing it (sync operations only).
    Lie,
}

impl FaultyBackend {
    /// A faulty backend executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultyBackend {
            inner: OsBackend,
            plan,
            state: Mutex::new(FaultState::default()),
        }
    }

    /// Operations executed (including faulted ones) so far.  Running a
    /// workload against `FaultPlan::none()` and reading this is how the
    /// torture harness learns the exhaustive fault-point range.
    pub fn ops_executed(&self) -> u64 {
        self.lock().ops
    }

    /// Faults actually fired so far.
    pub fn injected(&self) -> u64 {
        self.lock().injected
    }

    /// Whether a crash-class fault has fired (all later operations fail).
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Cuts the power immediately, outside the scripted plan: every file
    /// written but not *honestly* synced is truncated to its last durable
    /// length, and all later operations fail.  The torture harness calls
    /// this after a workload to make lying syncs observable even when no
    /// crash fault was scripted.
    pub fn power_cut(&self) {
        let mut state = self.lock();
        state.crashed = true;
        Self::lose_unsynced(&mut state);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        // A poisoned mutex only means a panic elsewhere mid-operation;
        // the fault state stays structurally valid, so keep serving it.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Claims the next operation index, fires any scripted fault, and
    /// reports how the operation should proceed.  `is_write` / `is_sync`
    /// select which fault kinds apply.
    fn admit(&self, what: &str, path: &Path, is_write: bool, is_sync: bool) -> Injection {
        let mut state = self.lock();
        let op = state.ops;
        state.ops = state.ops.wrapping_add(1);
        if state.crashed {
            return Injection::Fail(StoreError::io_permanent(
                format!("{what} {} after simulated power cut", path.display()),
                io::Error::other("backend crashed"),
            ));
        }
        let Some(kind) = self.plan.fault_at(op) else {
            return Injection::Proceed;
        };
        match kind {
            FaultKind::Transient => {
                state.injected += 1;
                Injection::Fail(StoreError::io_transient(
                    format!("{what} {} (injected at op {op})", path.display()),
                    io::Error::new(io::ErrorKind::Interrupted, "injected transient fault"),
                ))
            }
            FaultKind::Permanent => {
                state.injected += 1;
                Injection::Fail(StoreError::io_permanent(
                    format!("{what} {} (injected at op {op})", path.display()),
                    io::Error::other("injected permanent fault"),
                ))
            }
            FaultKind::TornWrite { keep_bytes } if is_write => {
                state.injected += 1;
                state.crashed = true;
                Self::lose_unsynced(&mut state);
                Injection::Tear(keep_bytes)
            }
            FaultKind::TornWrite { .. } | FaultKind::Crash => {
                state.injected += 1;
                state.crashed = true;
                Self::lose_unsynced(&mut state);
                Injection::Fail(StoreError::io_permanent(
                    format!("{what} {} (simulated power cut at op {op})", path.display()),
                    io::Error::other("injected crash"),
                ))
            }
            FaultKind::LyingSync if is_sync => {
                state.injected += 1;
                Injection::Lie
            }
            FaultKind::LyingSync => Injection::Proceed,
        }
    }

    /// Applies the crash's data loss: every dirty file is truncated back
    /// to its last synced length (files never synced are removed), the
    /// way a real power cut discards unflushed page-cache contents.
    fn lose_unsynced(state: &mut FaultState) {
        for (path, synced_len) in state.dirty.drain() {
            if synced_len == 0 {
                let _ = fs::remove_file(&path);
            } else if let Ok(file) = OpenOptions::new().write(true).open(&path) {
                let _ = file.set_len(synced_len);
            }
        }
    }
}

impl StorageBackend for FaultyBackend {
    fn create_dir_all(&self, path: &Path) -> Result<(), StoreError> {
        match self.admit("create directory", path, false, false) {
            Injection::Fail(e) => Err(e),
            _ => self.inner.create_dir_all(path),
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        match self.admit("write file", path, true, false) {
            Injection::Fail(e) => Err(e),
            Injection::Tear(keep_bytes) => {
                let keep = keep_bytes.min(bytes.len());
                let _ = self.inner.write(path, bytes.get(..keep).unwrap_or(bytes));
                Err(StoreError::io_permanent(
                    format!(
                        "write file {} (torn after {keep} of {} bytes)",
                        path.display(),
                        bytes.len()
                    ),
                    io::Error::other("injected torn write"),
                ))
            }
            _ => {
                self.inner.write(path, bytes)?;
                // Freshly (re)written contents are not durable until a
                // sync succeeds honestly.
                self.lock().dirty.insert(path.to_path_buf(), 0);
                Ok(())
            }
        }
    }

    fn sync(&self, path: &Path) -> Result<(), StoreError> {
        match self.admit("sync file", path, false, true) {
            Injection::Fail(e) => Err(e),
            Injection::Lie => Ok(()), // acknowledged, not performed
            _ => {
                self.inner.sync(path)?;
                self.lock().dirty.remove(path);
                Ok(())
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), StoreError> {
        match self.admit("rename", from, false, false) {
            Injection::Fail(e) => Err(e),
            _ => {
                self.inner.rename(from, to)?;
                // Unsynced contents stay unsynced under the new name.
                let mut state = self.lock();
                if let Some(synced_len) = state.dirty.remove(from) {
                    state.dirty.insert(to.to_path_buf(), synced_len);
                }
                Ok(())
            }
        }
    }

    fn sync_dir(&self, dir: &Path) -> Result<(), StoreError> {
        match self.admit("sync directory", dir, false, true) {
            Injection::Fail(e) => Err(e),
            Injection::Lie => Ok(()),
            _ => self.inner.sync_dir(dir),
        }
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, StoreError> {
        match self.admit("read file", path, false, false) {
            Injection::Fail(e) => Err(e),
            _ => self.inner.read(path),
        }
    }

    fn list_dir(&self, dir: &Path) -> Result<Vec<String>, StoreError> {
        match self.admit("list directory", dir, false, false) {
            Injection::Fail(e) => Err(e),
            _ => self.inner.list_dir(dir),
        }
    }

    fn remove_file(&self, path: &Path) -> Result<(), StoreError> {
        match self.admit("remove file", path, false, false) {
            Injection::Fail(e) => Err(e),
            _ => self.inner.remove_file(path),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        // Existence checks are free of I/O side effects and not part of
        // the fault-point enumeration.
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mdrr-backend-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn os_backend_round_trips_and_lists() {
        let dir = scratch_dir("os");
        let backend = OsBackend;
        backend.write(&dir.join("b.bin"), b"bb").unwrap();
        backend.write(&dir.join("a.bin"), b"aa").unwrap();
        backend.sync(&dir.join("a.bin")).unwrap();
        backend.sync_dir(&dir).unwrap();
        assert_eq!(backend.read(&dir.join("a.bin")).unwrap(), b"aa");
        assert_eq!(backend.list_dir(&dir).unwrap(), vec!["a.bin", "b.bin"]);
        backend
            .rename(&dir.join("a.bin"), &dir.join("c.bin"))
            .unwrap();
        assert!(backend.exists(&dir.join("c.bin")));
        assert!(!backend.exists(&dir.join("a.bin")));
        backend.remove_file(&dir.join("c.bin")).unwrap();
        // A missing directory lists as empty, not as an error.
        assert!(backend.list_dir(&dir.join("absent")).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transient_fault_fires_once_then_the_retry_succeeds() {
        let dir = scratch_dir("transient");
        let backend = FaultyBackend::new(FaultPlan::fail_at(0, FaultKind::Transient));
        let err = backend.write(&dir.join("x.bin"), b"x").unwrap_err();
        assert!(err.is_transient());
        // The retry is a fresh op (index 1): no fault scripted there.
        backend.write(&dir.join("x.bin"), b"x").unwrap();
        assert_eq!(backend.ops_executed(), 2);
        assert_eq!(backend.injected(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_keeps_a_prefix_and_crashes_the_backend() {
        let dir = scratch_dir("torn");
        let backend = FaultyBackend::new(FaultPlan::fail_at(
            0,
            FaultKind::TornWrite { keep_bytes: 3 },
        ));
        let err = backend
            .write(&dir.join("t.bin"), b"0123456789")
            .unwrap_err();
        assert!(!err.is_transient());
        assert_eq!(fs::read(dir.join("t.bin")).unwrap(), b"012");
        assert!(backend.crashed());
        // Everything after the power cut fails.
        assert!(backend.read(&dir.join("t.bin")).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lying_sync_loses_the_file_at_the_next_crash() {
        let dir = scratch_dir("liar");
        let backend = FaultyBackend::new(FaultPlan::new(vec![
            Fault {
                at_op: 1,
                kind: FaultKind::LyingSync,
            },
            Fault {
                at_op: 3,
                kind: FaultKind::Crash,
            },
        ]));
        backend.write(&dir.join("l.bin"), b"precious").unwrap(); // op 0
        backend.sync(&dir.join("l.bin")).unwrap(); // op 1: acknowledged, not flushed
        backend
            .rename(&dir.join("l.bin"), &dir.join("m.bin"))
            .unwrap(); // op 2: dirtiness follows the rename
        assert!(backend.read(&dir.join("m.bin")).is_err()); // op 3: power cut
                                                            // The never-really-synced file is gone, as on a real disk.
        assert!(!dir.join("m.bin").exists());
        assert!(!dir.join("l.bin").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn honest_sync_survives_a_crash() {
        let dir = scratch_dir("honest");
        let backend = FaultyBackend::new(FaultPlan::fail_at(2, FaultKind::Crash));
        backend.write(&dir.join("h.bin"), b"durable").unwrap(); // op 0
        backend.sync(&dir.join("h.bin")).unwrap(); // op 1: honest
        assert!(backend.read(&dir.join("h.bin")).is_err()); // op 2: power cut
        assert_eq!(fs::read(dir.join("h.bin")).unwrap(), b"durable");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn random_plans_are_reproducible_and_crash_free() {
        let a = FaultPlan::random(9, 50, 6);
        let b = FaultPlan::random(9, 50, 6);
        assert_eq!(a, b);
        assert_eq!(a.faults().len(), 6);
        for fault in a.faults() {
            assert!(fault.at_op < 50);
            assert!(!matches!(fault.kind, FaultKind::Crash));
        }
        assert_ne!(FaultPlan::random(10, 50, 6), a);
    }
}
