//! Bounded exponential-backoff retry for transient storage failures.
//!
//! Storage operations fail in two classes ([`crate::IoClass`]): permanent
//! failures surface immediately, transient ones (interrupted syscalls,
//! timeouts, injected test faults) are worth re-executing.  A
//! [`RetryPolicy`] bounds how often and how patiently: attempt `a` waits
//! `min(base · 2^(a−1), max)` nanoseconds before re-executing, and after
//! `max_attempts` total attempts the last transient error is returned as
//! the final answer (and the caller may journal a `retry_exhausted`
//! event).  All waiting goes through the injected
//! [`Clock::sleep_until`] — never ambient time — so tests drive backoff
//! with a [`mdrr_obs::ManualClock`] and a `NullClock` degenerates to
//! immediate bounded retries.

use crate::error::StoreError;
use mdrr_obs::Clock;

/// How transient storage failures are retried.
///
/// ```
/// use mdrr_store::RetryPolicy;
/// let policy = RetryPolicy::default();
/// assert_eq!(policy.max_attempts, 4);
/// // Exponential, bounded: 1ms, 2ms, 4ms, … capped at 100ms.
/// assert_eq!(policy.delay_nanos(0), 1_000_000);
/// assert_eq!(policy.delay_nanos(1), 2_000_000);
/// assert_eq!(policy.delay_nanos(60), 100_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (the first try included).  At least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry, in nanoseconds.
    pub base_delay_nanos: u64,
    /// Upper bound on any single backoff, in nanoseconds.
    pub max_delay_nanos: u64,
}

impl Default for RetryPolicy {
    /// Four attempts, 1 ms base delay, 100 ms cap — three retries
    /// totalling at most 7 ms of backoff under the default curve.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay_nanos: 1_000_000,
            max_delay_nanos: 100_000_000,
        }
    }
}

impl RetryPolicy {
    /// No retries at all: every failure, transient or not, is final.
    /// The torture harness uses this so each scripted fault is observed
    /// exactly where it was injected.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay_nanos: 0,
            max_delay_nanos: 0,
        }
    }

    /// The backoff before retry number `retry` (0-based):
    /// `min(base · 2^retry, max)`.
    pub fn delay_nanos(&self, retry: u32) -> u64 {
        let factor = 1u64.checked_shl(retry).unwrap_or(u64::MAX);
        self.base_delay_nanos
            .saturating_mul(factor)
            .min(self.max_delay_nanos)
    }

    /// Runs `op` under this policy: transient failures are retried (after
    /// a `clock.sleep_until` backoff) until one attempt succeeds, a
    /// permanent failure surfaces, or `max_attempts` attempts are spent.
    /// Returns the final result and the number of attempts made.
    ///
    /// ```
    /// use mdrr_obs::{Clock, ManualClock};
    /// use mdrr_store::{RetryPolicy, StoreError};
    ///
    /// let clock = ManualClock::new();
    /// let mut failures = 2;
    /// let (result, attempts) = RetryPolicy::default().run(&clock, || {
    ///     if failures > 0 {
    ///         failures -= 1;
    ///         Err(StoreError::io_transient("write", std::io::Error::other("flaky")))
    ///     } else {
    ///         Ok(42)
    ///     }
    /// });
    /// assert_eq!(result.ok(), Some(42));
    /// assert_eq!(attempts, 3);
    /// // The manual clock observed exactly the scripted waits: 1ms + 2ms.
    /// assert_eq!(clock.now_nanos(), 3_000_000);
    /// ```
    pub fn run<T>(
        &self,
        clock: &dyn Clock,
        mut op: impl FnMut() -> Result<T, StoreError>,
    ) -> (Result<T, StoreError>, u32) {
        let max_attempts = self.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match op() {
                Ok(value) => return (Ok(value), attempt),
                Err(e) if e.is_transient() && attempt < max_attempts => {
                    clock.sleep_until(
                        clock
                            .now_nanos()
                            .saturating_add(self.delay_nanos(attempt - 1)),
                    );
                }
                Err(e) => return (Err(e), attempt),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdrr_obs::{ManualClock, NullClock};
    use std::io;

    fn transient() -> StoreError {
        StoreError::io_transient("op", io::Error::new(io::ErrorKind::Interrupted, "flaky"))
    }

    #[test]
    fn permanent_errors_are_never_retried() {
        let mut calls = 0;
        let (result, attempts) = RetryPolicy::default().run(&NullClock, || {
            calls += 1;
            Err::<(), _>(StoreError::io_permanent("op", io::Error::other("gone")))
        });
        assert!(result.is_err());
        assert_eq!(attempts, 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn transients_are_retried_up_to_the_bound() {
        let clock = ManualClock::new();
        let mut calls = 0;
        let (result, attempts) = RetryPolicy::default().run(&clock, || {
            calls += 1;
            Err::<(), _>(transient())
        });
        assert!(matches!(result, Err(ref e) if e.is_transient()));
        assert_eq!(attempts, 4);
        assert_eq!(calls, 4);
        // Backoff: 1ms + 2ms + 4ms, all through the injected clock.
        assert_eq!(clock.now_nanos(), 7_000_000);
    }

    #[test]
    fn null_clock_degenerates_to_immediate_retries() {
        let mut calls = 0;
        let (result, attempts) = RetryPolicy::default().run(&NullClock, || {
            calls += 1;
            if calls < 3 {
                Err(transient())
            } else {
                Ok("done")
            }
        });
        assert_eq!(result.ok(), Some("done"));
        assert_eq!(attempts, 3);
    }

    #[test]
    fn none_policy_gives_exactly_one_attempt() {
        let mut calls = 0;
        let (result, attempts) = RetryPolicy::none().run(&NullClock, || {
            calls += 1;
            Err::<(), _>(transient())
        });
        assert!(result.is_err());
        assert_eq!(attempts, 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn delay_curve_is_bounded() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay_nanos: 100,
            max_delay_nanos: 1_000,
        };
        assert_eq!(policy.delay_nanos(0), 100);
        assert_eq!(policy.delay_nanos(1), 200);
        assert_eq!(policy.delay_nanos(3), 800);
        assert_eq!(policy.delay_nanos(4), 1_000); // capped
        assert_eq!(policy.delay_nanos(63), 1_000); // shift overflow capped
        assert_eq!(policy.delay_nanos(64), 1_000); // out-of-range shift capped
    }
}
