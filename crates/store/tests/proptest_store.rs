//! Property and corruption tests of the snapshot store.
//!
//! The load-bearing claims: (1) snapshot → bytes → file → restore is the
//! identity on counts, record totals, schema, spec and app state, for
//! every `ProtocolSpec` shape; (2) merging persisted snapshots sums
//! counts exactly; (3) *no* corrupt input — truncations, bit flips,
//! foreign files — ever panics or silently round-trips: every one maps to
//! a typed [`StoreError`].

use mdrr_data::{Attribute, AttributeKind, Schema};
use mdrr_protocols::{AdjustmentConfig, Clustering, ProtocolSpec, RandomizationLevel};
use mdrr_store::{
    crc64, merge_snapshot_files, merge_snapshots, Snapshot, SnapshotReader, SnapshotWriter,
    StoreError, FORMAT_VERSION, MAGIC,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// A small schema with 3 attributes of cardinalities 2–4.
fn schema_strategy() -> impl Strategy<Value = Schema> {
    prop::collection::vec(2usize..5, 3..4).prop_map(|cards| {
        let attrs = cards
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                Attribute::new(
                    format!("A{i}"),
                    AttributeKind::Nominal,
                    (0..c).map(|k| k.to_string()).collect(),
                )
                .unwrap()
            })
            .collect();
        Schema::new(attrs).unwrap()
    })
}

/// All four `ProtocolSpec` shapes over a 3-attribute schema.
fn all_four_specs(schema: &Schema) -> Vec<ProtocolSpec> {
    let m = schema.len();
    let level = RandomizationLevel::KeepProbability(0.6);
    vec![
        ProtocolSpec::independent(level.clone()),
        ProtocolSpec::Joint {
            level: level.clone(),
            max_domain: None,
            equivalent_risk: false,
        },
        ProtocolSpec::Clusters {
            level: level.clone(),
            clustering: Clustering::new(vec![vec![0, 1], (2..m).collect()], m).unwrap(),
            equivalent_risk: false,
        },
        ProtocolSpec::Adjusted {
            base: Box::new(ProtocolSpec::independent(level)),
            config: AdjustmentConfig::default(),
        },
    ]
}

/// Random records for a schema, from a deterministic seed.
fn records(schema: &Schema, n: usize, seed: u64) -> Vec<Vec<u32>> {
    let cards = schema.cardinalities();
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            cards
                .iter()
                .map(|&c| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) % c as u64) as u32
                })
                .collect()
        })
        .collect()
}

/// Tallies `records` through the spec's protocol into per-channel counts.
fn tally(spec: &ProtocolSpec, schema: &Schema, records: &[Vec<u32>], seed: u64) -> Vec<Vec<u64>> {
    let protocol = spec.build(schema).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts: Vec<Vec<u64>> = protocol
        .channel_sizes()
        .iter()
        .map(|&s| vec![0u64; s])
        .collect();
    for record in records {
        let codes = protocol.encode_record(record, &mut rng).unwrap();
        for (channel, &code) in counts.iter_mut().zip(codes.iter()) {
            channel[code as usize] += 1;
        }
    }
    counts
}

fn scratch_path(tag: &str, case: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mdrr-store-prop-{tag}-{}-{case}.mdrrsnap",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// snapshot → bytes → file → restore is the identity, for all four
    /// protocol spec shapes, with byte-identical counts.
    #[test]
    fn file_round_trip_is_identity(
        schema in schema_strategy(),
        n in 30usize..120,
        seed in any::<u64>(),
    ) {
        for (i, spec) in all_four_specs(&schema).iter().enumerate() {
            let counts = tally(spec, &schema, &records(&schema, n, seed), seed ^ 1);
            let mut snapshot =
                Snapshot::new(schema.clone(), spec.clone(), counts.clone(), n as u64).unwrap();
            snapshot.set_app_state(Some(format!("{{\"case\":{seed}}}")));

            // In-memory byte round trip, and determinism of the encoding.
            let bytes = snapshot.to_bytes().unwrap();
            prop_assert_eq!(&bytes, &snapshot.to_bytes().unwrap());
            let back = Snapshot::from_bytes(&bytes).unwrap();
            prop_assert_eq!(&back, &snapshot);

            // Through the filesystem, with the atomic writer.
            let path = scratch_path("rt", seed.wrapping_add(i as u64));
            SnapshotWriter::new(&path).write(&snapshot).unwrap();
            let restored = SnapshotReader::read(&path).unwrap();
            std::fs::remove_file(&path).ok();
            prop_assert_eq!(restored.counts(), &counts[..]);
            prop_assert_eq!(restored.n_reports(), n as u64);
            prop_assert_eq!(restored.schema(), &schema);
            prop_assert_eq!(restored.spec(), spec);
            prop_assert_eq!(restored.app_state(), snapshot.app_state());
        }
    }

    /// A k-way merge of persisted part-snapshots equals tallying the whole
    /// stream in one process: counts sum exactly, estimates match to
    /// 1e-12, for every spec that can estimate from counts.
    #[test]
    fn kway_persisted_merge_equals_single_pass(
        schema in schema_strategy(),
        n in 40usize..120,
        k in 2usize..5,
        seed in any::<u64>(),
    ) {
        let all = records(&schema, n, seed);
        for (i, spec) in all_four_specs(&schema).iter().enumerate() {
            // One logical report stream, tallied in one pass…
            let pooled_counts = tally(spec, &schema, &all, seed ^ 2);
            let pooled =
                Snapshot::new(schema.clone(), spec.clone(), pooled_counts, n as u64).unwrap();
            // …and the same randomized codes split across k "machines".
            // Encoding is per-record with one shared RNG, so tallying the
            // k chunks with checkpointed RNG hand-off means partitioning
            // the identical code stream.
            let protocol = spec.build(&schema).unwrap();
            let mut rng = StdRng::seed_from_u64(seed ^ 2);
            let chunk_size = n.div_ceil(k);
            let mut paths = Vec::new();
            for (c, chunk) in all.chunks(chunk_size).enumerate() {
                let mut counts: Vec<Vec<u64>> = protocol
                    .channel_sizes()
                    .iter()
                    .map(|&s| vec![0u64; s])
                    .collect();
                for record in chunk {
                    let codes = protocol.encode_record(record, &mut rng).unwrap();
                    for (channel, &code) in counts.iter_mut().zip(codes.iter()) {
                        channel[code as usize] += 1;
                    }
                }
                let part = Snapshot::new(
                    schema.clone(),
                    spec.clone(),
                    counts,
                    chunk.len() as u64,
                )
                .unwrap();
                let path = scratch_path("kw", seed.wrapping_add((i * 10 + c) as u64));
                SnapshotWriter::new(&path).write(&part).unwrap();
                paths.push(path);
            }
            let merged = merge_snapshot_files(&paths).unwrap();
            for path in &paths {
                std::fs::remove_file(path).ok();
            }
            prop_assert_eq!(merged.counts(), pooled.counts());
            prop_assert_eq!(merged.n_reports(), pooled.n_reports());
            // Estimates from the merged file match the single-pass
            // estimates exactly (RR-Adjustment cannot estimate from
            // counts; its typed refusal is equality too).
            match (merged.release(), pooled.release()) {
                (Ok(a), Ok(b)) => {
                    for j in 0..schema.len() {
                        let (ma, mb) = (a.marginal(j).unwrap(), b.marginal(j).unwrap());
                        for (x, y) in ma.iter().zip(mb.iter()) {
                            prop_assert!((x - y).abs() <= 1e-12);
                        }
                    }
                }
                (Err(_), Err(_)) => {
                    prop_assert!(matches!(spec, ProtocolSpec::Adjusted { .. }));
                }
                _ => prop_assert!(false, "merge changed estimability"),
            }
        }
    }

    /// Truncating a valid snapshot at any length always yields a typed
    /// error, never a panic and never a silent success.
    #[test]
    fn every_truncation_is_a_typed_error(
        schema in schema_strategy(),
        n in 10usize..40,
        seed in any::<u64>(),
    ) {
        let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.6));
        let counts = tally(&spec, &schema, &records(&schema, n, seed), seed);
        let snapshot = Snapshot::new(schema, spec, counts, n as u64).unwrap();
        let bytes = snapshot.to_bytes().unwrap();
        for cut in 0..bytes.len() {
            prop_assert!(Snapshot::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}

#[test]
fn every_single_bit_flip_is_detected() {
    let schema = Schema::new(vec![
        Attribute::indexed("A", 3).unwrap(),
        Attribute::indexed("B", 2).unwrap(),
    ])
    .unwrap();
    let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
    let counts = tally(&spec, &schema, &records(&schema, 50, 9), 9);
    let snapshot = Snapshot::new(schema, spec, counts, 50).unwrap();
    let bytes = snapshot.to_bytes().unwrap();
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 1 << bit;
            // CRC-64 detects every single-bit error; flips in the magic,
            // version or length fields are caught even earlier.  Either
            // way: a typed error, never a panic, never an accidental Ok.
            assert!(
                Snapshot::from_bytes(&corrupt).is_err(),
                "flip of bit {bit} at byte {i} went undetected"
            );
        }
    }
}

#[test]
fn spec_mismatch_and_overflow_are_typed_on_files() {
    let schema = Schema::new(vec![Attribute::indexed("A", 2).unwrap()]).unwrap();
    let spec_a = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
    let spec_b = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.5));
    let a = Snapshot::new(schema.clone(), spec_a, vec![vec![3, 1]], 4).unwrap();
    let b = Snapshot::new(schema, spec_b, vec![vec![1, 1]], 2).unwrap();
    let dir = std::env::temp_dir().join(format!("mdrr-store-mismatch-{}", std::process::id()));
    let paths = [dir.join("a.mdrrsnap"), dir.join("b.mdrrsnap")];
    SnapshotWriter::new(&paths[0]).write(&a).unwrap();
    SnapshotWriter::new(&paths[1]).write(&b).unwrap();
    assert!(matches!(
        merge_snapshot_files(&paths),
        Err(StoreError::SpecMismatch { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
    // In-memory sibling: overflow stays typed.
    let big = Snapshot::new(
        a.schema().clone(),
        a.spec().clone(),
        vec![vec![u64::MAX, 0]],
        u64::MAX,
    )
    .unwrap();
    assert!(matches!(
        merge_snapshots([&big, &big]),
        Err(StoreError::CountOverflow { .. })
    ));
}

/// Regenerates the reference snapshot whose annotated dump appears in
/// `docs/FORMAT.md` (run with `cargo test -p mdrr-store -- --ignored
/// print_reference --nocapture` after a format change and refresh the
/// doc).
#[test]
#[ignore]
fn print_reference_snapshot_hexdump() {
    let schema = Schema::new(vec![Attribute::indexed("A", 3).unwrap()]).unwrap();
    let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
    let snapshot = Snapshot::new(schema, spec, vec![vec![5, 3, 2]], 10).unwrap();
    let bytes = snapshot.to_bytes().unwrap();
    println!("{} bytes:", bytes.len());
    for (i, chunk) in bytes.chunks(16).enumerate() {
        let hex: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
        let ascii: String = chunk
            .iter()
            .map(|&b| {
                if (0x20..0x7f).contains(&b) {
                    b as char
                } else {
                    '.'
                }
            })
            .collect();
        println!("{:08x}  {:<47}  |{ascii}|", i * 16, hex.join(" "));
    }
}

/// Hand-decodes a snapshot using nothing but the byte offsets documented
/// in `docs/FORMAT.md` — the executable proof that the written spec is
/// sufficient for an external reader.
#[test]
fn format_md_offsets_hand_decode_a_real_snapshot() {
    let schema = Schema::new(vec![
        Attribute::indexed("A", 3).unwrap(),
        Attribute::indexed("B", 2).unwrap(),
    ])
    .unwrap();
    let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
    let counts = vec![vec![5, 3, 2], vec![6, 4]];
    let snapshot = Snapshot::new(schema, spec, counts.clone(), 10).unwrap();
    let bytes = snapshot.to_bytes().unwrap();

    // FORMAT.md §layout: fixed prefix.
    assert_eq!(&bytes[0..8], &MAGIC);
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    assert_eq!(version, FORMAT_VERSION);
    let n_reports = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    assert_eq!(n_reports, 10);
    let n_channels = u32::from_le_bytes(bytes[20..24].try_into().unwrap()) as usize;
    assert_eq!(n_channels, 2);
    let header_len = u32::from_le_bytes(bytes[24..28].try_into().unwrap()) as usize;

    // FORMAT.md §header: UTF-8 JSON with schema, spec and app_state.
    let header = std::str::from_utf8(&bytes[28..28 + header_len]).unwrap();
    assert!(header.contains("\"schema\""));
    assert!(header.contains("\"spec\""));
    assert!(header.contains("\"app_state\""));

    // FORMAT.md §channel blocks: u32 length then that many u64 counts.
    let mut pos = 28 + header_len;
    for expected in &counts {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        assert_eq!(len, expected.len());
        pos += 4;
        for &want in expected {
            let got = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
            assert_eq!(got, want);
            pos += 8;
        }
    }

    // FORMAT.md §checksum: trailing CRC-64/XZ over everything before it.
    let stored = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
    assert_eq!(stored, crc64(&bytes[..pos]));
    assert_eq!(pos + 8, bytes.len());
}
