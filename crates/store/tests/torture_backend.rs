//! Crash-consistency torture tests for the storage backend seam.
//!
//! The exhaustive sweep is the heart of it: count how many backend
//! operations a clean atomic write performs, then re-run the identical
//! workload once per operation index with a simulated power cut scripted
//! exactly there, and assert the target file is bytewise the old complete
//! contents or the new complete contents — at *every* fault point, not a
//! sampled few.  Random fault plans (transients, torn writes, lying
//! syncs) then soak the same invariants via proptest, and salvage is
//! proven to recover whatever the plan left valid.

use mdrr_obs::{Clock, EventKind, Journal, ManualClock, NullClock};
use mdrr_store::{
    salvage_checkpoint, shard_file_name, CheckpointManifest, Fault, FaultKind, FaultPlan,
    FaultyBackend, RetryPolicy, Snapshot, Storage, MANIFEST_FILE, MANIFEST_VERSION,
};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mdrr-torture-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn faulty_storage(plan: FaultPlan, retry: RetryPolicy) -> (Storage, Arc<FaultyBackend>) {
    let backend = Arc::new(FaultyBackend::new(plan));
    let storage = Storage::new(backend.clone(), retry, Arc::new(NullClock));
    (storage, backend)
}

const OLD: &[u8] = b"old-complete-contents-old-complete-contents";
const NEW: &[u8] = b"NEW-COMPLETE-CONTENTS-different-length-on-purpose!";

/// Exhaustive op-index sweep over `atomic_write`: a power cut at every
/// single backend operation leaves the target bytewise old or bytewise
/// new — never torn, never absent.
#[test]
fn atomic_write_is_old_or_new_at_every_crash_point() {
    // Pass 1: count the operations of a clean replacement write.
    let dir = scratch_dir("aw-count");
    let target = dir.join("state.bin");
    fs::write(&target, OLD).unwrap();
    let (storage, backend) = faulty_storage(FaultPlan::none(), RetryPolicy::none());
    storage.atomic_write(&target, NEW).unwrap();
    let total_ops = backend.ops_executed();
    assert!(
        total_ops >= 4,
        "expected a multi-op protocol, got {total_ops}"
    );
    fs::remove_dir_all(&dir).unwrap();

    // Pass 2: crash at every op index i and check the invariant.
    for i in 0..total_ops {
        let dir = scratch_dir(&format!("aw-crash-{i}"));
        let target = dir.join("state.bin");
        fs::write(&target, OLD).unwrap();
        let (storage, backend) =
            faulty_storage(FaultPlan::fail_at(i, FaultKind::Crash), RetryPolicy::none());
        let result = storage.atomic_write(&target, NEW);
        assert!(backend.crashed(), "op {i}: the scripted crash must fire");
        let found = fs::read(&target).unwrap_or_default();
        assert!(
            found == OLD || found == NEW,
            "op {i}: target is torn ({} bytes, result {result:?})",
            found.len()
        );
        // Sweeping debris never disturbs the committed target.
        Storage::os().sweep_tmp(&dir);
        let after_sweep = fs::read(&target).unwrap_or_default();
        assert_eq!(found, after_sweep, "op {i}: sweep changed the target");
        assert!(
            !dir.join("state.bin.tmp").exists(),
            "op {i}: tmp debris survived the sweep"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// Torn writes (a crash mid-`write(2)`) are just as safe: the tear hits
/// the sibling temp file, never the committed target.
#[test]
fn atomic_write_survives_torn_writes_at_every_crash_point() {
    let dir = scratch_dir("tear-count");
    let target = dir.join("state.bin");
    fs::write(&target, OLD).unwrap();
    let (storage, backend) = faulty_storage(FaultPlan::none(), RetryPolicy::none());
    storage.atomic_write(&target, NEW).unwrap();
    let total_ops = backend.ops_executed();
    fs::remove_dir_all(&dir).unwrap();

    for i in 0..total_ops {
        for keep in [0usize, 1, NEW.len() / 2, NEW.len().saturating_sub(1)] {
            let dir = scratch_dir(&format!("tear-{i}-{keep}"));
            let target = dir.join("state.bin");
            fs::write(&target, OLD).unwrap();
            let (storage, _backend) = faulty_storage(
                FaultPlan::fail_at(i, FaultKind::TornWrite { keep_bytes: keep }),
                RetryPolicy::none(),
            );
            let _ = storage.atomic_write(&target, NEW);
            let found = fs::read(&target).unwrap_or_default();
            assert!(
                found == OLD || found == NEW,
                "op {i} keep {keep}: target is torn ({} bytes)",
                found.len()
            );
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// Transient faults inside the write protocol are absorbed by the retry
/// layer: the write succeeds, the backoff runs on the injected clock,
/// and nothing ambient is consulted.
#[test]
fn transient_faults_are_retried_through_the_injected_clock() {
    let dir = scratch_dir("retry");
    let target = dir.join("state.bin");
    fs::write(&target, OLD).unwrap();
    // Ops: 0 create_dir, 1 write, 2+3 its retries, 4 sync, 5 rename, …
    let plan = FaultPlan::new(vec![
        Fault {
            at_op: 1,
            kind: FaultKind::Transient,
        },
        Fault {
            at_op: 2,
            kind: FaultKind::Transient,
        },
    ]);
    let backend = Arc::new(FaultyBackend::new(plan));
    let clock = Arc::new(ManualClock::new());
    let storage = Storage::new(backend.clone(), RetryPolicy::default(), clock.clone());
    storage.atomic_write(&target, NEW).unwrap();
    assert_eq!(fs::read(&target).unwrap(), NEW);
    assert_eq!(backend.injected(), 2);
    // Two retries of the same step: 1ms + 2ms of scripted backoff.
    assert_eq!(clock.now_nanos(), 3_000_000);
    fs::remove_dir_all(&dir).unwrap();
}

/// When every attempt fails transiently, the error surfaces as transient
/// and the journal records the exhausted retry loop.
#[test]
fn exhausted_retries_surface_and_are_journalled() {
    let dir = scratch_dir("exhaust");
    let target = dir.join("state.bin");
    fs::write(&target, OLD).unwrap();
    // Fault the write op and every one of its retries.
    let faults = (1..=4)
        .map(|at_op| Fault {
            at_op,
            kind: FaultKind::Transient,
        })
        .collect();
    let journal = Arc::new(Journal::new(16));
    let (storage, backend) = faulty_storage(FaultPlan::new(faults), RetryPolicy::default());
    let storage = storage.with_journal(journal.clone());
    let err = storage.atomic_write(&target, NEW).unwrap_err();
    assert!(err.is_transient(), "{err}");
    assert_eq!(backend.injected(), 4);
    assert_eq!(fs::read(&target).unwrap(), OLD, "the target is untouched");
    let events = journal.events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::RetryExhausted { attempts: 4 })),
        "journal should record the exhausted loop, got {events:?}"
    );
    fs::remove_dir_all(&dir).unwrap();
}

fn sample_snapshot(seed: u64) -> Snapshot {
    use mdrr_data::{Attribute, Schema};
    use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
    let schema = Schema::new(vec![Attribute::indexed("A", 3).unwrap()]).unwrap();
    let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
    let counts = vec![vec![seed % 97, (seed / 97) % 89, 7]];
    let n: u64 = counts[0].iter().sum();
    Snapshot::new(schema, spec, counts, n).unwrap()
}

/// The checkpoint-shaped workload the random-plan soaks run: write two
/// generation-2 shard snapshots, then commit a manifest naming them.
fn write_generation_two(storage: &Storage, dir: &Path) -> Result<(), mdrr_store::StoreError> {
    let names = [shard_file_name(0, 2), shard_file_name(1, 2)];
    let snaps = [sample_snapshot(11), sample_snapshot(23)];
    let mut total = 0;
    for (name, snap) in names.iter().zip(&snaps) {
        storage.write_snapshot(&dir.join(name), snap)?;
        total += snap.n_reports();
    }
    let manifest = CheckpointManifest {
        manifest_version: MANIFEST_VERSION,
        n_shards: 2,
        total_reports: total,
        shard_files: names.to_vec(),
        app_state: None,
    };
    storage.atomic_write(&dir.join(MANIFEST_FILE), manifest.to_json()?.as_bytes())
}

/// Commits a clean generation-1 checkpoint directly on the OS.
fn commit_generation_one(dir: &Path) -> u64 {
    let storage = Storage::os();
    let names = [shard_file_name(0, 1), shard_file_name(1, 1)];
    let snaps = [sample_snapshot(5), sample_snapshot(17)];
    let mut total = 0;
    for (name, snap) in names.iter().zip(&snaps) {
        storage.write_snapshot(&dir.join(name), snap).unwrap();
        total += snap.n_reports();
    }
    let manifest = CheckpointManifest {
        manifest_version: MANIFEST_VERSION,
        n_shards: 2,
        total_reports: total,
        shard_files: names.to_vec(),
        app_state: None,
    };
    storage
        .atomic_write(
            &dir.join(MANIFEST_FILE),
            manifest.to_json().unwrap().as_bytes(),
        )
        .unwrap();
    total
}

/// Whether the directory restores cleanly: the manifest parses and every
/// shard file it names reads back as a fully valid snapshot summing to
/// its recorded total.
fn restores_cleanly(dir: &Path) -> bool {
    let storage = Storage::os();
    let Ok(bytes) = storage.read(&dir.join(MANIFEST_FILE)) else {
        return false;
    };
    let Ok(text) = String::from_utf8(bytes) else {
        return false;
    };
    let Ok(manifest) = CheckpointManifest::from_json(&text) else {
        return false;
    };
    let mut total = 0u64;
    for name in &manifest.shard_files {
        match storage.read_snapshot(&dir.join(name)) {
            Ok(snap) => total += snap.n_reports(),
            Err(_) => return false,
        }
    }
    manifest.n_shards == manifest.shard_files.len() && total == manifest.total_reports
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random fault plans (transients, torn writes, lying syncs) against
    /// the checkpoint-shaped workload: afterwards the directory either
    /// restores cleanly or salvage rebuilds a checkpoint from exactly the
    /// still-valid shard snapshots — the durably committed generation 1
    /// guarantees there is always something to salvage.
    #[test]
    fn random_fault_plans_leave_a_restorable_or_salvageable_directory(
        seed in 0u64..1_000_000,
        n_faults in 1usize..5,
    ) {
        let dir = scratch_dir(&format!("soak-{seed}-{n_faults}"));
        commit_generation_one(&dir);
        let plan = FaultPlan::random(seed, 24, n_faults);
        let (storage, backend) = faulty_storage(plan, RetryPolicy::default());
        let _ = write_generation_two(&storage, &dir);
        // A lying sync followed by no crash loses nothing; only a power
        // cut redeems the lie, so always cut the power after the run.
        backend.power_cut();
        let clean = restores_cleanly(&dir);
        if !clean {
            let report = salvage_checkpoint(&dir, &Storage::os()).unwrap();
            prop_assert!(!report.recovered.is_empty());
            // Everything the salvage manifest names is fully valid.
            prop_assert!(restores_cleanly(&dir));
            // Generation 1 was durable before the faults: both shards
            // must come back, from generation 1 or newer.
            prop_assert_eq!(report.recovered.clone(), vec![0, 1]);
            for generation in &report.generations {
                prop_assert!(*generation >= 1);
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Transient-only plans under the default retry budget never surface
    /// an error at all: the workload completes and the directory holds
    /// complete generation-2 state.
    #[test]
    fn transient_only_plans_are_fully_absorbed(seed in 0u64..1_000_000) {
        let dir = scratch_dir(&format!("transients-{seed}"));
        commit_generation_one(&dir);
        // Scatter three single transients far enough apart that each op's
        // retry budget (4 attempts) cannot be exhausted.
        let mut state = seed;
        let mut faults = Vec::new();
        for slot in 0..3u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            faults.push(Fault { at_op: slot * 8 + state % 4, kind: FaultKind::Transient });
        }
        let (storage, _backend) = faulty_storage(FaultPlan::new(faults), RetryPolicy::default());
        write_generation_two(&storage, &dir).unwrap();
        prop_assert!(restores_cleanly(&dir));
        // No `*.tmp` debris after a successful, if bumpy, checkpoint.
        for name in Storage::os().list_dir(&dir).unwrap() {
            prop_assert!(!name.ends_with(".tmp"), "debris: {name}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
