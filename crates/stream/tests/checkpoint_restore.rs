//! Checkpoint/restore/merge properties of the sharded collector.
//!
//! The durability claims: (1) `checkpoint` → `restore` reproduces the
//! collector's accumulators *exactly* (byte-identical counts) for every
//! `ProtocolSpec` shape; (2) merging the persisted per-shard snapshot
//! files reproduces the live collector's own k-way merge, so a release
//! built from the files equals a single-process run's snapshot at 1e-12
//! (in fact exactly); (3) a restored collector is a full citizen — it
//! keeps ingesting deterministically, as if the process had never died.

use mdrr_data::{Attribute, AttributeKind, Schema};
use mdrr_protocols::{AdjustmentConfig, Clustering, ProtocolSpec, RandomizationLevel};
use mdrr_store::merge_snapshot_files;
use mdrr_stream::ShardedCollector;
use proptest::prelude::*;
use std::path::PathBuf;

/// A small schema with 3 attributes of cardinalities 2–4.
fn schema_strategy() -> impl Strategy<Value = Schema> {
    prop::collection::vec(2usize..5, 3..4).prop_map(|cards| {
        let attrs = cards
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                Attribute::new(
                    format!("A{i}"),
                    AttributeKind::Nominal,
                    (0..c).map(|k| k.to_string()).collect(),
                )
                .unwrap()
            })
            .collect();
        Schema::new(attrs).unwrap()
    })
}

/// All four `ProtocolSpec` shapes over a 3-attribute schema.
fn all_four_specs(schema: &Schema) -> Vec<ProtocolSpec> {
    let m = schema.len();
    let level = RandomizationLevel::KeepProbability(0.6);
    vec![
        ProtocolSpec::independent(level.clone()),
        ProtocolSpec::Joint {
            level: level.clone(),
            max_domain: None,
            equivalent_risk: false,
        },
        ProtocolSpec::Clusters {
            level: level.clone(),
            clustering: Clustering::new(vec![vec![0, 1], (2..m).collect()], m).unwrap(),
            equivalent_risk: false,
        },
        ProtocolSpec::Adjusted {
            base: Box::new(ProtocolSpec::independent(level)),
            config: AdjustmentConfig::default(),
        },
    ]
}

/// Random records for a schema, from a deterministic seed.
fn records(schema: &Schema, n: usize, seed: u64) -> Vec<Vec<u32>> {
    let cards = schema.cardinalities();
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            cards
                .iter()
                .map(|&c| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) % c as u64) as u32
                })
                .collect()
        })
        .collect()
}

fn scratch_dir(tag: &str, case: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mdrr-ckpt-prop-{tag}-{}-{case}",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// checkpoint → restore reproduces every shard accumulator exactly,
    /// for all four protocol spec shapes, any shard count and any seed —
    /// and merging the persisted shard files equals the live collector's
    /// own merge, with releases equal at 1e-12.
    #[test]
    fn persisted_state_reproduces_the_live_collector(
        schema in schema_strategy(),
        n in 50usize..200,
        n_shards in 1usize..6,
        seed in any::<u64>(),
    ) {
        let rs = records(&schema, n, seed);
        for (i, spec) in all_four_specs(&schema).iter().enumerate() {
            let protocol = spec.build_arc(&schema).unwrap();
            let mut collector = ShardedCollector::new(protocol, n_shards).unwrap();
            collector.ingest_records(&rs, seed ^ 3).unwrap();

            let dir = scratch_dir("rt", seed.wrapping_add(i as u64));
            let manifest = collector.checkpoint(spec, &dir, Some("state")).unwrap();
            prop_assert_eq!(manifest.total_reports, n as u64);

            // (1) Exact restore.
            let restored = ShardedCollector::restore(&dir).unwrap();
            prop_assert_eq!(restored.collector.shards(), collector.shards());
            prop_assert_eq!(&restored.spec, spec);
            prop_assert_eq!(restored.app_state.as_deref(), Some("state"));

            // (2) Persisted per-shard files merge to the live merge.
            let paths: Vec<PathBuf> =
                manifest.shard_files.iter().map(|f| dir.join(f)).collect();
            let merged = merge_snapshot_files(&paths).unwrap();
            std::fs::remove_dir_all(&dir).ok();
            let live = collector.merged().unwrap();
            prop_assert_eq!(merged.counts(), live.counts());
            prop_assert_eq!(merged.n_reports(), live.n_reports());
            match merged.release() {
                Ok(from_files) => {
                    let live_snapshot = collector.snapshot().unwrap();
                    for j in 0..schema.len() {
                        let a = from_files.marginal(j).unwrap();
                        let b = live_snapshot.marginal(j).unwrap();
                        for (x, y) in a.iter().zip(b.iter()) {
                            prop_assert!((x - y).abs() <= 1e-12);
                        }
                    }
                }
                Err(_) => {
                    // Only RR-Adjustment cannot estimate from counts —
                    // neither from files nor live.
                    prop_assert!(matches!(spec, ProtocolSpec::Adjusted { .. }));
                    prop_assert!(collector.snapshot().is_err());
                }
            }
        }
    }

    /// A restored collector continues the stream exactly: checkpoint at
    /// the halfway point, restore in a "new process", ingest the second
    /// half, and land byte-identically on an uninterrupted collector.
    #[test]
    fn resume_continues_the_exact_stream(
        schema in schema_strategy(),
        n in 60usize..160,
        n_shards in 1usize..5,
        seed in any::<u64>(),
    ) {
        let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.6));
        let first = records(&schema, n / 2, seed);
        let second = records(&schema, n - n / 2, seed ^ 7);

        // Uninterrupted reference: two ingest calls, one process.
        let mut uninterrupted =
            ShardedCollector::new(spec.build_arc(&schema).unwrap(), n_shards).unwrap();
        uninterrupted.ingest_records(&first, seed ^ 11).unwrap();
        uninterrupted.ingest_records(&second, seed ^ 13).unwrap();

        // Crash-and-resume: checkpoint between the calls, drop everything.
        let dir = scratch_dir("resume", seed);
        {
            let mut dying =
                ShardedCollector::new(spec.build_arc(&schema).unwrap(), n_shards).unwrap();
            dying.ingest_records(&first, seed ^ 11).unwrap();
            dying.checkpoint(&spec, &dir, None).unwrap();
            // `dying` drops here — the "crash".
        }
        let mut resumed = ShardedCollector::restore(&dir).unwrap().collector;
        std::fs::remove_dir_all(&dir).ok();
        resumed.ingest_records(&second, seed ^ 13).unwrap();

        prop_assert_eq!(resumed.shards(), uninterrupted.shards());
    }
}
