//! Crash-consistency torture and degraded-mode recovery, end to end.
//!
//! The claims under test, stream-level siblings of the `mdrr-store`
//! backend torture suite:
//!
//! 1. **Old-or-new, exhaustively.**  A checkpoint interrupted by a
//!    simulated power cut at *every single* backend operation index —
//!    not a sample — leaves a directory that restores to exactly the
//!    previous committed collector state or exactly the new one: never a
//!    torn mixture, never a wrong report count.
//! 2. **Transients are absorbed.**  Scripted transient faults anywhere
//!    in the checkpoint are retried away invisibly, and a faulted
//!    attempt followed by a successful one leaves no `*.tmp` debris.
//! 3. **Salvage + deterministic re-collection is exact.**  For random
//!    fault plans (torn writes, lying syncs, transients) followed by a
//!    power cut, the directory either restores cleanly or
//!    `salvage_checkpoint` recovers the CRC-valid shard set — and
//!    re-running exactly the lost shards' record ranges under their
//!    original per-shard seeds, then merging, reproduces the
//!    uninterrupted collector bit-for-bit (so estimates agree at 1e-12
//!    trivially).
//! 4. **A panicking shard worker is contained.**  The panic surfaces as
//!    a typed `MdrrError::ShardFailed`, the other shards' work survives
//!    bit-identically, ingestion continues on the healthy shards, and
//!    the quarantined shard is rehabilitated by deterministic
//!    re-collection.

use mdrr_data::{Attribute, RecordsView, Schema};
use mdrr_obs::MonotonicClock;
use mdrr_protocols::{Protocol, ProtocolSpec, RandomizationLevel, Release};
use mdrr_store::{
    salvage_checkpoint, FaultKind, FaultPlan, FaultyBackend, RetryPolicy, Storage, StorageBackend,
};
use mdrr_stream::{offset_base_seed, MdrrError, ShardedCollector, StreamObs};
use proptest::prelude::*;
use rand::RngCore;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

const N_SHARDS: usize = 3;
const SEED_1: u64 = 101;
const SEED_2: u64 = 202;

fn schema() -> Schema {
    Schema::new(vec![
        Attribute::indexed("A", 3).unwrap(),
        Attribute::indexed("B", 2).unwrap(),
    ])
    .unwrap()
}

fn spec() -> ProtocolSpec {
    ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7))
}

fn protocol() -> Arc<dyn Protocol> {
    spec().build_arc(&schema()).unwrap()
}

fn records(n: usize, salt: u32) -> Vec<Vec<u32>> {
    (0..n)
        .map(|i| vec![(i as u32 + salt) % 3, (i as u32) % 2])
        .collect()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mdrr-stream-torture-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn faulty_storage(plan: FaultPlan, retry: RetryPolicy) -> (Storage, Arc<FaultyBackend>) {
    let backend = Arc::new(FaultyBackend::new(plan));
    let storage = Storage::new(
        Arc::clone(&backend) as Arc<dyn StorageBackend>,
        retry,
        Arc::new(mdrr_obs::NullClock),
    );
    (storage, backend)
}

/// A collector holding `batch1`, checkpointed cleanly into `dir` as the
/// "old" committed state, plus its "new" sibling that also ingested
/// `batch2` but has not checkpointed yet.
fn committed_old_and_pending_new(dir: &Path) -> (ShardedCollector, ShardedCollector) {
    let mut old = ShardedCollector::new(protocol(), N_SHARDS).unwrap();
    old.ingest_records(&records(300, 0), SEED_1).unwrap();
    old.checkpoint(&spec(), dir, Some("old")).unwrap();
    let mut new = old.clone();
    new.ingest_records(&records(140, 5), SEED_2).unwrap();
    (old, new)
}

/// The exhaustive sweep: crash (or tear) at every backend operation of
/// the generation-2 checkpoint and demand old-complete or new-complete.
fn sweep_checkpoint_faults(make_fault: impl Fn(u64) -> FaultKind) {
    let template = scratch_dir("sweep-template");
    let (old, new) = committed_old_and_pending_new(&template);

    // Probe run: count the checkpoint's backend operations against a
    // fault-free plan, on a copy of the committed directory.
    let probe = scratch_dir("sweep-probe");
    copy_dir(&template, &probe);
    let (storage, backend) = faulty_storage(FaultPlan::none(), RetryPolicy::none());
    new.checkpoint_with(&spec(), &probe, Some("new"), &storage)
        .unwrap();
    let total_ops = backend.ops_executed();
    assert!(total_ops > 10, "expected a multi-operation checkpoint");
    let restored = ShardedCollector::restore(&probe).unwrap();
    assert_eq!(restored.collector.shards(), new.shards());
    std::fs::remove_dir_all(&probe).ok();

    for at_op in 0..total_ops {
        let dir = scratch_dir("sweep-case");
        copy_dir(&template, &dir);
        let (storage, _backend) = faulty_storage(
            FaultPlan::fail_at(at_op, make_fault(at_op)),
            RetryPolicy::none(),
        );
        let result = new.checkpoint_with(&spec(), &dir, Some("new"), &storage);

        let restored = ShardedCollector::restore(&dir)
            .unwrap_or_else(|e| panic!("restore after fault at op {at_op} failed: {e}"));
        let is_old = restored.collector.shards() == old.shards();
        let is_new = restored.collector.shards() == new.shards();
        assert!(
            is_old || is_new,
            "fault at op {at_op}: restored state is neither old nor new"
        );
        let expected_total = if is_new {
            new.total_reports()
        } else {
            old.total_reports()
        };
        assert_eq!(
            restored.collector.total_reports(),
            expected_total,
            "fault at op {at_op}: wrong report count"
        );
        assert_eq!(
            restored.app_state.as_deref(),
            Some(if is_new { "new" } else { "old" }),
            "fault at op {at_op}: app state does not match the restored generation"
        );
        // A checkpoint that reported success must actually be the
        // committed state.
        if result.is_ok() {
            assert!(is_new, "fault at op {at_op}: Ok(_) but old state restored");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&template).ok();
}

#[test]
fn checkpoint_crash_at_every_operation_restores_old_or_new() {
    sweep_checkpoint_faults(|_| FaultKind::Crash);
}

#[test]
fn checkpoint_torn_write_at_every_operation_restores_old_or_new() {
    // Vary the tear point with the op index so short and long prefixes
    // are both exercised across the sweep.
    sweep_checkpoint_faults(|at_op| FaultKind::TornWrite {
        keep_bytes: (at_op as usize % 3) * 7,
    });
}

#[test]
fn transient_faults_are_retried_away_and_leave_no_tmp_debris() {
    let dir = scratch_dir("transient");
    let (_old, new) = committed_old_and_pending_new(&dir);

    // A transient fault at every 4th operation: each one fails once and
    // succeeds on retry, so the checkpoint commits as if nothing
    // happened.
    let plan = FaultPlan::new(
        (0..60)
            .step_by(4)
            .map(|at_op| mdrr_store::Fault {
                at_op,
                kind: FaultKind::Transient,
            })
            .collect(),
    );
    let (storage, backend) = faulty_storage(plan, RetryPolicy::default());
    new.checkpoint_with(&spec(), &dir, Some("new"), &storage)
        .unwrap();
    assert!(backend.injected() > 0, "plan never fired");

    let restored = ShardedCollector::restore(&dir).unwrap();
    assert_eq!(restored.collector.shards(), new.shards());
    let debris: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|name| name.ends_with(".tmp"))
        .collect();
    assert!(debris.is_empty(), "tmp debris left behind: {debris:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_faulted_then_successful_checkpoint_sweeps_its_tmp_debris() {
    // Find a permanent-fault point that strands a `*.tmp` sibling (a
    // fault on the rename step of an atomic write), instead of
    // hardcoding the operation layout.
    let mut found_debris = false;
    for at_op in 0..40u64 {
        let dir = scratch_dir("debris");
        let (old, new) = committed_old_and_pending_new(&dir);
        let (storage, _backend) = faulty_storage(
            FaultPlan::fail_at(at_op, FaultKind::Permanent),
            RetryPolicy::none(),
        );
        let result = new.checkpoint_with(&spec(), &dir, Some("new"), &storage);
        let has_debris = std::fs::read_dir(&dir)
            .unwrap()
            .any(|e| e.unwrap().file_name().to_string_lossy().ends_with(".tmp"));
        if !(result.is_err() && has_debris) {
            std::fs::remove_dir_all(&dir).ok();
            continue;
        }
        found_debris = true;
        // The committed old state is untouched by the failed attempt.
        let restored = ShardedCollector::restore(&dir).unwrap();
        assert_eq!(restored.collector.shards(), old.shards());
        // The next (successful) checkpoint sweeps the debris on entry.
        new.checkpoint(&spec(), &dir, Some("new")).unwrap();
        let debris: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|name| name.ends_with(".tmp"))
            .collect();
        assert!(debris.is_empty(), "debris survived the sweep: {debris:?}");
        let restored = ShardedCollector::restore(&dir).unwrap();
        assert_eq!(restored.collector.shards(), new.shards());
        std::fs::remove_dir_all(&dir).ok();
        break;
    }
    assert!(
        found_debris,
        "no fault point stranded tmp debris; the sweep test is vacuous"
    );
}

/// A delegating protocol whose `encode_tally` panics when a countdown
/// reaches zero — the deterministic stand-in for a shard worker dying
/// mid-ingest (OOM, corrupted input, a bug in a protocol backend).
#[derive(Debug)]
struct PanicAfter {
    inner: Arc<dyn Protocol>,
    countdown: AtomicI64,
}

impl PanicAfter {
    fn new(inner: Arc<dyn Protocol>, calls_before_panic: i64) -> Self {
        PanicAfter {
            inner,
            countdown: AtomicI64::new(calls_before_panic),
        }
    }
}

impl Protocol for PanicAfter {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }
    fn channel_sizes(&self) -> Vec<usize> {
        self.inner.channel_sizes()
    }
    fn encode_record(&self, record: &[u32], rng: &mut dyn RngCore) -> Result<Vec<u32>, MdrrError> {
        self.inner.encode_record(record, rng)
    }
    fn encode_batch(
        &self,
        records: &RecordsView<'_>,
        rng: &mut dyn RngCore,
        out: &mut [Vec<u32>],
    ) -> Result<(), MdrrError> {
        self.inner.encode_batch(records, rng, out)
    }
    fn encode_tally(
        &self,
        records: &RecordsView<'_>,
        rng: &mut dyn RngCore,
        tallies: &mut [Vec<u64>],
    ) -> Result<(), MdrrError> {
        if self.countdown.fetch_sub(1, Ordering::SeqCst) == 1 {
            panic!("injected shard worker failure");
        }
        self.inner.encode_tally(records, rng, tallies)
    }
    fn decode_report(&self, codes: &[u32]) -> Result<Vec<u32>, MdrrError> {
        self.inner.decode_report(codes)
    }
    fn release_from_counts(
        &self,
        counts: &[Vec<u64>],
        n_records: usize,
    ) -> Result<Box<dyn Release>, MdrrError> {
        self.inner.release_from_counts(counts, n_records)
    }
    fn release_from_randomized(
        &self,
        randomized: mdrr_data::Dataset,
    ) -> Result<Box<dyn Release>, MdrrError> {
        self.inner.release_from_randomized(randomized)
    }
    fn run(
        &self,
        dataset: &mdrr_data::Dataset,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn Release>, MdrrError> {
        self.inner.run(dataset, rng)
    }
    fn epsilons(&self) -> Vec<f64> {
        self.inner.epsilons()
    }
}

#[test]
fn a_panicked_shard_is_quarantined_and_recovered_exactly() {
    let batch1 = records(240, 0);
    let batch2 = records(180, 3);
    let batch3 = records(90, 9);

    // Uninterrupted reference on the plain protocol.
    let mut reference = ShardedCollector::new(protocol(), N_SHARDS).unwrap();
    reference.ingest_records(&batch1, SEED_1).unwrap();
    reference.ingest_records(&batch2, SEED_2).unwrap();

    // Victim: same inner protocol behind a wrapper that panics on the
    // first encode_tally call of batch2 (batch1 spends N_SHARDS calls —
    // each worker's range fits one ENCODE_BATCH chunk).
    let inner = protocol();
    let chaos: Arc<dyn Protocol> =
        Arc::new(PanicAfter::new(Arc::clone(&inner), N_SHARDS as i64 + 1));
    let mut victim = ShardedCollector::new(chaos, N_SHARDS).unwrap();
    let obs = StreamObs::new(Arc::new(MonotonicClock::new()), N_SHARDS);
    victim.instrument(Arc::clone(&obs)).unwrap();
    victim.ingest_records(&batch1, SEED_1).unwrap();

    // The failure: typed, naming the dead shard; not a process abort.
    let ranges = victim.shard_ranges(batch2.len());
    let err = victim.ingest_records(&batch2, SEED_2).unwrap_err();
    let failed = match &err {
        MdrrError::ShardFailed { shard, .. } => *shard,
        other => panic!("expected ShardFailed, got {other}"),
    };
    assert!(err.to_string().contains("injected shard worker failure"));
    assert_eq!(victim.quarantined_shards(), vec![failed]);

    // Health is observable: gauge dropped, failure counted, journalled.
    let metrics = obs.registry().snapshot();
    let failed_label = failed.to_string();
    let label = [("shard", failed_label.as_str())];
    assert_eq!(metrics.gauge_value("stream_shard_healthy", &label), Some(0));
    assert_eq!(
        metrics.counter_value("stream_shard_failures_total", &[]),
        Some(1)
    );

    // Every healthy shard's batch2 work survived bit-identically, and
    // the failed shard never half-committed (it still holds exactly its
    // batch1 state).
    for k in (0..N_SHARDS).filter(|&k| k != failed) {
        assert_eq!(victim.shards()[k], reference.shards()[k], "shard {k}");
    }
    let mut old_only = ShardedCollector::new(protocol(), N_SHARDS).unwrap();
    old_only.ingest_records(&batch1, SEED_1).unwrap();
    assert_eq!(victim.shards()[failed], old_only.shards()[failed]);

    // Degraded collection continues on the healthy shards…
    let before = victim.total_reports();
    victim.ingest_records(&batch3, 777).unwrap();
    assert_eq!(victim.total_reports(), before + batch3.len() as u64);
    // …while the quarantined shard rejects routed traffic.
    assert!(victim
        .ingest_report(failed, &mdrr_stream::Report::new(vec![0, 0]))
        .is_err());

    // Recovery: re-run exactly the lost range under the shard's original
    // seed in a one-shard collector, merge into the pre-failure state,
    // rehabilitate.  The rebuilt shard equals the uninterrupted one
    // bit-for-bit.
    let (_, lost) = ranges
        .iter()
        .find(|(k, _)| *k == failed)
        .cloned()
        .expect("the failed shard had a range");
    let mut rerun = ShardedCollector::new(Arc::clone(&inner), 1).unwrap();
    rerun
        .ingest_records(&batch2[lost], offset_base_seed(SEED_2, failed))
        .unwrap();
    let mut replacement = victim.shards()[failed].clone();
    replacement.merge(&rerun.shards()[0]).unwrap();
    victim.rehabilitate(failed, replacement).unwrap();
    assert!(victim.quarantined_shards().is_empty());
    assert_eq!(victim.shards()[failed], reference.shards()[failed]);

    // With every shard whole again, nothing collected along the way was
    // lost: batch1, batch2 (recovered) and the degraded batch3 all count.
    assert_eq!(
        victim.total_reports(),
        (batch1.len() + batch2.len() + batch3.len()) as u64
    );
}

#[test]
fn a_fully_quarantined_collector_refuses_ingestion_with_a_typed_error() {
    // One shard, and its worker dies: the collector is fully degraded.
    let inner = protocol();
    let chaos: Arc<dyn Protocol> = Arc::new(PanicAfter::new(Arc::clone(&inner), 1));
    let mut victim = ShardedCollector::new(chaos, 1).unwrap();
    let err = victim.ingest_records(&records(50, 0), SEED_1).unwrap_err();
    assert!(matches!(err, MdrrError::ShardFailed { shard: 0, .. }));
    let err = victim.ingest_records(&records(50, 0), SEED_1).unwrap_err();
    assert!(
        err.to_string().contains("every shard is quarantined"),
        "{err}"
    );
    // Rehabilitation restores service.
    let mut rerun = ShardedCollector::new(inner, 1).unwrap();
    rerun.ingest_records(&records(50, 0), SEED_1).unwrap();
    victim.rehabilitate(0, rerun.shards()[0].clone()).unwrap();
    assert_eq!(victim.ingest_records(&records(10, 0), 5).unwrap(), 10);
}

/// Rebuilds the full per-shard state after a crash: whatever the
/// directory restored or salvaged, topped up by deterministic re-runs of
/// the lost ranges, must equal `new`'s shards exactly.
fn recover_to_new(
    dir: &Path,
    old: &ShardedCollector,
    new: &ShardedCollector,
    batch1: &[Vec<u32>],
    batch2: &[Vec<u32>],
) -> Vec<mdrr_stream::Accumulator> {
    // What survived on disk, tagged with original shard indices.
    let disk: Vec<(usize, mdrr_stream::Accumulator)> = match ShardedCollector::restore(dir) {
        Ok(restored) => restored
            .collector
            .shards()
            .iter()
            .cloned()
            .enumerate()
            .collect(),
        Err(_) => match salvage_checkpoint(dir, &Storage::os()) {
            Ok(report) => {
                let restored =
                    ShardedCollector::restore(dir).expect("a salvaged directory must restore");
                report
                    .recovered
                    .iter()
                    .copied()
                    .zip(restored.collector.shards().iter().cloned())
                    .collect()
            }
            // Nothing salvageable at all: rebuild every shard from
            // scratch below.
            Err(_) => Vec::new(),
        },
    };
    let ranges1 = old.shard_ranges(batch1.len());
    let ranges2 = old.shard_ranges(batch2.len());
    let range_of = |ranges: &[(usize, std::ops::Range<usize>)], k: usize| {
        ranges
            .iter()
            .find(|(shard, _)| *shard == k)
            .map(|(_, r)| r.clone())
            .unwrap_or(0..0)
    };
    let mut rebuilt = Vec::with_capacity(N_SHARDS);
    for k in 0..N_SHARDS {
        let on_disk = disk
            .iter()
            .find(|(shard, _)| *shard == k)
            .map(|(_, acc)| acc.clone());
        let shard_state = match on_disk {
            // New-complete: nothing to do.
            Some(acc) if acc == new.shards()[k] => acc,
            // Old-complete: re-run this shard's batch2 range under its
            // original seed and merge.
            Some(acc) => {
                assert_eq!(acc, old.shards()[k], "shard {k} is neither old nor new");
                let mut rerun = ShardedCollector::new(protocol(), 1).unwrap();
                rerun
                    .ingest_records(&batch2[range_of(&ranges2, k)], offset_base_seed(SEED_2, k))
                    .unwrap();
                let mut merged = acc;
                merged.merge(&rerun.shards()[0]).unwrap();
                merged
            }
            // Dropped entirely: re-run both ranges from scratch.
            None => {
                let mut rerun = ShardedCollector::new(protocol(), 1).unwrap();
                rerun
                    .ingest_records(&batch1[range_of(&ranges1, k)], offset_base_seed(SEED_1, k))
                    .unwrap();
                rerun
                    .ingest_records(&batch2[range_of(&ranges2, k)], offset_base_seed(SEED_2, k))
                    .unwrap();
                rerun.shards()[0].clone()
            }
        };
        rebuilt.push(shard_state);
    }
    rebuilt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For every random fault plan (and, via prefixes of the op range,
    /// every partial execution of it): the crashed directory either
    /// restores cleanly or salvages, and salvage + deterministic re-run
    /// of the lost shards reproduces the uninterrupted collector exactly
    /// — counts bit-identical, hence estimates equal at 1e-12.
    #[test]
    fn salvage_plus_rerun_reproduces_the_uninterrupted_run(
        seed in any::<u64>(),
        n_faults in 1usize..5,
    ) {
        let batch1 = records(210, 0);
        let batch2 = records(150, 4);
        let dir = scratch_dir("salvage");

        let mut old = ShardedCollector::new(protocol(), N_SHARDS).unwrap();
        old.ingest_records(&batch1, SEED_1).unwrap();
        old.checkpoint(&spec(), &dir, Some("old")).unwrap();
        let mut new = old.clone();
        new.ingest_records(&batch2, SEED_2).unwrap();

        // Attempt the generation-2 checkpoint under a random fault plan
        // (transients, torn writes, lying syncs), then cut the power so
        // even lied-about syncs lose their data.
        let (storage, backend) =
            faulty_storage(FaultPlan::random(seed, 40, n_faults), RetryPolicy::default());
        let _ = new.checkpoint_with(&spec(), &dir, Some("new"), &storage);
        backend.power_cut();

        let rebuilt = recover_to_new(&dir, &old, &new, &batch1, &batch2);
        for (k, acc) in rebuilt.iter().enumerate() {
            prop_assert_eq!(acc, &new.shards()[k], "shard {} not recovered exactly", k);
        }

        // The pooled release over the recovered shards equals the
        // uninterrupted snapshot at 1e-12 (exactly, in fact).
        let mut pooled = rebuilt[0].clone();
        for acc in &rebuilt[1..] {
            pooled.merge(acc).unwrap();
        }
        let from_recovery = new
            .protocol()
            .release_from_counts(pooled.counts(), pooled.n_reports() as usize)
            .unwrap();
        let uninterrupted = new.snapshot().unwrap();
        for j in 0..schema().len() {
            let a = from_recovery.marginal(j).unwrap();
            let b = uninterrupted.marginal(j).unwrap();
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert!((x - y).abs() <= 1e-12);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
