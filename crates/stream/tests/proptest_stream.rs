//! Property tests pinning the streaming path to the batch path.
//!
//! The load-bearing claim of the streaming subsystem is that sharding and
//! merging lose nothing: for the same randomized codes, a snapshot taken
//! from shard-merged accumulators is numerically identical to the batch
//! release the protocol computes from the pooled randomized data set —
//! for every protocol behind `dyn Protocol`, any shard count, any report
//! routing and any merge order.  Since the collector dispatches through
//! `Arc<dyn Protocol>`, these properties hold for any future protocol with
//! a sound `release_from_counts` — no per-protocol test arms needed.

use mdrr_data::{Attribute, AttributeKind, Dataset, Schema};
use mdrr_protocols::{
    AdjustmentConfig, Clustering, FrequencyEstimator, Protocol, ProtocolSpec, RandomizationLevel,
    Release,
};
use mdrr_stream::{Accumulator, Report, ReportBatch, ShardedCollector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Rows of `ds` materialized through the supported `record(i)` accessor
/// (the deprecated `records()` iterator is lint-gated).
fn all_records(ds: &Dataset) -> Vec<Vec<u32>> {
    (0..ds.n_records())
        .map(|i| ds.record(i).expect("index in range"))
        .collect()
}

/// A small schema with 3 attributes of cardinalities 2–4.
fn schema_strategy() -> impl Strategy<Value = Schema> {
    prop::collection::vec(2usize..5, 3..4).prop_map(|cards| {
        let attrs = cards
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                Attribute::new(
                    format!("A{i}"),
                    AttributeKind::Nominal,
                    (0..c).map(|k| k.to_string()).collect(),
                )
                .unwrap()
            })
            .collect();
        Schema::new(attrs).unwrap()
    })
}

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (schema_strategy(), 30usize..150, any::<u64>()).prop_map(|(schema, n, seed)| {
        let cards = schema.cardinalities();
        let mut ds = Dataset::empty(schema);
        let mut state = seed | 1;
        for _ in 0..n {
            let record: Vec<u32> = cards
                .iter()
                .map(|&c| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) % c as u64) as u32
                })
                .collect();
            ds.push_record(&record).unwrap();
        }
        ds
    })
}

/// The three estimating protocols configured for a schema, all behind
/// `dyn Protocol` (clusters: first two attributes together, the rest one
/// cluster).
fn protocols(schema: &Schema) -> Vec<Arc<dyn Protocol>> {
    let m = schema.len();
    let clustering = Clustering::new(vec![vec![0, 1], (2..m).collect()], m).unwrap();
    let level = RandomizationLevel::KeepProbability(0.6);
    [
        ProtocolSpec::independent(level.clone()),
        ProtocolSpec::Joint {
            level: level.clone(),
            max_domain: None,
            equivalent_risk: false,
        },
        ProtocolSpec::Clusters {
            level,
            clustering,
            equivalent_risk: false,
        },
    ]
    .iter()
    .map(|spec| spec.build_arc(schema).unwrap())
    .collect()
}

/// All four `ProtocolSpec` shapes (the three above plus RR-Adjustment
/// stacked on RR-Independent) — the client-side encoders the batch path
/// must be bit-identical to.
fn all_four_protocols(schema: &Schema) -> Vec<Arc<dyn Protocol>> {
    let mut all = protocols(schema);
    all.push(
        ProtocolSpec::Adjusted {
            base: Box::new(ProtocolSpec::independent(
                RandomizationLevel::KeepProbability(0.6),
            )),
            config: AdjustmentConfig::default(),
        }
        .build_arc(schema)
        .unwrap(),
    );
    all
}

/// The batch release computed from the same randomized codes: decode every
/// report into the pooled randomized data set and estimate from it.
fn batch_release(protocol: &dyn Protocol, reports: &[Report]) -> Box<dyn Release> {
    let mut randomized = Dataset::empty(protocol.schema().clone());
    for report in reports {
        let record = protocol.decode_report(report.codes()).unwrap();
        randomized.push_record(&record).unwrap();
    }
    protocol.release_from_randomized(randomized).unwrap()
}

/// Every single- and two-attribute assignment of a schema.
fn query_workload(schema: &Schema) -> Vec<Vec<(usize, u32)>> {
    let cards = schema.cardinalities();
    let mut queries = Vec::new();
    for (a, &ca) in cards.iter().enumerate() {
        for va in 0..ca as u32 {
            queries.push(vec![(a, va)]);
            for (b, &cb) in cards.iter().enumerate().skip(a + 1) {
                for vb in 0..cb as u32 {
                    queries.push(vec![(a, va), (b, vb)]);
                }
            }
        }
    }
    queries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Shard-merged streaming estimates are numerically identical to the
    /// batch estimates on the same randomized codes, for all three
    /// protocols, arbitrary shard counts, arbitrary report routing and
    /// arbitrary merge orders.
    #[test]
    fn streaming_equals_batch_on_identical_codes(ds in dataset_strategy(),
                                                 n_shards in 1usize..6,
                                                 route_mult in 1u64..1000,
                                                 rotation in 0usize..6,
                                                 seed in any::<u64>()) {
        for protocol in protocols(ds.schema()) {
            // Client side: one report per record, one shared RNG so the
            // randomized codes are fixed once and reused on both paths.
            let mut rng = StdRng::seed_from_u64(seed);
            let reports: Vec<Report> = all_records(&ds)
                .iter()
                .map(|r| Report::encode(&*protocol, r, &mut rng).unwrap())
                .collect();

            // Streaming side: route reports to arbitrary shards…
            let mut collector = ShardedCollector::new(Arc::clone(&protocol), n_shards).unwrap();
            for (i, report) in reports.iter().enumerate() {
                let shard = ((i as u64).wrapping_mul(route_mult) % n_shards as u64) as usize;
                collector.ingest_report(shard, report).unwrap();
            }
            prop_assert_eq!(collector.total_reports(), reports.len() as u64);
            let snapshot = collector.snapshot().unwrap();

            // …and additionally merge the shards in a rotated order.
            let mut merged = Accumulator::new(&protocol.channel_sizes()).unwrap();
            for k in 0..n_shards {
                merged.merge(&collector.shards()[(k + rotation) % n_shards]).unwrap();
            }
            let rotated = protocol
                .release_from_counts(merged.counts(), merged.n_reports() as usize)
                .unwrap();

            // Batch side: the pooled reports as a randomized data set.
            let batch = batch_release(&*protocol, &reports);

            prop_assert_eq!(snapshot.record_count(), batch.record_count());
            for query in query_workload(ds.schema()) {
                let streamed = snapshot.frequency(&query).unwrap();
                let reordered = rotated.frequency(&query).unwrap();
                let batched = batch.frequency(&query).unwrap();
                prop_assert!((streamed - batched).abs() < 1e-12,
                             "query {:?}: streamed {} vs batch {}", query, streamed, batched);
                prop_assert!((reordered - streamed).abs() < 1e-12,
                             "query {:?}: merge order changed the estimate", query);
            }
        }
    }

    /// Splitting one stream of records across different shard counts via
    /// the scoped-thread ingestion path never changes the total report
    /// count, and every snapshot is a proper estimator.
    #[test]
    fn scoped_ingestion_is_complete_for_any_shard_count(ds in dataset_strategy(),
                                                        n_shards in 1usize..6,
                                                        seed in any::<u64>()) {
        let records: Vec<Vec<u32>> = all_records(&ds);
        let protocol = protocols(ds.schema()).remove(0);
        let mut collector = ShardedCollector::new(protocol, n_shards).unwrap();
        let ingested = collector.ingest_records(&records, seed).unwrap();
        prop_assert_eq!(ingested, records.len() as u64);
        prop_assert_eq!(collector.total_reports(), records.len() as u64);
        let snapshot = collector.snapshot().unwrap();
        prop_assert_eq!(snapshot.record_count(), records.len());
        let total = snapshot.frequency(&[]).unwrap();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// The load-bearing claim of the batch pipeline: for all four
    /// `ProtocolSpec`s, under one shared seed and *arbitrary* chunk
    /// splits, `encode_batch` + `ingest_batch` and the fused
    /// `encode_tally` produce byte-identical accumulator counts (and
    /// byte-identical codes) to encoding every record one at a time with
    /// `Report::encode` and ingesting report by report.
    #[test]
    fn batch_paths_are_bit_identical_to_the_per_record_path(ds in dataset_strategy(),
                                                            chunk_size in 1usize..64,
                                                            seed in any::<u64>()) {
        for protocol in all_four_protocols(ds.schema()) {
            let sizes = protocol.channel_sizes();

            // Scalar reference: one report at a time, one shared RNG.
            let mut rng = StdRng::seed_from_u64(seed);
            let mut reference = Accumulator::new(&sizes).unwrap();
            let mut reports = Vec::with_capacity(ds.n_records());
            for record in all_records(&ds) {
                let report = Report::encode(&*protocol, &record, &mut rng).unwrap();
                reference.ingest(&report).unwrap();
                reports.push(report);
            }

            // Batch path: the same records through arbitrary columnar
            // chunk splits over a fresh RNG with the same seed.
            let mut rng = StdRng::seed_from_u64(seed);
            let mut batched = Accumulator::new(&sizes).unwrap();
            let mut batch = ReportBatch::for_protocol(&*protocol);
            let mut codes = Vec::new();
            let mut i = 0usize;
            for chunk in ds.column_chunks(chunk_size).unwrap() {
                batch.encode_records(&*protocol, &chunk, &mut rng).unwrap();
                batched.ingest_batch(&batch).unwrap();
                // Chunk boundaries must not affect the codes themselves.
                for k in 0..batch.n_reports() {
                    batch.read_report(k, &mut codes).unwrap();
                    prop_assert_eq!(&codes[..], reports[i].codes(),
                                    "record {} differs on {}", i, protocol.name());
                    i += 1;
                }
            }
            prop_assert_eq!(&batched, &reference, "batch counts differ on {}", protocol.name());

            // Fused tally path: same draws, straight into count vectors.
            let mut rng = StdRng::seed_from_u64(seed);
            let mut tallies: Vec<Vec<u64>> = sizes.iter().map(|&s| vec![0u64; s]).collect();
            for chunk in ds.column_chunks(chunk_size).unwrap() {
                protocol.encode_tally(&chunk, &mut rng, &mut tallies).unwrap();
            }
            prop_assert_eq!(&tallies[..], reference.counts(),
                            "tally counts differ on {}", protocol.name());
        }
    }

    /// The sharded bulk paths — row-major, columnar view, and generated —
    /// are byte-identical to the scalar reference ingestion for any shard
    /// count and seed (same chunk → shard assignment, same shard → RNG
    /// mapping, same draws).
    #[test]
    fn sharded_batch_ingestion_is_bit_identical(ds in dataset_strategy(),
                                                n_shards in 1usize..6,
                                                seed in any::<u64>()) {
        let records: Vec<Vec<u32>> = all_records(&ds);
        for protocol in all_four_protocols(ds.schema()) {
            let mut scalar = ShardedCollector::new(Arc::clone(&protocol), n_shards).unwrap();
            scalar.ingest_records_per_record(&records, seed).unwrap();

            let mut rows = ShardedCollector::new(Arc::clone(&protocol), n_shards).unwrap();
            rows.ingest_records(&records, seed).unwrap();
            prop_assert_eq!(rows.shards(), scalar.shards(), "rows path on {}", protocol.name());

            let mut view = ShardedCollector::new(Arc::clone(&protocol), n_shards).unwrap();
            view.ingest_view(&ds.view(), seed).unwrap();
            prop_assert_eq!(view.shards(), scalar.shards(), "view path on {}", protocol.name());
        }
    }
}
