//! The sharded streaming collector.
//!
//! A [`ShardedCollector`] owns `N` independent [`Accumulator`]s and fans
//! ingestion out over `std::thread::scope` workers — one worker per shard,
//! each with its own deterministic RNG, each writing only to its own
//! shard's accumulator, so ingestion is embarrassingly parallel and never
//! locks.  At any point mid-stream the shards can be merged (exactly —
//! counts are sums) and snapshotted into the protocol's regular release via
//! the closed-form estimators, so incremental estimation costs O(domain)
//! per snapshot, independent of how many reports have streamed by.
//!
//! The collector is generic over the protocol: it holds an
//! `Arc<dyn Protocol>` and works with any implementation of
//! [`mdrr_protocols::Protocol`] — the paper's three mechanisms today, any
//! future backend unchanged.

use crate::accumulator::Accumulator;
use crate::error::MdrrError;
use crate::report::Report;
use mdrr_protocols::{Protocol, Release};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Multiplier used to derive well-separated per-shard seeds from a base
/// seed (the SplitMix64 golden-ratio increment).
const SHARD_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// A point-in-time estimate taken from the accumulated sufficient
/// statistics: the protocol's regular release (so every batch query runs
/// unchanged against a mid-stream snapshot), without randomized microdata.
pub type StreamSnapshot = Box<dyn Release>;

/// A collector ingesting randomized reports through `N` sharded
/// accumulators, for any `dyn Protocol`.
#[derive(Debug, Clone)]
pub struct ShardedCollector {
    protocol: Arc<dyn Protocol>,
    shards: Vec<Accumulator>,
}

impl ShardedCollector {
    /// A collector for `protocol` with `n_shards` empty shards.
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] if `n_shards` is zero.
    pub fn new(protocol: Arc<dyn Protocol>, n_shards: usize) -> Result<Self, MdrrError> {
        if n_shards == 0 {
            return Err(MdrrError::config("a collector needs at least one shard"));
        }
        let channel_sizes = protocol.channel_sizes();
        let shard = Accumulator::new(&channel_sizes)?;
        Ok(ShardedCollector {
            protocol,
            shards: vec![shard; n_shards],
        })
    }

    /// Convenience constructor wrapping a concrete protocol into the
    /// `Arc<dyn Protocol>` the collector holds.
    ///
    /// # Errors
    /// Same conditions as [`ShardedCollector::new`].
    pub fn for_protocol(
        protocol: impl Protocol + 'static,
        n_shards: usize,
    ) -> Result<Self, MdrrError> {
        Self::new(Arc::new(protocol), n_shards)
    }

    /// The protocol the collector ingests reports for.
    pub fn protocol(&self) -> &Arc<dyn Protocol> {
        &self.protocol
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard accumulators, in shard order.
    pub fn shards(&self) -> &[Accumulator] {
        &self.shards
    }

    /// Total number of reports ingested across all shards.
    pub fn total_reports(&self) -> u64 {
        self.shards.iter().map(Accumulator::n_reports).sum()
    }

    /// Ingests one already-encoded report into a specific shard (the
    /// network path: reports arrive pre-randomized from the clients and are
    /// routed to a shard by any load-balancing rule).
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] for a bad shard index
    /// or a report that does not match the protocol's channels.
    pub fn ingest_report(&mut self, shard: usize, report: &Report) -> Result<(), MdrrError> {
        let n_shards = self.shards.len();
        self.shards
            .get_mut(shard)
            .ok_or_else(|| {
                MdrrError::config(format!(
                    "shard index {shard} out of range ({n_shards} shards)"
                ))
            })?
            .ingest(report)
    }

    /// Simulates `records.len()` clients: splits the records into one
    /// contiguous chunk per shard and runs one `std::thread::scope` worker
    /// per shard.  Worker `k` encodes its chunk with its own deterministic
    /// RNG (derived from `base_seed` and `k`) and accumulates into shard
    /// `k` — no locks, no cross-shard traffic.  The result is fully
    /// deterministic for a given `(records, base_seed, n_shards)` triple.
    ///
    /// Returns the number of reports ingested.
    ///
    /// # Errors
    /// Returns the first worker error (e.g. a record that does not fit the
    /// protocol's schema).  Shards that already ingested part of their
    /// chunk keep those reports, so a failed call should be treated as
    /// poisoning the collector.
    pub fn ingest_records(
        &mut self,
        records: &[Vec<u32>],
        base_seed: u64,
    ) -> Result<u64, MdrrError> {
        if records.is_empty() {
            return Ok(0);
        }
        let chunk_size = records.len().div_ceil(self.shards.len());
        let protocol: &dyn Protocol = &*self.protocol;
        let results: Vec<Result<(), MdrrError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(records.chunks(chunk_size))
                .enumerate()
                .map(|(k, (shard, chunk))| {
                    scope.spawn(move || {
                        let mut rng = shard_rng(base_seed, k);
                        for record in chunk {
                            let report = Report::encode(protocol, record, &mut rng)?;
                            shard.ingest(&report)?;
                        }
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        for result in results {
            result?;
        }
        Ok(records.len() as u64)
    }

    /// Simulates generated clients without materializing their records:
    /// worker `k` draws `clients_per_shard[k]` records from `generator`
    /// with its own deterministic RNG, encodes and accumulates them.  This
    /// is the million-client path of the `stream_sim` driver.
    ///
    /// Returns the number of reports ingested.
    ///
    /// # Errors
    /// Same contract as [`ShardedCollector::ingest_records`]; additionally
    /// rejects a `clients_per_shard` whose length differs from the shard
    /// count.
    pub fn ingest_generated<G>(
        &mut self,
        clients_per_shard: &[usize],
        base_seed: u64,
        generator: G,
    ) -> Result<u64, MdrrError>
    where
        G: Fn(&mut StdRng) -> Vec<u32> + Sync,
    {
        if clients_per_shard.len() != self.shards.len() {
            return Err(MdrrError::config(format!(
                "{} per-shard client counts for {} shards",
                clients_per_shard.len(),
                self.shards.len()
            )));
        }
        let protocol: &dyn Protocol = &*self.protocol;
        let generator = &generator;
        let results: Vec<Result<(), MdrrError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(clients_per_shard.iter())
                .enumerate()
                .map(|(k, (shard, &clients))| {
                    scope.spawn(move || {
                        let mut rng = shard_rng(base_seed, k);
                        for _ in 0..clients {
                            let record = generator(&mut rng);
                            let report = Report::encode(protocol, &record, &mut rng)?;
                            shard.ingest(&report)?;
                        }
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        for result in results {
            result?;
        }
        Ok(clients_per_shard.iter().map(|&c| c as u64).sum())
    }

    /// The k-way merge of all shards (exact: counts are sums).
    ///
    /// # Errors
    /// Propagates accumulator errors (cannot happen for a well-formed
    /// collector, whose shards share one channel layout).
    pub fn merged(&self) -> Result<Accumulator, MdrrError> {
        let mut merged = Accumulator::new(&self.protocol.channel_sizes())?;
        for shard in &self.shards {
            merged.merge(shard)?;
        }
        Ok(merged)
    }

    /// Takes a point-in-time estimate: merges all shards and runs the
    /// protocol's closed-form estimation on the pooled counts.  The
    /// returned release answers every query the batch release answers, and
    /// is numerically identical to the batch estimate over the same
    /// randomized codes.
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] when no report has
    /// been ingested yet.
    pub fn snapshot(&self) -> Result<StreamSnapshot, MdrrError> {
        let merged = self.merged()?;
        if merged.is_empty() {
            return Err(MdrrError::config(
                "cannot snapshot a collector before any report has been ingested",
            ));
        }
        self.protocol
            .release_from_counts(merged.counts(), merged.n_reports() as usize)
    }
}

/// The deterministic RNG of shard `k` for a given base seed.
fn shard_rng(base_seed: u64, k: usize) -> StdRng {
    StdRng::seed_from_u64(base_seed.wrapping_add((k as u64).wrapping_mul(SHARD_SEED_STRIDE)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdrr_data::{Attribute, Schema};
    use mdrr_protocols::{FrequencyEstimator, ProtocolSpec, RandomizationLevel};
    use rand::RngCore;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::indexed("A", 3).unwrap(),
            Attribute::indexed("B", 2).unwrap(),
        ])
        .unwrap()
    }

    fn protocol() -> Arc<dyn Protocol> {
        ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7))
            .build_arc(&schema())
            .unwrap()
    }

    fn records(n: usize) -> Vec<Vec<u32>> {
        (0..n)
            .map(|i| vec![(i % 3) as u32, (i % 2) as u32])
            .collect()
    }

    #[test]
    fn construction_validates_shard_count() {
        assert!(ShardedCollector::new(protocol(), 0).is_err());
        let c = ShardedCollector::new(protocol(), 4).unwrap();
        assert_eq!(c.n_shards(), 4);
        assert_eq!(c.total_reports(), 0);
        assert!(c.snapshot().is_err());
    }

    #[test]
    fn for_protocol_wraps_concrete_protocols() {
        let concrete =
            mdrr_protocols::RRIndependent::new(schema(), &RandomizationLevel::KeepProbability(0.7))
                .unwrap();
        let c = ShardedCollector::for_protocol(concrete, 2).unwrap();
        assert_eq!(c.protocol().name(), "RR-Independent");
        assert_eq!(c.n_shards(), 2);
    }

    #[test]
    fn parallel_ingestion_is_deterministic_and_covers_every_record() {
        let mut a = ShardedCollector::new(protocol(), 4).unwrap();
        let mut b = ShardedCollector::new(protocol(), 4).unwrap();
        let rs = records(1_001);
        assert_eq!(a.ingest_records(&rs, 7).unwrap(), 1_001);
        assert_eq!(b.ingest_records(&rs, 7).unwrap(), 1_001);
        assert_eq!(a.shards(), b.shards());
        assert_eq!(a.total_reports(), 1_001);
        // Every shard except possibly the last is full.
        assert!(a.shards()[..3].iter().all(|s| s.n_reports() == 251));
        assert_eq!(a.shards()[3].n_reports(), 248);

        // A different seed produces different randomized counts.
        let mut c = ShardedCollector::new(protocol(), 4).unwrap();
        c.ingest_records(&rs, 8).unwrap();
        assert_ne!(a.shards(), c.shards());
    }

    #[test]
    fn ingestion_handles_degenerate_shapes() {
        let mut c = ShardedCollector::new(protocol(), 8).unwrap();
        // Fewer records than shards: trailing shards stay empty.
        assert_eq!(c.ingest_records(&records(3), 1).unwrap(), 3);
        assert_eq!(c.total_reports(), 3);
        // No records at all is a no-op.
        assert_eq!(c.ingest_records(&[], 1).unwrap(), 0);
        // Invalid records surface as errors.
        assert!(c.ingest_records(&[vec![9, 9]], 1).is_err());
    }

    #[test]
    fn generated_ingestion_validates_and_counts() {
        let mut c = ShardedCollector::new(protocol(), 3).unwrap();
        assert!(c.ingest_generated(&[10, 10], 1, |_| vec![0, 0]).is_err());
        let n = c
            .ingest_generated(&[100, 50, 0], 1, |rng| {
                vec![rng.next_u64() as u32 % 3, rng.next_u64() as u32 % 2]
            })
            .unwrap();
        assert_eq!(n, 150);
        assert_eq!(c.total_reports(), 150);
        assert_eq!(c.shards()[2].n_reports(), 0);
    }

    #[test]
    fn snapshot_matches_manual_merge() {
        let mut c = ShardedCollector::new(protocol(), 4).unwrap();
        c.ingest_records(&records(2_000), 3).unwrap();
        let merged = c.merged().unwrap();
        assert_eq!(merged.n_reports(), 2_000);
        let snapshot = c.snapshot().unwrap();
        assert_eq!(snapshot.record_count(), 2_000);
        let direct = c
            .protocol()
            .release_from_counts(merged.counts(), 2_000)
            .unwrap();
        // The snapshot is the protocol's regular release over the merged
        // counts: identical marginals and identical query answers.
        for j in 0..2 {
            assert_eq!(snapshot.marginal(j).unwrap(), direct.marginal(j).unwrap());
        }
        let f = snapshot.frequency(&[(0, 1)]).unwrap();
        assert_eq!(f, direct.frequency(&[(0, 1)]).unwrap());
        assert!((f - 1.0 / 3.0).abs() < 0.1);
    }

    #[test]
    fn routed_reports_land_in_their_shard() {
        let mut c = ShardedCollector::new(protocol(), 2).unwrap();
        let report = Report::new(vec![1, 0]);
        c.ingest_report(1, &report).unwrap();
        assert!(c.ingest_report(5, &report).is_err());
        assert_eq!(c.shards()[0].n_reports(), 0);
        assert_eq!(c.shards()[1].n_reports(), 1);
    }
}
