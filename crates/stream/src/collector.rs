//! The sharded streaming collector.
//!
//! A [`ShardedCollector`] owns `N` independent [`Accumulator`]s and fans
//! ingestion out over `std::thread::scope` workers — one worker per shard,
//! each with its own deterministic RNG, each writing only to its own
//! shard's accumulator, so ingestion is embarrassingly parallel and never
//! locks.  At any point mid-stream the shards can be merged (exactly —
//! counts are sums) and snapshotted into the protocol's regular release via
//! the closed-form estimators, so incremental estimation costs O(domain)
//! per snapshot, independent of how many reports have streamed by.
//!
//! The collector is generic over the protocol: it holds an
//! `Arc<dyn Protocol>` and works with any implementation of
//! [`mdrr_protocols::Protocol`] — the paper's three mechanisms today, any
//! future backend unchanged.

use crate::accumulator::Accumulator;
use crate::batch::ReportBatch;
use crate::error::MdrrError;
use crate::instrument::{StreamObs, WorkerObs};
use crate::report::Report;
use mdrr_data::{RecordsBuffer, RecordsView};
use mdrr_obs::EventKind;
use mdrr_protocols::{Protocol, Release};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::any::Any;
use std::ops::Range;
use std::sync::Arc;

/// Multiplier used to derive well-separated per-shard seeds from a base
/// seed (the SplitMix64 golden-ratio increment).
const SHARD_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Records per [`mdrr_protocols::Protocol::encode_batch`] call on the bulk
/// ingestion paths: large enough to amortise the once-per-batch validation
/// and buffer bookkeeping to nothing, small enough that a chunk's columnar
/// codes stay cache-resident between encoding and counting.
pub const ENCODE_BATCH: usize = 8 * 1024;

/// A point-in-time estimate taken from the accumulated sufficient
/// statistics: the protocol's regular release (so every batch query runs
/// unchanged against a mid-stream snapshot), without randomized microdata.
pub type StreamSnapshot = Box<dyn Release>;

/// A collector ingesting randomized reports through `N` sharded
/// accumulators, for any `dyn Protocol`.
///
/// Instrumentation is opt-in via [`ShardedCollector::instrument`]; an
/// uninstrumented collector pays a single pointer check per bulk call.
/// Clones share the attached instrumentation (it is a view onto the same
/// registry), so cloning never forks metric state.
#[derive(Debug, Clone)]
pub struct ShardedCollector {
    protocol: Arc<dyn Protocol>,
    shards: Vec<Accumulator>,
    /// Degraded-mode flags, parallel to `shards`: a quarantined shard
    /// stopped serving after its worker failed.  Its accumulator keeps
    /// the reports it had absorbed before the failure (a worker that
    /// dies mid-run never half-commits — tallies are absorbed only at
    /// run end), the bulk paths route new records over the remaining
    /// healthy shards, and [`ShardedCollector::rehabilitate`] brings the
    /// shard back once its lost range has been re-collected.
    quarantined: Vec<bool>,
    obs: Option<Arc<StreamObs>>,
}

impl ShardedCollector {
    /// A collector for `protocol` with `n_shards` empty shards.
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] if `n_shards` is zero.
    pub fn new(protocol: Arc<dyn Protocol>, n_shards: usize) -> Result<Self, MdrrError> {
        if n_shards == 0 {
            return Err(MdrrError::config("a collector needs at least one shard"));
        }
        let channel_sizes = protocol.channel_sizes();
        let shard = Accumulator::new(&channel_sizes)?;
        Ok(ShardedCollector {
            protocol,
            shards: vec![shard; n_shards],
            quarantined: vec![false; n_shards],
            obs: None,
        })
    }

    /// Convenience constructor wrapping a concrete protocol into the
    /// `Arc<dyn Protocol>` the collector holds.
    ///
    /// # Errors
    /// Same conditions as [`ShardedCollector::new`].
    pub fn for_protocol(
        protocol: impl Protocol + 'static,
        n_shards: usize,
    ) -> Result<Self, MdrrError> {
        Self::new(Arc::new(protocol), n_shards)
    }

    /// Reassembles a collector from restored per-shard accumulators (the
    /// checkpoint/restore path).  The caller guarantees every accumulator
    /// matches the protocol's channel layout.
    pub(crate) fn from_parts(protocol: Arc<dyn Protocol>, shards: Vec<Accumulator>) -> Self {
        debug_assert!(!shards.is_empty());
        let quarantined = vec![false; shards.len()];
        ShardedCollector {
            protocol,
            shards,
            quarantined,
            obs: None,
        }
    }

    /// Attaches instrumentation: from here on, every ingest path bumps
    /// per-shard counters, the bulk paths record per-chunk latency
    /// histograms (when `obs`'s clock is enabled), and snapshots and
    /// checkpoints land in the journal.  Attaching never changes ingest
    /// output — the RNG schedule, shard layout and counts are untouched.
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] when `obs` was laid
    /// out for a different shard count.
    pub fn instrument(&mut self, obs: Arc<StreamObs>) -> Result<(), MdrrError> {
        if obs.n_shards() != self.shards.len() {
            return Err(MdrrError::config(format!(
                "instrumentation is laid out for {} shards but the collector has {}",
                obs.n_shards(),
                self.shards.len()
            )));
        }
        self.obs = Some(obs);
        Ok(())
    }

    /// The attached instrumentation, if any.
    pub fn instrumentation(&self) -> Option<&Arc<StreamObs>> {
        self.obs.as_ref()
    }

    /// The protocol the collector ingests reports for.
    pub fn protocol(&self) -> &Arc<dyn Protocol> {
        &self.protocol
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard accumulators, in shard order.
    pub fn shards(&self) -> &[Accumulator] {
        &self.shards
    }

    /// Total number of reports ingested across all shards.
    pub fn total_reports(&self) -> u64 {
        self.shards.iter().map(Accumulator::n_reports).sum()
    }

    /// Whether shard `k` is quarantined (out-of-range indices read as
    /// healthy).
    pub fn is_quarantined(&self, shard: usize) -> bool {
        self.quarantined.get(shard).copied().unwrap_or(false)
    }

    /// The quarantined shard indices, ascending — the shards whose lost
    /// work must be re-collected and merged back (see
    /// [`ShardedCollector::rehabilitate`]).
    pub fn quarantined_shards(&self) -> Vec<usize> {
        self.quarantined
            .iter()
            .enumerate()
            .filter_map(|(k, &q)| q.then_some(k))
            .collect()
    }

    /// The healthy (non-quarantined) shard indices, ascending.
    pub fn healthy_shards(&self) -> Vec<usize> {
        self.quarantined
            .iter()
            .enumerate()
            .filter_map(|(k, &q)| (!q).then_some(k))
            .collect()
    }

    /// The record partition the bulk paths would use for `n` records
    /// right now: `(shard, record_range)` pairs over the healthy shards,
    /// in shard order, with empty trailing ranges omitted.  With no shard
    /// quarantined this is exactly the historical contiguous-chunk
    /// partition.  Callers that may need to re-collect a shard's work
    /// after a failure capture this *before* ingesting — quarantining
    /// changes the partition of subsequent calls.
    pub fn shard_ranges(&self, n: usize) -> Vec<(usize, Range<usize>)> {
        if n == 0 {
            return Vec::new();
        }
        let healthy = self.healthy_shards();
        if healthy.is_empty() {
            return Vec::new();
        }
        let chunk_size = n.div_ceil(healthy.len());
        healthy
            .into_iter()
            .enumerate()
            .filter(|&(j, _)| j * chunk_size < n)
            .map(|(j, k)| (k, j * chunk_size..((j + 1) * chunk_size).min(n)))
            .collect()
    }

    /// Brings a quarantined shard back into service with a replacement
    /// accumulator — typically the shard's pre-failure counts merged with
    /// a deterministic re-collection of its lost range (worker `k`'s RNG
    /// stream is reproduced by a one-shard collector under
    /// [`offset_base_seed`]`(base_seed, k)`).  The replacement must match
    /// the collector's channel layout.
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] for an out-of-range
    /// shard index or a layout-mismatched accumulator.
    pub fn rehabilitate(
        &mut self,
        shard: usize,
        accumulator: Accumulator,
    ) -> Result<(), MdrrError> {
        let n_shards = self.shards.len();
        let slot = self.shards.get_mut(shard).ok_or_else(|| {
            MdrrError::config(format!(
                "shard index {shard} out of range ({n_shards} shards)"
            ))
        })?;
        let layout_matches = accumulator.counts().len() == slot.counts().len()
            && accumulator
                .counts()
                .iter()
                .zip(slot.counts())
                .all(|(a, b)| a.len() == b.len());
        if !layout_matches {
            return Err(MdrrError::config(format!(
                "replacement accumulator for shard {shard} does not match the collector's \
                 channel layout"
            )));
        }
        *slot = accumulator;
        if let Some(flag) = self.quarantined.get_mut(shard) {
            *flag = false;
        }
        if let Some(obs) = self.obs.as_deref() {
            obs.set_shard_health(shard, true);
        }
        Ok(())
    }

    /// The number of healthy shards, as a typed error when every shard is
    /// quarantined (a fully degraded collector cannot ingest).
    fn healthy_count(&self) -> Result<usize, MdrrError> {
        let count = self.quarantined.iter().filter(|&&q| !q).count();
        if count == 0 {
            return Err(MdrrError::config(
                "every shard is quarantined; rehabilitate at least one before ingesting",
            ));
        }
        Ok(count)
    }

    /// Quarantines every shard whose worker died, records the failures
    /// (health gauge to 0, `stream_shard_failures_total`, a
    /// `shard_failed` journal event each), and surfaces the first one as
    /// the typed error.  The panicked shards' accumulators are untouched:
    /// workers absorb their tallies only at run end, so a mid-run death
    /// never half-commits.
    fn quarantine_failures(&mut self, panicked: Vec<(usize, String)>) -> Result<(), MdrrError> {
        let mut first: Option<(usize, String)> = None;
        for (k, text) in panicked {
            if let Some(flag) = self.quarantined.get_mut(k) {
                *flag = true;
            }
            if let Some(obs) = self.obs.as_deref() {
                obs.shard_failures_total.inc();
                obs.set_shard_health(k, false);
                obs.record_event(EventKind::ShardFailed { shard: k as u64 });
            }
            if first.is_none() {
                first = Some((k, text));
            }
        }
        match first {
            None => Ok(()),
            Some((k, text)) => Err(MdrrError::shard_failed(k, text)),
        }
    }

    /// Ingests one already-encoded report into a specific shard (the
    /// network path: reports arrive pre-randomized from the clients and are
    /// routed to a shard by any load-balancing rule).
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] for a bad shard index
    /// or a report that does not match the protocol's channels.
    pub fn ingest_report(&mut self, shard: usize, report: &Report) -> Result<(), MdrrError> {
        let n_shards = self.shards.len();
        if self.is_quarantined(shard) {
            return Err(MdrrError::shard_failed(
                shard,
                "shard is quarantined; rehabilitate it before routing reports to it".to_string(),
            ));
        }
        self.shards
            .get_mut(shard)
            .ok_or_else(|| {
                MdrrError::config(format!(
                    "shard index {shard} out of range ({n_shards} shards)"
                ))
            })?
            .ingest(report)?;
        if let Some(obs) = self.obs.as_ref() {
            if let Some(shard_obs) = obs.shards.get(shard) {
                shard_obs.reports.inc();
            }
        }
        Ok(())
    }

    /// Ingests a whole columnar [`ReportBatch`] into a specific shard (the
    /// bulk network path: pre-encoded reports arriving in batches and
    /// routed to a shard by any load-balancing rule).  Returns the number
    /// of reports ingested.
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] for a bad shard index
    /// or a batch that does not match the protocol's channels.
    pub fn ingest_batch(&mut self, shard: usize, batch: &ReportBatch) -> Result<u64, MdrrError> {
        let n_shards = self.shards.len();
        if self.is_quarantined(shard) {
            return Err(MdrrError::shard_failed(
                shard,
                "shard is quarantined; rehabilitate it before routing batches to it".to_string(),
            ));
        }
        let worker = WorkerObs::for_shard(self.obs.as_deref(), shard);
        let start = worker.chunk_start();
        self.shards
            .get_mut(shard)
            .ok_or_else(|| {
                MdrrError::config(format!(
                    "shard index {shard} out of range ({n_shards} shards)"
                ))
            })?
            .ingest_batch(batch)?;
        let n = batch.n_reports() as u64;
        worker.chunk_done(start);
        worker.run_done(n);
        Ok(n)
    }

    /// Simulates `records.n_records()` clients from a zero-copy columnar
    /// view — the fastest bulk path: splits the view into one contiguous
    /// range per shard and runs one `std::thread::scope` worker per
    /// non-empty range.  Worker `k` encodes its range in
    /// [`ENCODE_BATCH`]-sized chunks through the protocol's batched
    /// encoder with its own deterministic RNG (derived from `base_seed`
    /// and `k`; the shard → RNG mapping is independent of how many shards
    /// end up with records) and bulk-counts each chunk into shard `k` —
    /// no locks, no cross-shard traffic, zero allocations per record.
    ///
    /// The result is fully deterministic for a given
    /// `(records, base_seed, n_shards)` triple and bit-identical to
    /// encoding and ingesting shard `k`'s records one at a time with the
    /// same RNG ([`ShardedCollector::ingest_records_per_record`]), which
    /// the stream proptests enforce.
    ///
    /// Returns the number of reports ingested.
    ///
    /// # Errors
    /// Returns the first worker error (e.g. a record that does not fit the
    /// protocol's schema).  Shards that already counted earlier chunks of
    /// their range keep those reports, so a failed call should be treated
    /// as poisoning the collector.  A worker that *panics* is contained:
    /// its shard is quarantined (the panic never half-commits — tallies
    /// absorb only at run end), the other shards' work survives, and the
    /// panic surfaces as [`MdrrError::ShardFailed`].
    pub fn ingest_view(
        &mut self,
        records: &RecordsView<'_>,
        base_seed: u64,
    ) -> Result<u64, MdrrError> {
        let n = records.n_records();
        if n == 0 {
            return Ok(0);
        }
        let chunk_size = n.div_ceil(self.healthy_count()?);
        let channel_sizes = self.protocol.channel_sizes();
        let channel_sizes = &channel_sizes;
        let protocol: &dyn Protocol = &*self.protocol;
        let obs = self.obs.as_deref();
        let quarantined = &self.quarantined;
        let (results, panicked) = std::thread::scope(|scope| {
            let mut ordinal = 0usize;
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .enumerate()
                .filter_map(|(k, shard)| {
                    if quarantined.get(k).copied().unwrap_or(false) {
                        return None;
                    }
                    let j = ordinal;
                    ordinal += 1;
                    let start = j * chunk_size;
                    if start >= n {
                        return None;
                    }
                    Some((k, shard, start..((j + 1) * chunk_size).min(n)))
                })
                .map(|(k, shard, range)| {
                    let handle = scope.spawn(move || {
                        let worker = WorkerObs::for_shard(obs, k);
                        let range = records.slice(range)?;
                        let mut rng = shard_rng(base_seed, k);
                        let mut tallies: Vec<Vec<u64>> =
                            channel_sizes.iter().map(|&s| vec![0u64; s]).collect();
                        let mut start = 0;
                        while start < range.n_records() {
                            let end = (start + ENCODE_BATCH).min(range.n_records());
                            let chunk = range.slice(start..end)?;
                            let t0 = worker.chunk_start();
                            protocol.encode_tally(&chunk, &mut rng, &mut tallies)?;
                            worker.chunk_done(t0);
                            start = end;
                        }
                        shard.absorb_counts(&tallies, range.n_records() as u64)?;
                        worker.run_done(range.n_records() as u64);
                        Ok(())
                    });
                    (k, handle)
                })
                .collect();
            join_workers(handles)
        });
        self.quarantine_failures(panicked)?;
        for result in results {
            result?;
        }
        self.update_imbalance();
        Ok(n as u64)
    }

    /// Simulates `records.len()` clients from row-major records: the same
    /// sharding, chunking and RNG schedule as
    /// [`ShardedCollector::ingest_view`], with each worker transposing its
    /// chunks into a reused columnar buffer before the batched encode — so
    /// bulk callers that only have rows still get the zero-allocation
    /// encode/count loops (the transpose itself reuses one buffer per
    /// worker).
    ///
    /// Returns the number of reports ingested.
    ///
    /// # Errors
    /// Same contract as [`ShardedCollector::ingest_view`].
    pub fn ingest_records(
        &mut self,
        records: &[Vec<u32>],
        base_seed: u64,
    ) -> Result<u64, MdrrError> {
        if records.is_empty() {
            return Ok(0);
        }
        let chunk_size = records.len().div_ceil(self.healthy_count()?);
        let arity = self.protocol.schema().len();
        let channel_sizes = self.protocol.channel_sizes();
        let channel_sizes = &channel_sizes;
        let protocol: &dyn Protocol = &*self.protocol;
        let obs = self.obs.as_deref();
        let quarantined = &self.quarantined;
        let (results, panicked) = std::thread::scope(|scope| {
            let mut ordinal = 0usize;
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .enumerate()
                .filter_map(|(k, shard)| {
                    if quarantined.get(k).copied().unwrap_or(false) {
                        return None;
                    }
                    let j = ordinal;
                    ordinal += 1;
                    let start = j * chunk_size;
                    let chunk = records.get(start..((j + 1) * chunk_size).min(records.len()))?;
                    (!chunk.is_empty()).then_some((k, shard, chunk))
                })
                .map(|(k, shard, chunk)| {
                    let handle = scope.spawn(move || {
                        let worker = WorkerObs::for_shard(obs, k);
                        let mut rng = shard_rng(base_seed, k);
                        let mut buffer = RecordsBuffer::new(arity)?;
                        let mut tallies: Vec<Vec<u64>> =
                            channel_sizes.iter().map(|&s| vec![0u64; s]).collect();
                        for sub in chunk.chunks(ENCODE_BATCH) {
                            buffer.clear();
                            for record in sub {
                                buffer.push_record(record)?;
                            }
                            let t0 = worker.chunk_start();
                            protocol.encode_tally(&buffer.view(), &mut rng, &mut tallies)?;
                            worker.chunk_done(t0);
                        }
                        shard.absorb_counts(&tallies, chunk.len() as u64)?;
                        worker.run_done(chunk.len() as u64);
                        Ok(())
                    });
                    (k, handle)
                })
                .collect();
            join_workers(handles)
        });
        self.quarantine_failures(panicked)?;
        for result in results {
            result?;
        }
        self.update_imbalance();
        Ok(records.len() as u64)
    }

    /// The scalar reference sibling of [`ShardedCollector::ingest_records`]:
    /// identical sharding and RNG schedule, but every record is encoded
    /// into its own [`Report`] and ingested one at a time — two heap
    /// allocations, a dyn-dispatched encode and a full validation per
    /// record.  Kept public as the ground truth the batch path is
    /// proptest-pinned against, and as the baseline of the
    /// `bench_batch` criterion group.
    ///
    /// Returns the number of reports ingested.
    ///
    /// # Errors
    /// Same contract as [`ShardedCollector::ingest_view`].
    pub fn ingest_records_per_record(
        &mut self,
        records: &[Vec<u32>],
        base_seed: u64,
    ) -> Result<u64, MdrrError> {
        if records.is_empty() {
            return Ok(0);
        }
        let chunk_size = records.len().div_ceil(self.healthy_count()?);
        let protocol: &dyn Protocol = &*self.protocol;
        let obs = self.obs.as_deref();
        let quarantined = &self.quarantined;
        let (results, panicked) = std::thread::scope(|scope| {
            let mut ordinal = 0usize;
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .enumerate()
                .filter_map(|(k, shard)| {
                    if quarantined.get(k).copied().unwrap_or(false) {
                        return None;
                    }
                    let j = ordinal;
                    ordinal += 1;
                    let start = j * chunk_size;
                    let chunk = records.get(start..((j + 1) * chunk_size).min(records.len()))?;
                    (!chunk.is_empty()).then_some((k, shard, chunk))
                })
                .map(|(k, shard, chunk)| {
                    let handle = scope.spawn(move || {
                        // The scalar path is timed per worker run (one
                        // "chunk"), not per report — per-report clock
                        // reads would distort the baseline it exists to
                        // provide.
                        let worker = WorkerObs::for_shard(obs, k);
                        let t0 = worker.chunk_start();
                        let mut rng = shard_rng(base_seed, k);
                        for record in chunk {
                            let report = Report::encode(protocol, record, &mut rng)?;
                            shard.ingest(&report)?;
                        }
                        worker.chunk_done(t0);
                        worker.run_done(chunk.len() as u64);
                        Ok(())
                    });
                    (k, handle)
                })
                .collect();
            join_workers(handles)
        });
        self.quarantine_failures(panicked)?;
        for result in results {
            result?;
        }
        self.update_imbalance();
        Ok(records.len() as u64)
    }

    /// Simulates generated clients without materializing their records:
    /// worker `k` draws `clients_per_shard[k]` records from `generator`
    /// with its own deterministic RNG into a reused columnar buffer,
    /// batch-encodes and bulk-counts them in [`ENCODE_BATCH`]-sized
    /// chunks.  This is the million-client path of the `stream_sim`
    /// driver.  Workers are only spawned for shards with a non-zero client
    /// count; the shard → RNG mapping is unaffected.
    ///
    /// Within a chunk the generator draws run before the encoding draws
    /// (generate the chunk, then encode it), both on the shard's RNG.
    ///
    /// Returns the number of reports ingested.
    ///
    /// # Errors
    /// Same contract as [`ShardedCollector::ingest_view`]; additionally
    /// rejects a `clients_per_shard` whose length differs from the shard
    /// count.
    pub fn ingest_generated<G>(
        &mut self,
        clients_per_shard: &[usize],
        base_seed: u64,
        generator: G,
    ) -> Result<u64, MdrrError>
    where
        G: Fn(&mut StdRng) -> Vec<u32> + Sync,
    {
        if clients_per_shard.len() != self.shards.len() {
            return Err(MdrrError::config(format!(
                "{} per-shard client counts for {} shards",
                clients_per_shard.len(),
                self.shards.len()
            )));
        }
        if let Some(k) = clients_per_shard
            .iter()
            .enumerate()
            .find_map(|(k, &clients)| (clients > 0 && self.is_quarantined(k)).then_some(k))
        {
            return Err(MdrrError::shard_failed(
                k,
                "shard is quarantined; rehabilitate it before assigning clients to it".to_string(),
            ));
        }
        let arity = self.protocol.schema().len();
        let channel_sizes = self.protocol.channel_sizes();
        let channel_sizes = &channel_sizes;
        let protocol: &dyn Protocol = &*self.protocol;
        let generator = &generator;
        let obs = self.obs.as_deref();
        let (results, panicked) = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(clients_per_shard.iter())
                .enumerate()
                .filter(|(_, (_, &clients))| clients > 0)
                .map(|(k, (shard, &clients))| {
                    let handle = scope.spawn(move || {
                        let worker = WorkerObs::for_shard(obs, k);
                        let mut rng = shard_rng(base_seed, k);
                        let mut buffer = RecordsBuffer::new(arity)?;
                        let mut tallies: Vec<Vec<u64>> =
                            channel_sizes.iter().map(|&s| vec![0u64; s]).collect();
                        let mut remaining = clients;
                        while remaining > 0 {
                            let take = remaining.min(ENCODE_BATCH);
                            buffer.clear();
                            for _ in 0..take {
                                let record = generator(&mut rng);
                                buffer.push_record(&record)?;
                            }
                            let t0 = worker.chunk_start();
                            protocol.encode_tally(&buffer.view(), &mut rng, &mut tallies)?;
                            worker.chunk_done(t0);
                            remaining -= take;
                        }
                        shard.absorb_counts(&tallies, clients as u64)?;
                        worker.run_done(clients as u64);
                        Ok(())
                    });
                    (k, handle)
                })
                .collect();
            join_workers(handles)
        });
        self.quarantine_failures(panicked)?;
        for result in results {
            result?;
        }
        self.update_imbalance();
        Ok(clients_per_shard.iter().map(|&c| c as u64).sum())
    }

    /// The k-way merge of all shards (exact: counts are sums).
    ///
    /// # Errors
    /// Propagates accumulator errors (cannot happen for a well-formed
    /// collector, whose shards share one channel layout).
    pub fn merged(&self) -> Result<Accumulator, MdrrError> {
        let mut merged = Accumulator::new(&self.protocol.channel_sizes())?;
        for shard in &self.shards {
            merged.merge(shard)?;
        }
        Ok(merged)
    }

    /// Takes a point-in-time estimate: merges all shards and runs the
    /// protocol's closed-form estimation on the pooled counts.  The
    /// returned release answers every query the batch release answers, and
    /// is numerically identical to the batch estimate over the same
    /// randomized codes.
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] when no report has
    /// been ingested yet.
    pub fn snapshot(&self) -> Result<StreamSnapshot, MdrrError> {
        let timing = self
            .obs
            .as_deref()
            .filter(|o| o.clock().enabled())
            .map(|o| (o, o.clock().now_nanos()));
        let merged = self.merged()?;
        if merged.is_empty() {
            return Err(MdrrError::config(
                "cannot snapshot a collector before any report has been ingested",
            ));
        }
        let release = self
            .protocol
            .release_from_counts(merged.counts(), merged.n_reports() as usize)?;
        if let Some((obs, start)) = timing {
            obs.snapshot_nanos
                .record(obs.clock().now_nanos().saturating_sub(start));
        }
        if let Some(obs) = self.obs.as_deref() {
            obs.snapshots_total.inc();
            obs.update_imbalance(&self.shards);
            obs.record_event(EventKind::ShardSnapshot {
                shards: self.shards.len() as u64,
                total_reports: merged.n_reports(),
            });
        }
        Ok(release)
    }

    /// Refreshes the shard-imbalance gauge, when instrumented.
    fn update_imbalance(&self) {
        if let Some(obs) = self.obs.as_deref() {
            obs.update_imbalance(&self.shards);
        }
    }
}

/// Worker panics collected at join time: `(shard ordinal, panic text)`.
type PanickedWorkers = Vec<(usize, String)>;

/// Joins a set of `(shard, handle)` worker pairs, separating ordinary
/// results from panics: a panicked worker becomes a `(shard, panic text)`
/// entry instead of re-raising, so the caller can quarantine the shard
/// and keep the healthy workers' results.
fn join_workers<'scope>(
    handles: Vec<(
        usize,
        std::thread::ScopedJoinHandle<'scope, Result<(), MdrrError>>,
    )>,
) -> (Vec<Result<(), MdrrError>>, PanickedWorkers) {
    let mut results = Vec::with_capacity(handles.len());
    let mut panicked = Vec::new();
    for (k, handle) in handles {
        match handle.join() {
            Ok(result) => results.push(result),
            Err(payload) => panicked.push((k, panic_text(payload))),
        }
    }
    (results, panicked)
}

/// The human-readable text of a worker panic payload (panics raised with
/// `panic!("…")` carry a `String` or `&str`; anything else is summarized).
fn panic_text(payload: Box<dyn Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(text) => *text,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(text) => (*text).to_string(),
            Err(_) => "worker panicked with a non-string payload".to_string(),
        },
    }
}

/// The deterministic RNG of shard `k` for a given base seed.
fn shard_rng(base_seed: u64, k: usize) -> StdRng {
    StdRng::seed_from_u64(base_seed.wrapping_add((k as u64).wrapping_mul(SHARD_SEED_STRIDE)))
}

/// The base seed under which a collector's *local* shard `k` draws the
/// exact RNG stream that *global* shard `shard_offset + k` would draw
/// under `base_seed` — the cross-process sharding contract.
///
/// A fleet of processes can split one logical collector of `K = N × S`
/// shards into `N` collectors of `S` shards each: process `p` ingests its
/// contiguous record range under `offset_base_seed(base_seed, p * S)`,
/// and the persisted per-shard counts merge into exactly what a single
/// `K`-shard collector under `base_seed` would have produced — provided
/// the record partition also lines up (every process except possibly the
/// last must hold `S × ceil(n_total / K)` records, i.e. whole global
/// chunks).  `examples/distributed_merge.rs` demonstrates the full
/// construction end to end.
///
/// ```
/// use mdrr_stream::offset_base_seed;
/// // Offset 0 is the identity: process 0 shares the global base seed.
/// assert_eq!(offset_base_seed(42, 0), 42);
/// // Offsets compose: two shards forward twice is four shards forward.
/// assert_eq!(
///     offset_base_seed(offset_base_seed(42, 2), 2),
///     offset_base_seed(42, 4)
/// );
/// ```
pub fn offset_base_seed(base_seed: u64, shard_offset: usize) -> u64 {
    base_seed.wrapping_add((shard_offset as u64).wrapping_mul(SHARD_SEED_STRIDE))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdrr_data::{Attribute, Schema};
    use mdrr_protocols::{FrequencyEstimator, ProtocolSpec, RandomizationLevel};
    use rand::RngCore;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::indexed("A", 3).unwrap(),
            Attribute::indexed("B", 2).unwrap(),
        ])
        .unwrap()
    }

    fn protocol() -> Arc<dyn Protocol> {
        ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7))
            .build_arc(&schema())
            .unwrap()
    }

    fn records(n: usize) -> Vec<Vec<u32>> {
        (0..n)
            .map(|i| vec![(i % 3) as u32, (i % 2) as u32])
            .collect()
    }

    #[test]
    fn construction_validates_shard_count() {
        assert!(ShardedCollector::new(protocol(), 0).is_err());
        let c = ShardedCollector::new(protocol(), 4).unwrap();
        assert_eq!(c.n_shards(), 4);
        assert_eq!(c.total_reports(), 0);
        assert!(c.snapshot().is_err());
    }

    #[test]
    fn for_protocol_wraps_concrete_protocols() {
        let concrete =
            mdrr_protocols::RRIndependent::new(schema(), &RandomizationLevel::KeepProbability(0.7))
                .unwrap();
        let c = ShardedCollector::for_protocol(concrete, 2).unwrap();
        assert_eq!(c.protocol().name(), "RR-Independent");
        assert_eq!(c.n_shards(), 2);
    }

    #[test]
    fn parallel_ingestion_is_deterministic_and_covers_every_record() {
        let mut a = ShardedCollector::new(protocol(), 4).unwrap();
        let mut b = ShardedCollector::new(protocol(), 4).unwrap();
        let rs = records(1_001);
        assert_eq!(a.ingest_records(&rs, 7).unwrap(), 1_001);
        assert_eq!(b.ingest_records(&rs, 7).unwrap(), 1_001);
        assert_eq!(a.shards(), b.shards());
        assert_eq!(a.total_reports(), 1_001);
        // Every shard except possibly the last is full.
        assert!(a.shards()[..3].iter().all(|s| s.n_reports() == 251));
        assert_eq!(a.shards()[3].n_reports(), 248);

        // A different seed produces different randomized counts.
        let mut c = ShardedCollector::new(protocol(), 4).unwrap();
        c.ingest_records(&rs, 8).unwrap();
        assert_ne!(a.shards(), c.shards());
    }

    #[test]
    fn ingestion_handles_degenerate_shapes() {
        let mut c = ShardedCollector::new(protocol(), 8).unwrap();
        // Fewer records than shards: trailing shards stay empty.
        assert_eq!(c.ingest_records(&records(3), 1).unwrap(), 3);
        assert_eq!(c.total_reports(), 3);
        // No records at all is a no-op.
        assert_eq!(c.ingest_records(&[], 1).unwrap(), 0);
        // Invalid records surface as errors.
        assert!(c.ingest_records(&[vec![9, 9]], 1).is_err());
    }

    #[test]
    fn generated_ingestion_validates_and_counts() {
        let mut c = ShardedCollector::new(protocol(), 3).unwrap();
        assert!(c.ingest_generated(&[10, 10], 1, |_| vec![0, 0]).is_err());
        let n = c
            .ingest_generated(&[100, 50, 0], 1, |rng| {
                vec![rng.next_u64() as u32 % 3, rng.next_u64() as u32 % 2]
            })
            .unwrap();
        assert_eq!(n, 150);
        assert_eq!(c.total_reports(), 150);
        assert_eq!(c.shards()[2].n_reports(), 0);
    }

    #[test]
    fn batch_ingestion_is_bit_identical_to_the_per_record_path() {
        // Same records, same base seed: the columnar batch pipeline and
        // the scalar reference pipeline must produce byte-identical shard
        // accumulators, for shard counts around and beyond the chunking
        // boundaries.
        let rs = records(3_007);
        for n_shards in [1usize, 3, 8] {
            let mut batched = ShardedCollector::new(protocol(), n_shards).unwrap();
            let mut scalar = ShardedCollector::new(protocol(), n_shards).unwrap();
            let mut columnar = ShardedCollector::new(protocol(), n_shards).unwrap();
            assert_eq!(batched.ingest_records(&rs, 77).unwrap(), 3_007);
            assert_eq!(scalar.ingest_records_per_record(&rs, 77).unwrap(), 3_007);
            let ds = mdrr_data::Dataset::from_records(schema(), &rs).unwrap();
            assert_eq!(columnar.ingest_view(&ds.view(), 77).unwrap(), 3_007);
            assert_eq!(batched.shards(), scalar.shards(), "{n_shards} shards");
            assert_eq!(batched.shards(), columnar.shards(), "{n_shards} shards");
        }
    }

    #[test]
    fn routed_batches_land_in_their_shard() {
        let mut c = ShardedCollector::new(protocol(), 2).unwrap();
        let mut batch = crate::batch::ReportBatch::new(2).unwrap();
        batch.push(&Report::new(vec![1, 0])).unwrap();
        batch.push(&Report::new(vec![2, 1])).unwrap();
        assert_eq!(c.ingest_batch(1, &batch).unwrap(), 2);
        assert!(c.ingest_batch(5, &batch).is_err());
        assert_eq!(c.shards()[0].n_reports(), 0);
        assert_eq!(c.shards()[1].n_reports(), 2);
    }

    #[test]
    fn view_ingestion_handles_degenerate_shapes() {
        let mut c = ShardedCollector::new(protocol(), 8).unwrap();
        // Fewer records than shards: trailing shards stay empty, and no
        // worker is spawned for them.
        let ds = mdrr_data::Dataset::from_records(schema(), &records(3)).unwrap();
        assert_eq!(c.ingest_view(&ds.view(), 1).unwrap(), 3);
        assert_eq!(c.total_reports(), 3);
        assert!(c.shards()[3..].iter().all(Accumulator::is_empty));
        // An empty view is a no-op.
        let empty = mdrr_data::Dataset::empty(schema());
        assert_eq!(c.ingest_view(&empty.view(), 1).unwrap(), 0);
        assert_eq!(c.total_reports(), 3);
    }

    #[test]
    fn snapshot_matches_manual_merge() {
        let mut c = ShardedCollector::new(protocol(), 4).unwrap();
        c.ingest_records(&records(2_000), 3).unwrap();
        let merged = c.merged().unwrap();
        assert_eq!(merged.n_reports(), 2_000);
        let snapshot = c.snapshot().unwrap();
        assert_eq!(snapshot.record_count(), 2_000);
        let direct = c
            .protocol()
            .release_from_counts(merged.counts(), 2_000)
            .unwrap();
        // The snapshot is the protocol's regular release over the merged
        // counts: identical marginals and identical query answers.
        for j in 0..2 {
            assert_eq!(snapshot.marginal(j).unwrap(), direct.marginal(j).unwrap());
        }
        let f = snapshot.frequency(&[(0, 1)]).unwrap();
        assert_eq!(f, direct.frequency(&[(0, 1)]).unwrap());
        assert!((f - 1.0 / 3.0).abs() < 0.1);
    }

    #[test]
    fn routed_reports_land_in_their_shard() {
        let mut c = ShardedCollector::new(protocol(), 2).unwrap();
        let report = Report::new(vec![1, 0]);
        c.ingest_report(1, &report).unwrap();
        assert!(c.ingest_report(5, &report).is_err());
        assert_eq!(c.shards()[0].n_reports(), 0);
        assert_eq!(c.shards()[1].n_reports(), 1);
    }
}
