//! # mdrr-stream
//!
//! Sharded streaming ingestion and incremental estimation for the MDRR
//! protocols — the paper's actual deployment shape at million-client
//! scale:
//!
//! * [`report`] — each client locally randomizes one record into a compact
//!   [`Report`] (one code per *channel*: per attribute for RR-Independent,
//!   one joint code for RR-Joint, per cluster for RR-Clusters), via the
//!   object-safe [`mdrr_protocols::Protocol`] encoder;
//! * [`batch`] — bulk work flows through columnar [`ReportBatch`]es:
//!   whole record chunks are encoded by the protocols' batched encoders
//!   and counted in tight per-channel loops, with zero allocations per
//!   report and output bit-identical to the per-report path under the
//!   same seed (proptest-pinned);
//! * [`accumulator`] — the collector keeps only per-channel count vectors
//!   ([`Accumulator`]): the sufficient statistics of Equation (2), exact
//!   and mergeable in any order;
//! * [`collector`] — a [`ShardedCollector`] holds an `Arc<dyn Protocol>`
//!   (any current or future protocol, unchanged), fans ingestion out over
//!   `std::thread::scope` workers (one per shard, each with its own
//!   deterministic RNG, no locks) and can be snapshotted mid-stream into
//!   the protocol's regular release (a [`StreamSnapshot`], i.e.
//!   `Box<dyn Release>`), numerically identical to the batch estimate over
//!   the same randomized codes;
//! * [`checkpoint`] — collectors persist to and restore from durable
//!   `mdrr-store` checkpoint directories
//!   ([`ShardedCollector::checkpoint`] / [`ShardedCollector::restore`]):
//!   one self-describing, checksummed snapshot file per shard plus an
//!   atomically committed manifest, so a crash loses nothing and shard
//!   files from independent machines pool exactly via
//!   [`mdrr_store::merge_snapshot_files`];
//! * [`wire`] / [`client`] — the collector network boundary: a
//!   length-framed, CRC-checksummed, versioned wire protocol (the
//!   `docs/WIRE.md` contract, decoded with the same
//!   typed-error-never-panic discipline as the snapshot format) and the
//!   [`WireClient`] SDK that dials an `mdrr-serve` daemon with retrying
//!   backoff and pipelines batches under a backpressure window;
//! * [`instrument`] — opt-in observability: attaching a [`StreamObs`]
//!   (per-shard report/batch counters, ingest latency histograms, an
//!   imbalance gauge and a bounded event journal, all timed by an
//!   injected `mdrr_obs` clock) makes the collector record what it does
//!   without changing what it does — with the default `None` the
//!   ingestion loops are byte-identical to an uninstrumented build.
//!
//! ## Example
//!
//! Stream 10 000 simulated clients through 4 shards and query a mid-stream
//! snapshot — the protocol is selected by a serde-able spec, so swapping
//! mechanisms is a configuration change, not a code change:
//!
//! ```
//! use mdrr_data::{Attribute, Schema};
//! use mdrr_protocols::{FrequencyEstimator, ProtocolSpec, RandomizationLevel};
//! use mdrr_stream::ShardedCollector;
//!
//! let schema = Schema::new(vec![
//!     Attribute::indexed("A", 3)?,
//!     Attribute::indexed("B", 2)?,
//! ])?;
//! let protocol = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7))
//!     .build_arc(&schema)?; // Arc<dyn Protocol>
//! let mut collector = ShardedCollector::new(protocol, 4)?;
//!
//! // Each simulated client randomizes her record locally; the collector
//! // only ever accumulates per-channel counts.
//! let records: Vec<Vec<u32>> = (0..10_000)
//!     .map(|i| vec![(i % 3) as u32, (i % 2) as u32])
//!     .collect();
//! collector.ingest_records(&records, 42)?;
//!
//! let snapshot = collector.snapshot()?; // Box<dyn Release>
//! assert_eq!(snapshot.record_count(), 10_000);
//! let marginal = snapshot.frequency(&[(0, 0)])?;
//! assert!((marginal - 1.0 / 3.0).abs() < 0.05);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod accumulator;
pub mod batch;
pub mod checkpoint;
pub mod client;
pub mod collector;
pub mod error;
pub mod instrument;
pub mod report;
pub mod wire;

pub use accumulator::Accumulator;
pub use batch::ReportBatch;
pub use checkpoint::{CheckpointManifest, RestoredCheckpoint, MANIFEST_FILE};
pub use client::{ClientConfig, WireClient};
pub use collector::{offset_base_seed, ShardedCollector, StreamSnapshot, ENCODE_BATCH};
pub use error::{MdrrError, StreamError};
pub use instrument::{StreamObs, DEFAULT_JOURNAL_CAPACITY};
pub use report::Report;
pub use wire::{FrameType, WireError, MAX_WIRE_PAYLOAD, WIRE_MAGIC, WIRE_VERSION};
