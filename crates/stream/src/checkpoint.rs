//! Durable checkpoints of a [`ShardedCollector`].
//!
//! A checkpoint is a directory: one *generation-named* `mdrr-store`
//! snapshot file per shard (`shard-00000.g00000003.mdrrsnap` is shard 0
//! of checkpoint generation 3) plus a `MANIFEST.json` written *last* and
//! atomically — the manifest is the commit point.  Each checkpoint writes
//! a complete new generation of shard files *beside* the committed one,
//! commits the manifest naming the new files, and only then deletes the
//! old generation — so a crash at any single file operation leaves either
//! the old complete checkpoint or the new complete one, never a manifest
//! pointing at half-replaced shard files (the crash-consistency torture
//! suite sweeps every crash point to prove it).  Each shard file is
//! self-describing (it embeds the schema and the declarative
//! [`ProtocolSpec`]), so [`ShardedCollector::restore`] rebuilds the
//! protocol and the accumulators from the directory alone, and shard
//! files from different machines can be pooled with
//! [`mdrr_store::merge_snapshot_files`] with no process alive that ever
//! held the original collector.
//!
//! All file operations flow through an [`mdrr_store::Storage`] handle:
//! [`ShardedCollector::checkpoint`] runs on the production OS backend,
//! [`ShardedCollector::checkpoint_with`] accepts an injected storage
//! (fault backends, retry clocks) for torture tests and the chaos
//! harness.  If a torn directory ever does arise — out-of-band damage, a
//! lying disk — [`mdrr_store::salvage_checkpoint`] rebuilds a manifest
//! from the surviving shard files.

use crate::accumulator::Accumulator;
use crate::collector::ShardedCollector;
use crate::error::MdrrError;
use crate::instrument::StreamObs;
use mdrr_obs::{Clock, EventKind};
use mdrr_protocols::{Protocol, ProtocolSpec};
use mdrr_store::{
    next_generation, parse_shard_file_name, shard_file_name, Snapshot, SnapshotReader, Storage,
    MANIFEST_VERSION,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

pub use mdrr_store::{CheckpointManifest, MANIFEST_FILE};

/// Everything [`ShardedCollector::restore`] recovers from a checkpoint
/// directory.
#[derive(Debug)]
pub struct RestoredCheckpoint {
    /// The collector, with every shard accumulator exactly as persisted.
    pub collector: ShardedCollector,
    /// The declarative spec the shards were collected under (pass it back
    /// to [`ShardedCollector::checkpoint`] for the next checkpoint).
    pub spec: ProtocolSpec,
    /// The opaque application resume state stored in the manifest.
    pub app_state: Option<String>,
}

impl ShardedCollector {
    /// Persists every shard's accumulator into `dir` as `mdrr-store`
    /// snapshot files and commits the set with an atomically written
    /// [`CheckpointManifest`].  `spec` must be the declarative spec of
    /// the collector's protocol (it is embedded in every shard file so
    /// the checkpoint is self-describing); `app_state` is an opaque
    /// string stored in the manifest for the caller's own resume logic.
    ///
    /// Checkpointing is crash-safe at three levels: each file write is
    /// atomic (temp + rename), the new generation of shard files is
    /// written *beside* the old one, and the manifest is written last —
    /// so an interrupted checkpoint leaves the previous manifest pointing
    /// at the previous, still-intact shard files.  The old generation is
    /// deleted (best-effort) only after the new manifest has committed,
    /// and stale `*.tmp` debris from earlier faulted attempts is swept on
    /// entry.
    ///
    /// ```
    /// use mdrr_data::{Attribute, Schema};
    /// use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
    /// use mdrr_stream::ShardedCollector;
    ///
    /// let dir = std::env::temp_dir().join(format!("mdrr-ckpt-doc-{}", std::process::id()));
    /// let schema = Schema::new(vec![Attribute::indexed("A", 3)?])?;
    /// let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7));
    /// let mut collector = ShardedCollector::new(spec.build_arc(&schema)?, 2)?;
    /// collector.ingest_records(&[vec![0], vec![1], vec![2]], 42)?;
    ///
    /// let manifest = collector.checkpoint(&spec, &dir, Some("round 1"))?;
    /// assert_eq!(manifest.n_shards, 2);
    /// assert_eq!(manifest.total_reports, 3);
    ///
    /// let restored = ShardedCollector::restore(&dir)?;
    /// assert_eq!(restored.collector.shards(), collector.shards());
    /// assert_eq!(restored.app_state.as_deref(), Some("round 1"));
    /// # std::fs::remove_dir_all(&dir).ok();
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] if `spec` does not
    /// describe this collector's protocol (name or channel topology
    /// differ), and wrapped [`mdrr_store::StoreError`]s for I/O or
    /// serialization failures.
    pub fn checkpoint(
        &self,
        spec: &ProtocolSpec,
        dir: &Path,
        app_state: Option<&str>,
    ) -> Result<CheckpointManifest, MdrrError> {
        self.checkpoint_with(spec, dir, app_state, &Storage::os())
    }

    /// [`ShardedCollector::checkpoint`] through an injected
    /// [`Storage`] handle — the seam the crash-consistency torture suite
    /// and the `stream_sim --chaos` harness drive fault plans through
    /// (production callers use [`ShardedCollector::checkpoint`], which
    /// runs on [`Storage::os`]).  Identical on-disk layout and commit
    /// protocol; every file operation (tmp sweep, shard writes, manifest
    /// commit, old-generation cleanup) executes against `storage`'s
    /// backend under its retry policy and clock.
    ///
    /// # Errors
    /// Same contract as [`ShardedCollector::checkpoint`].
    pub fn checkpoint_with(
        &self,
        spec: &ProtocolSpec,
        dir: &Path,
        app_state: Option<&str>,
        storage: &Storage,
    ) -> Result<CheckpointManifest, MdrrError> {
        let schema = self.protocol().schema().clone();
        // The spec is about to be persisted as the authoritative
        // description of these counts: verify it actually rebuilds this
        // protocol before writing anything.
        let rebuilt = spec.build(&schema)?;
        if rebuilt.name() != self.protocol().name()
            || rebuilt.channel_sizes() != self.protocol().channel_sizes()
        {
            return Err(MdrrError::config(format!(
                "checkpoint spec describes {} with channels {:?}, but the collector runs {} \
                 with channels {:?}",
                rebuilt.name(),
                rebuilt.channel_sizes(),
                self.protocol().name(),
                self.protocol().channel_sizes()
            )));
        }
        let obs = self.instrumentation().map(Arc::as_ref);
        let start = obs
            .filter(|o| o.clock().enabled())
            .map(|o| o.clock().now_nanos());
        if let Some(o) = obs {
            o.record_event(EventKind::CheckpointBegin {
                shards: self.n_shards() as u64,
            });
        }
        storage.create_dir_all(dir)?;
        storage.sweep_tmp(dir);
        // The committed files before this checkpoint: their highest
        // generation decides ours, and after our manifest commits they
        // are the old generation to clean up.
        let existing = storage.list_dir(dir)?;
        let generation = next_generation(existing.iter().cloned());
        let mut shard_files = Vec::with_capacity(self.n_shards());
        let mut bytes_written = 0u64;
        for (k, shard) in self.shards().iter().enumerate() {
            let name = shard_file_name(k, generation);
            let snapshot = Snapshot::new(
                schema.clone(),
                spec.clone(),
                shard.counts().to_vec(),
                shard.n_reports(),
            )?;
            let path = dir.join(&name);
            let written = match obs {
                Some(o) => storage.write_snapshot_observed(&path, &snapshot, o.store())?,
                None => storage.write_snapshot(&path, &snapshot)?,
            };
            bytes_written = bytes_written.saturating_add(written);
            shard_files.push(name);
        }
        let manifest = CheckpointManifest {
            manifest_version: MANIFEST_VERSION,
            n_shards: self.n_shards(),
            total_reports: self.total_reports(),
            shard_files,
            app_state: app_state.map(str::to_string),
        };
        let json = manifest.to_json().map_err(MdrrError::from)?;
        storage.atomic_write(&dir.join(MANIFEST_FILE), json.as_bytes())?;
        // The manifest has committed: retire the superseded shard files.
        // Best-effort — a failed delete leaves harmless extra files that
        // restore never reads and the next checkpoint retries.
        for name in &existing {
            if parse_shard_file_name(name).is_some_and(|(_, g)| g < generation) {
                let _ = storage.remove_file(&dir.join(name));
            }
        }
        if let Some(o) = obs {
            bytes_written = bytes_written.saturating_add(json.len() as u64);
            let nanos = start
                .map(|s| o.clock().now_nanos().saturating_sub(s))
                .unwrap_or(0);
            o.checkpoints_total.inc();
            o.checkpoint_bytes.add(bytes_written);
            if start.is_some() {
                o.checkpoint_nanos.record(nanos);
            }
            o.record_event(EventKind::CheckpointCommit {
                shards: manifest.n_shards as u64,
                total_reports: manifest.total_reports,
                bytes: bytes_written,
                nanos,
            });
        }
        Ok(manifest)
    }

    /// Rebuilds a collector from a checkpoint directory written by
    /// [`ShardedCollector::checkpoint`]: reads the manifest, reads and
    /// validates every shard snapshot (checksums, spec compatibility
    /// across shards, counts-vs-spec channel topology), rebuilds the
    /// protocol from the embedded spec and schema, and restores every
    /// shard accumulator exactly.
    ///
    /// ```
    /// use mdrr_data::{Attribute, Schema};
    /// use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
    /// use mdrr_stream::ShardedCollector;
    ///
    /// let dir = std::env::temp_dir().join(format!("mdrr-restore-doc-{}", std::process::id()));
    /// let schema = Schema::new(vec![Attribute::indexed("A", 2)?])?;
    /// let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.6));
    /// let mut collector = ShardedCollector::new(spec.build_arc(&schema)?, 3)?;
    /// collector.ingest_records(&[vec![0], vec![1], vec![0], vec![1]], 9)?;
    /// collector.checkpoint(&spec, &dir, None)?;
    ///
    /// // A fresh process — no protocol object, no schema — restores it all.
    /// let restored = ShardedCollector::restore(&dir)?;
    /// assert_eq!(restored.collector.total_reports(), 4);
    /// assert_eq!(restored.collector.protocol().name(), "RR-Independent");
    /// assert_eq!(restored.spec, spec);
    /// # std::fs::remove_dir_all(&dir).ok();
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] for a missing or
    /// malformed manifest, shard files that disagree on spec or schema, a
    /// torn checkpoint (shard totals no longer matching the manifest),
    /// and wrapped [`mdrr_store::StoreError`]s for unreadable or corrupt
    /// shard files.
    pub fn restore(dir: &Path) -> Result<RestoredCheckpoint, MdrrError> {
        let manifest = Self::read_manifest(dir)?;
        Self::restore_from_manifest(dir, manifest, None)
    }

    /// [`ShardedCollector::restore`], instrumented: builds a
    /// [`StreamObs`] sized for the checkpoint's shard count on `clock`,
    /// reads every shard file through the observed store path (so read
    /// durations, byte counts and CRC time are recorded), attaches the
    /// instrumentation to the restored collector, and journals a
    /// `Restore` event with the total restore wall time.
    ///
    /// ```
    /// use mdrr_data::{Attribute, Schema};
    /// use mdrr_obs::MonotonicClock;
    /// use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
    /// use mdrr_stream::ShardedCollector;
    /// use std::sync::Arc;
    ///
    /// let dir = std::env::temp_dir().join(format!("mdrr-restobs-doc-{}", std::process::id()));
    /// let schema = Schema::new(vec![Attribute::indexed("A", 2)?])?;
    /// let spec = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.6));
    /// let mut collector = ShardedCollector::new(spec.build_arc(&schema)?, 2)?;
    /// collector.ingest_records(&[vec![0], vec![1]], 9)?;
    /// collector.checkpoint(&spec, &dir, None)?;
    ///
    /// let (restored, obs) =
    ///     ShardedCollector::restore_observed(&dir, Arc::new(MonotonicClock::new()))?;
    /// assert_eq!(restored.collector.total_reports(), 2);
    /// let snapshot = obs.registry().snapshot();
    /// assert_eq!(snapshot.counter_value("store_restores_total", &[]), Some(1));
    /// assert_eq!(snapshot.counter_value("store_snapshot_reads_total", &[]), Some(2));
    /// # std::fs::remove_dir_all(&dir).ok();
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    /// Same contract as [`ShardedCollector::restore`].
    pub fn restore_observed(
        dir: &Path,
        clock: Arc<dyn Clock>,
    ) -> Result<(RestoredCheckpoint, Arc<StreamObs>), MdrrError> {
        let start = clock.enabled().then(|| clock.now_nanos());
        let manifest = Self::read_manifest(dir)?;
        let obs = StreamObs::new(Arc::clone(&clock), manifest.n_shards);
        let mut restored = Self::restore_from_manifest(dir, manifest, Some(&obs))?;
        restored.collector.instrument(Arc::clone(&obs))?;
        let nanos = start
            .map(|s| clock.now_nanos().saturating_sub(s))
            .unwrap_or(0);
        obs.restores_total.inc();
        if start.is_some() {
            obs.restore_nanos.record(nanos);
        }
        obs.record_event(EventKind::Restore {
            shards: restored.collector.n_shards() as u64,
            total_reports: restored.collector.total_reports(),
            nanos,
        });
        Ok((restored, obs))
    }

    /// Reads and structurally validates the manifest of a checkpoint
    /// directory.
    fn read_manifest(dir: &Path) -> Result<CheckpointManifest, MdrrError> {
        let manifest_path = dir.join(MANIFEST_FILE);
        let json = std::fs::read_to_string(&manifest_path).map_err(|e| {
            MdrrError::config(format!(
                "cannot read checkpoint manifest {}: {e}",
                manifest_path.display()
            ))
        })?;
        let manifest = CheckpointManifest::from_json(&json).map_err(|e| {
            MdrrError::config(format!(
                "malformed checkpoint manifest {}: {e}",
                manifest_path.display()
            ))
        })?;
        Ok(manifest)
    }

    /// The shared body of [`ShardedCollector::restore`] and
    /// [`ShardedCollector::restore_observed`]: validates the manifest,
    /// reads the shard files (through the observed store path when `obs`
    /// is given) and reassembles the collector.
    fn restore_from_manifest(
        dir: &Path,
        manifest: CheckpointManifest,
        obs: Option<&StreamObs>,
    ) -> Result<RestoredCheckpoint, MdrrError> {
        if manifest.manifest_version != MANIFEST_VERSION {
            return Err(MdrrError::config(format!(
                "unsupported checkpoint manifest version {} (this reader implements {})",
                manifest.manifest_version, MANIFEST_VERSION
            )));
        }
        if manifest.shard_files.is_empty() || manifest.shard_files.len() != manifest.n_shards {
            return Err(MdrrError::config(format!(
                "manifest declares {} shards but lists {} shard files",
                manifest.n_shards,
                manifest.shard_files.len()
            )));
        }
        let paths: Vec<PathBuf> = manifest.shard_files.iter().map(|f| dir.join(f)).collect();
        let snapshots = paths
            .iter()
            .map(|path| match obs {
                Some(o) => SnapshotReader::read_observed(path, o.store()),
                None => SnapshotReader::read(path),
            })
            .collect::<Result<Vec<_>, _>>()
            .map_err(MdrrError::from)?;
        let first = snapshots.first().ok_or_else(|| {
            MdrrError::config("manifest lists no shard files; the checkpoint is empty")
        })?;
        for (snapshot, name) in snapshots.iter().zip(&manifest.shard_files).skip(1) {
            if snapshot.schema() != first.schema()
                || snapshot.spec() != first.spec()
                || snapshot.channel_sizes() != first.channel_sizes()
            {
                return Err(MdrrError::config(format!(
                    "shard file {name} disagrees with shard 0 on spec, schema or channel layout"
                )));
            }
        }
        let total = snapshots
            .iter()
            .try_fold(0u64, |acc, s| acc.checked_add(s.n_reports()))
            .ok_or_else(|| {
                MdrrError::config("shard report counts overflow u64; the checkpoint is corrupt")
            })?;
        if total != manifest.total_reports {
            return Err(MdrrError::config(format!(
                "torn checkpoint: shard files cover {total} reports but the manifest \
                 committed {} — restore from the previous checkpoint",
                manifest.total_reports
            )));
        }
        // Builds the protocol and verifies counts-vs-spec channel
        // topology in one step.
        let protocol: Arc<dyn Protocol> = Arc::from(first.build_protocol()?);
        let spec = first.spec().clone();
        let shards = snapshots
            .into_iter()
            .map(|s| {
                let n = s.n_reports();
                Accumulator::from_counts(s.counts().to_vec(), n)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RestoredCheckpoint {
            collector: ShardedCollector::from_parts(protocol, shards),
            spec,
            app_state: manifest.app_state,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdrr_data::{Attribute, Schema};
    use mdrr_protocols::RandomizationLevel;
    use mdrr_store::SnapshotWriter;
    use std::fs;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::indexed("A", 3).unwrap(),
            Attribute::indexed("B", 2).unwrap(),
        ])
        .unwrap()
    }

    fn spec() -> ProtocolSpec {
        ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7))
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mdrr-ckpt-test-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn loaded_collector(n_shards: usize) -> ShardedCollector {
        let mut c = ShardedCollector::new(spec().build_arc(&schema()).unwrap(), n_shards).unwrap();
        let records: Vec<Vec<u32>> = (0..500)
            .map(|i| vec![(i % 3) as u32, (i % 2) as u32])
            .collect();
        c.ingest_records(&records, 7).unwrap();
        c
    }

    #[test]
    fn checkpoint_restore_round_trip_is_exact() {
        let dir = scratch_dir("roundtrip");
        let collector = loaded_collector(4);
        let manifest = collector
            .checkpoint(&spec(), &dir, Some("app state"))
            .unwrap();
        assert_eq!(manifest.n_shards, 4);
        assert_eq!(manifest.total_reports, 500);
        assert_eq!(manifest.shard_files.len(), 4);

        let restored = ShardedCollector::restore(&dir).unwrap();
        assert_eq!(restored.collector.shards(), collector.shards());
        assert_eq!(restored.collector.protocol().name(), "RR-Independent");
        assert_eq!(restored.spec, spec());
        assert_eq!(restored.app_state.as_deref(), Some("app state"));
        // The restored collector keeps ingesting and snapshotting.
        let mut resumed = restored.collector;
        resumed.ingest_records(&[vec![0, 0]], 8).unwrap();
        assert_eq!(resumed.total_reports(), 501);
        assert!(resumed.snapshot().is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_rejects_a_mismatched_spec() {
        let dir = scratch_dir("speccheck");
        let collector = loaded_collector(2);
        // A joint spec does not describe a per-attribute collector.
        let wrong = ProtocolSpec::Joint {
            level: RandomizationLevel::KeepProbability(0.7),
            max_domain: None,
            equivalent_risk: false,
        };
        assert!(collector.checkpoint(&wrong, &dir, None).is_err());
        // Nothing was committed.
        assert!(!dir.join(MANIFEST_FILE).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restore_detects_missing_and_torn_state() {
        let dir = scratch_dir("torn");
        // No manifest at all.
        assert!(ShardedCollector::restore(&dir).is_err());
        let collector = loaded_collector(2);
        let manifest = collector.checkpoint(&spec(), &dir, None).unwrap();
        // Simulate out-of-band damage: one committed shard file replaced
        // with a newer state the manifest never blessed.
        let mut advanced = collector.clone();
        advanced.ingest_records(&vec![vec![1, 1]; 10], 9).unwrap();
        let snapshot = Snapshot::new(
            schema(),
            spec(),
            advanced.shards()[0].counts().to_vec(),
            advanced.shards()[0].n_reports(),
        )
        .unwrap();
        SnapshotWriter::new(dir.join(&manifest.shard_files[0]))
            .write(&snapshot)
            .unwrap();
        let err = ShardedCollector::restore(&dir).unwrap_err();
        assert!(err.to_string().contains("torn checkpoint"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restore_rejects_corrupt_shard_files_and_bad_manifests() {
        let dir = scratch_dir("corrupt");
        let collector = loaded_collector(2);
        let manifest = collector.checkpoint(&spec(), &dir, None).unwrap();
        // Flip one byte in the middle of a shard file.
        let path = dir.join(&manifest.shard_files[1]);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(ShardedCollector::restore(&dir).is_err());
        // A malformed manifest is a typed error too.
        fs::write(dir.join(MANIFEST_FILE), b"{not json").unwrap();
        assert!(ShardedCollector::restore(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
