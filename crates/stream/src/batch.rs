//! Columnar report batches: the zero-allocation bulk wire format.
//!
//! A [`ReportBatch`] is to [`crate::Report`] what a column is to a cell:
//! one reusable `Vec<u32>` per protocol channel, holding the randomized
//! codes of many reports in record order.  The bulk pipeline encodes whole
//! record chunks straight into a batch
//! ([`mdrr_protocols::Protocol::encode_batch`]) and counts whole batches
//! straight into an accumulator ([`crate::Accumulator::ingest_batch`]),
//! so after warm-up the per-report cost is pure arithmetic — no `Vec` per
//! report, no dyn dispatch per report, no per-report validation.  The
//! codes produced are bit-identical to the per-report path under the same
//! RNG, which `crates/stream/tests/proptest_stream.rs` enforces.

use crate::error::MdrrError;
use crate::report::Report;
use mdrr_data::RecordsView;
use mdrr_protocols::Protocol;
use rand::RngCore;

/// A columnar batch of randomized reports: `channels()[k][i]` is report
/// `i`'s code on channel `k`.  All channel buffers have equal length (one
/// code per report); the buffers keep their capacity across
/// [`ReportBatch::clear`] calls, so a reused batch allocates nothing in
/// steady state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportBatch {
    channels: Vec<Vec<u32>>,
}

impl ReportBatch {
    /// An empty batch with one code buffer per channel.
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] if `n_channels` is zero.
    pub fn new(n_channels: usize) -> Result<Self, MdrrError> {
        if n_channels == 0 {
            return Err(MdrrError::config(
                "a report batch needs at least one channel",
            ));
        }
        Ok(ReportBatch {
            channels: vec![Vec::new(); n_channels],
        })
    }

    /// An empty batch shaped for `protocol`'s channel topology.
    pub fn for_protocol(protocol: &dyn Protocol) -> Self {
        ReportBatch {
            channels: vec![Vec::new(); protocol.channel_sizes().len()],
        }
    }

    /// Number of channels.
    pub fn n_channels(&self) -> usize {
        self.channels.len()
    }

    /// Number of reports in the batch.
    pub fn n_reports(&self) -> usize {
        self.channels.first().map(Vec::len).unwrap_or(0)
    }

    /// Whether the batch holds no reports.
    pub fn is_empty(&self) -> bool {
        self.n_reports() == 0
    }

    /// Empties the batch, keeping the channel capacities for reuse.
    pub fn clear(&mut self) {
        for channel in &mut self.channels {
            channel.clear();
        }
    }

    /// The per-channel code buffers, in channel order.
    pub fn channels(&self) -> &[Vec<u32>] {
        &self.channels
    }

    /// Mutable access to the per-channel code buffers — the `out`
    /// parameter of [`mdrr_protocols::Protocol::encode_batch`].  Callers
    /// writing through this must keep the channels equal-length (one code
    /// per report); [`crate::Accumulator::ingest_batch`] re-checks.
    pub fn channels_mut(&mut self) -> &mut [Vec<u32>] {
        &mut self.channels
    }

    /// Appends one already-encoded report.
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] for an arity mismatch;
    /// the batch is unchanged on error.
    pub fn push(&mut self, report: &Report) -> Result<(), MdrrError> {
        let codes = report.codes();
        if codes.len() != self.channels.len() {
            return Err(MdrrError::config(format!(
                "report has {} codes but the batch has {} channels",
                codes.len(),
                self.channels.len()
            )));
        }
        for (channel, &code) in self.channels.iter_mut().zip(codes.iter()) {
            channel.push(code);
        }
        Ok(())
    }

    /// Fills `codes` with report `i`'s channel codes (cleared first) — the
    /// bridge for consumers that need one report at a time, without
    /// allocating per report.
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] if `i` is out of range
    /// or the channels are ragged.
    pub fn read_report(&self, i: usize, codes: &mut Vec<u32>) -> Result<(), MdrrError> {
        codes.clear();
        for (k, channel) in self.channels.iter().enumerate() {
            match channel.get(i) {
                Some(&code) => codes.push(code),
                None => {
                    return Err(MdrrError::config(format!(
                        "report index {i} out of range on channel {k} ({} reports)",
                        channel.len()
                    )))
                }
            }
        }
        Ok(())
    }

    /// Clears the batch and encodes a whole columnar record chunk into it
    /// through the protocol's (tuned) batch encoder.
    ///
    /// # Errors
    /// Propagates [`mdrr_protocols::Protocol::encode_batch`] errors; the
    /// batch is left cleared on error.
    pub fn encode_records(
        &mut self,
        protocol: &dyn Protocol,
        records: &RecordsView<'_>,
        rng: &mut dyn RngCore,
    ) -> Result<(), MdrrError> {
        self.clear();
        if let Err(e) = protocol.encode_batch(records, rng, &mut self.channels) {
            self.clear();
            return Err(e);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdrr_data::{Attribute, Dataset, Schema};
    use mdrr_protocols::{ProtocolSpec, RandomizationLevel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::indexed("A", 3).unwrap(),
            Attribute::indexed("B", 2).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_shape() {
        assert!(ReportBatch::new(0).is_err());
        let mut batch = ReportBatch::new(2).unwrap();
        assert_eq!(batch.n_channels(), 2);
        assert!(batch.is_empty());
        batch.push(&Report::new(vec![1, 0])).unwrap();
        assert!(batch.push(&Report::new(vec![1])).is_err());
        assert_eq!(batch.n_reports(), 1);
        let mut codes = Vec::new();
        batch.read_report(0, &mut codes).unwrap();
        assert_eq!(codes, vec![1, 0]);
        assert!(batch.read_report(1, &mut codes).is_err());
        batch.clear();
        assert!(batch.is_empty());
    }

    #[test]
    fn encode_records_matches_per_record_encoding() {
        let protocol = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.6))
            .build(&schema())
            .unwrap();
        let ds = Dataset::from_records(schema(), &[vec![0, 1], vec![2, 0], vec![1, 1], vec![0, 0]])
            .unwrap();

        let mut batch = ReportBatch::for_protocol(&*protocol);
        let mut rng = StdRng::seed_from_u64(9);
        batch
            .encode_records(&*protocol, &ds.view(), &mut rng)
            .unwrap();
        assert_eq!(batch.n_reports(), 4);

        let mut rng = StdRng::seed_from_u64(9);
        let mut codes = Vec::new();
        let view = ds.view();
        let mut record = Vec::new();
        for i in 0..ds.n_records() {
            view.read_record(i, &mut record).unwrap();
            let report = Report::encode(&*protocol, &record, &mut rng).unwrap();
            batch.read_report(i, &mut codes).unwrap();
            assert_eq!(codes, report.codes());
        }
    }

    #[test]
    fn encode_records_clears_on_error() {
        let protocol = ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.6))
            .build(&schema())
            .unwrap();
        let mut batch = ReportBatch::for_protocol(&*protocol);
        batch.push(&Report::new(vec![0, 0])).unwrap();
        let bad = Dataset::from_records(schema(), &[vec![0, 1]]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        // Wrong arity view (project to one attribute).
        let projected = bad.project(&[0]).unwrap();
        assert!(batch
            .encode_records(&*protocol, &projected.view(), &mut rng)
            .is_err());
        assert!(batch.is_empty(), "batch is cleared on error");
    }
}
