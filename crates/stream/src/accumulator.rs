//! Mergeable per-shard accumulators of randomized reports.
//!
//! An [`Accumulator`] keeps one count vector per channel — the sufficient
//! statistics of the estimation problem.  Because Equation (2) depends on
//! the reports only through the empirical reported distribution, and that
//! distribution only through the per-category counts, accumulating counts
//! loses nothing: a snapshot taken from merged accumulators is numerically
//! identical to the batch estimate over the pooled reports.  Counts are
//! plain sums, so merging is exact, associative and commutative — shards
//! can be combined in any order.

use crate::batch::ReportBatch;
use crate::error::MdrrError;
use crate::report::Report;
use serde::{Deserialize, Serialize};

/// Per-channel count vectors over the randomized codes of the ingested
/// reports, plus the number of reports.  The unit of parallelism of the
/// streaming collector: each shard owns one accumulator and ingestion never
/// contends across shards.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Accumulator {
    counts: Vec<Vec<u64>>,
    n_reports: u64,
}

impl Accumulator {
    /// An empty accumulator over channels of the given domain sizes.
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] if there are no
    /// channels or a channel has size zero.
    pub fn new(channel_sizes: &[usize]) -> Result<Self, MdrrError> {
        if channel_sizes.is_empty() {
            return Err(MdrrError::config(
                "an accumulator needs at least one channel",
            ));
        }
        if let Some(k) = channel_sizes.iter().position(|&s| s == 0) {
            return Err(MdrrError::config(format!(
                "channel {k} has domain size zero"
            )));
        }
        Ok(Accumulator {
            counts: channel_sizes.iter().map(|&s| vec![0u64; s]).collect(),
            n_reports: 0,
        })
    }

    /// Rebuilds an accumulator from externally held state — the restore
    /// path of a persisted snapshot.  Validates the same invariants
    /// [`Accumulator::absorb_counts`] enforces: at least one non-empty
    /// channel, and every channel's counts summing to exactly `n_reports`
    /// (each report contributes one code per channel).
    ///
    /// ```
    /// use mdrr_stream::Accumulator;
    /// let acc = Accumulator::from_counts(vec![vec![2, 0, 1], vec![1, 2]], 3)?;
    /// assert_eq!(acc.n_reports(), 3);
    /// assert!(Accumulator::from_counts(vec![vec![2, 0]], 3).is_err());
    /// # Ok::<(), mdrr_stream::MdrrError>(())
    /// ```
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] when an invariant is
    /// violated.
    pub fn from_counts(counts: Vec<Vec<u64>>, n_reports: u64) -> Result<Self, MdrrError> {
        let sizes: Vec<usize> = counts.iter().map(Vec::len).collect();
        let mut acc = Accumulator::new(&sizes)?;
        acc.absorb_counts(&counts, n_reports)?;
        Ok(acc)
    }

    /// Ingests one report: bumps one count per channel.
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] if the report's arity
    /// differs from the number of channels or a code is out of its
    /// channel's range; the accumulator is unchanged on error.
    pub fn ingest(&mut self, report: &Report) -> Result<(), MdrrError> {
        let codes = report.codes();
        if codes.len() != self.counts.len() {
            return Err(MdrrError::config(format!(
                "report has {} codes but the accumulator has {} channels",
                codes.len(),
                self.counts.len()
            )));
        }
        for (k, (&code, channel)) in codes.iter().zip(self.counts.iter()).enumerate() {
            if code as usize >= channel.len() {
                return Err(MdrrError::config(format!(
                    "code {code} out of range for channel {k} ({} categories)",
                    channel.len()
                )));
            }
        }
        for (&code, channel) in codes.iter().zip(self.counts.iter_mut()) {
            channel[code as usize] += 1;
        }
        self.n_reports += 1;
        Ok(())
    }

    /// Ingests a whole columnar [`ReportBatch`]: one tight counting loop
    /// per channel, with a single shape/range validation pass per batch
    /// (one arity check, one length check and one max-code scan per
    /// channel) instead of one per report.  Counting `n` reports this way
    /// is equivalent to `n` [`Accumulator::ingest`] calls on the same
    /// codes, at a fraction of the cost.
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] if the batch's channel
    /// count differs from the accumulator's, the channel buffers are
    /// ragged, or a code is out of its channel's range; the accumulator is
    /// unchanged on error.
    pub fn ingest_batch(&mut self, batch: &ReportBatch) -> Result<(), MdrrError> {
        let channels = batch.channels();
        if channels.len() != self.counts.len() {
            return Err(MdrrError::config(format!(
                "batch has {} channels but the accumulator has {}",
                channels.len(),
                self.counts.len()
            )));
        }
        let n = batch.n_reports();
        for (k, (codes, channel)) in channels.iter().zip(self.counts.iter()).enumerate() {
            if codes.len() != n {
                return Err(MdrrError::config(format!(
                    "batch channel {k} holds {} codes but channel 0 holds {n}",
                    codes.len()
                )));
            }
            if let Some(&max) = codes.iter().max() {
                if max as usize >= channel.len() {
                    return Err(MdrrError::config(format!(
                        "code {max} out of range for channel {k} ({} categories)",
                        channel.len()
                    )));
                }
            }
        }
        // Validated above: every code is in range, so the counting loops
        // run branch-predictably start to finish.
        // lint:region(no_alloc)
        for (codes, channel) in channels.iter().zip(self.counts.iter_mut()) {
            for &code in codes {
                channel[code as usize] += 1;
            }
        }
        // lint:endregion(no_alloc)
        self.n_reports += n as u64;
        Ok(())
    }

    /// Absorbs externally tallied per-channel count vectors covering
    /// `n_reports` reports — the sink of the fused
    /// [`mdrr_protocols::Protocol::encode_tally`] path, where a worker
    /// randomizes straight into its own count vectors and hands the
    /// finished statistics over in one call.
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] if the channel layouts
    /// differ or any channel's counts do not sum to `n_reports` (each
    /// report contributes exactly one code per channel); the accumulator
    /// is unchanged on error.
    pub fn absorb_counts(&mut self, counts: &[Vec<u64>], n_reports: u64) -> Result<(), MdrrError> {
        if counts.len() != self.counts.len()
            || counts
                .iter()
                .zip(self.counts.iter())
                .any(|(a, b)| a.len() != b.len())
        {
            return Err(MdrrError::config(
                "cannot absorb counts with a different channel layout",
            ));
        }
        for (k, channel) in counts.iter().enumerate() {
            let total: u64 = channel.iter().sum();
            if total != n_reports {
                return Err(MdrrError::config(format!(
                    "channel {k} counts sum to {total} but {n_reports} reports were tallied"
                )));
            }
        }
        for (mine, theirs) in self.counts.iter_mut().zip(counts.iter()) {
            for (a, b) in mine.iter_mut().zip(theirs.iter()) {
                *a += b;
            }
        }
        self.n_reports += n_reports;
        Ok(())
    }

    /// Merges another accumulator into this one (exact: counts add).
    ///
    /// # Errors
    /// Returns [`MdrrError::InvalidConfiguration`] if the channel layouts
    /// differ; the accumulator is unchanged on error.
    pub fn merge(&mut self, other: &Accumulator) -> Result<(), MdrrError> {
        if self.counts.len() != other.counts.len()
            || self
                .counts
                .iter()
                .zip(other.counts.iter())
                .any(|(a, b)| a.len() != b.len())
        {
            return Err(MdrrError::config(
                "cannot merge accumulators with different channel layouts",
            ));
        }
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            for (a, b) in mine.iter_mut().zip(theirs.iter()) {
                *a += b;
            }
        }
        self.n_reports += other.n_reports;
        Ok(())
    }

    /// The per-channel count vectors, in channel order.
    pub fn counts(&self) -> &[Vec<u64>] {
        &self.counts
    }

    /// Number of reports ingested (including merged ones).
    pub fn n_reports(&self) -> u64 {
        self.n_reports
    }

    /// Whether no report has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.n_reports == 0
    }

    /// The domain size of each channel, in channel order.
    pub fn channel_sizes(&self) -> Vec<usize> {
        self.counts.iter().map(Vec::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(codes: &[u32]) -> Report {
        Report::new(codes.to_vec())
    }

    #[test]
    fn construction_validates_channels() {
        assert!(Accumulator::new(&[]).is_err());
        assert!(Accumulator::new(&[3, 0]).is_err());
        let acc = Accumulator::new(&[3, 2]).unwrap();
        assert!(acc.is_empty());
        assert_eq!(acc.channel_sizes(), vec![3, 2]);
    }

    #[test]
    fn ingestion_counts_per_channel() {
        let mut acc = Accumulator::new(&[3, 2]).unwrap();
        acc.ingest(&report(&[0, 1])).unwrap();
        acc.ingest(&report(&[2, 1])).unwrap();
        acc.ingest(&report(&[0, 0])).unwrap();
        assert_eq!(acc.n_reports(), 3);
        assert_eq!(acc.counts(), &[vec![2, 0, 1], vec![1, 2]]);
    }

    #[test]
    fn ingestion_rejects_malformed_reports_atomically() {
        let mut acc = Accumulator::new(&[3, 2]).unwrap();
        assert!(acc.ingest(&report(&[0])).is_err());
        assert!(acc.ingest(&report(&[0, 1, 0])).is_err());
        // Second channel out of range: the first channel must NOT have been
        // counted.
        assert!(acc.ingest(&report(&[0, 5])).is_err());
        assert!(acc.is_empty());
        assert_eq!(acc.counts(), &[vec![0, 0, 0], vec![0, 0]]);
    }

    #[test]
    fn batch_ingestion_matches_per_report_ingestion() {
        let reports = [[0u32, 1], [2, 1], [0, 0], [1, 1]];
        let mut per_report = Accumulator::new(&[3, 2]).unwrap();
        let mut batch = ReportBatch::new(2).unwrap();
        for codes in &reports {
            per_report.ingest(&report(codes)).unwrap();
            batch.push(&report(codes)).unwrap();
        }
        let mut batched = Accumulator::new(&[3, 2]).unwrap();
        batched.ingest_batch(&batch).unwrap();
        assert_eq!(batched, per_report);
        assert_eq!(batched.n_reports(), 4);
        // An empty batch is a no-op.
        batch.clear();
        batched.ingest_batch(&batch).unwrap();
        assert_eq!(batched.n_reports(), 4);
    }

    #[test]
    fn batch_ingestion_rejects_malformed_batches_atomically() {
        let mut acc = Accumulator::new(&[3, 2]).unwrap();
        // Wrong channel count.
        let mut wrong_arity = ReportBatch::new(1).unwrap();
        wrong_arity.push(&Report::new(vec![0])).unwrap();
        assert!(acc.ingest_batch(&wrong_arity).is_err());
        // Ragged channels.
        let mut ragged = ReportBatch::new(2).unwrap();
        ragged.channels_mut()[0].push(0);
        assert!(acc.ingest_batch(&ragged).is_err());
        // Out-of-range code in the second channel: nothing is counted.
        let mut bad_code = ReportBatch::new(2).unwrap();
        bad_code.push(&Report::new(vec![0, 1])).unwrap();
        bad_code.push(&Report::new(vec![1, 5])).unwrap();
        assert!(acc.ingest_batch(&bad_code).is_err());
        assert!(acc.is_empty());
        assert_eq!(acc.counts(), &[vec![0, 0, 0], vec![0, 0]]);
    }

    #[test]
    fn merge_is_exact_and_order_independent() {
        let mut a = Accumulator::new(&[3]).unwrap();
        let mut b = Accumulator::new(&[3]).unwrap();
        let mut c = Accumulator::new(&[3]).unwrap();
        for &x in &[0u32, 1, 1] {
            a.ingest(&report(&[x])).unwrap();
        }
        for &x in &[2u32, 2] {
            b.ingest(&report(&[x])).unwrap();
        }
        c.ingest(&report(&[0])).unwrap();

        let mut abc = a.clone();
        abc.merge(&b).unwrap();
        abc.merge(&c).unwrap();
        let mut cba = c.clone();
        cba.merge(&b).unwrap();
        cba.merge(&a).unwrap();
        assert_eq!(abc, cba);
        assert_eq!(abc.n_reports(), 6);
        assert_eq!(abc.counts(), &[vec![2, 2, 2]]);
    }

    #[test]
    fn merge_rejects_mismatched_layouts() {
        let mut a = Accumulator::new(&[3, 2]).unwrap();
        let b = Accumulator::new(&[3]).unwrap();
        let c = Accumulator::new(&[3, 4]).unwrap();
        assert!(a.merge(&b).is_err());
        assert!(a.merge(&c).is_err());
        assert!(a.is_empty());
    }
}
