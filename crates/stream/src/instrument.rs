//! Optional collector instrumentation.
//!
//! A [`StreamObs`] bundles everything the streaming layer measures: the
//! injected [`Clock`], a metric [`Registry`] shared with the store layer
//! (and any other layer the caller wires in), a bounded event
//! [`Journal`], and per-shard instruments.  A collector runs completely
//! uninstrumented unless
//! [`ShardedCollector::instrument`](crate::ShardedCollector::instrument)
//! attaches one — and even then, a disabled clock ([`mdrr_obs::NullClock`]) skips all
//! timing reads, leaving only relaxed counter bumps once per batch.
//!
//! Metric catalog (in addition to the `store_*` metrics of
//! [`mdrr_store::StoreObs`], which share the registry):
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `stream_shard_reports_total{shard}` | counter | reports ingested per shard |
//! | `stream_shard_batches_total{shard}` | counter | encode/ingest batches per shard |
//! | `stream_shard_ingest_nanos{shard}` | histogram | per-batch ingest wall time |
//! | `stream_shard_healthy{shard}` | gauge | 1 while the shard serves, 0 once quarantined |
//! | `stream_shard_failures_total` | counter | shard-worker failures (panics) observed |
//! | `stream_shard_imbalance_permille` | gauge | (max−min)/max shard load, ‰ |
//! | `stream_snapshots_total` | counter | mid-stream snapshots taken |
//! | `stream_snapshot_nanos` | histogram | per-snapshot wall time |
//! | `store_checkpoints_total` | counter | checkpoints committed |
//! | `store_checkpoint_nanos` | histogram | per-checkpoint wall time |
//! | `store_checkpoint_bytes_total` | counter | bytes written by checkpoints |
//! | `store_restores_total` | counter | restores completed |
//! | `store_restore_nanos` | histogram | per-restore wall time |

use crate::accumulator::Accumulator;
use mdrr_obs::{Clock, Counter, EventKind, Gauge, Histogram, Journal, Registry};
use mdrr_store::StoreObs;
use std::sync::Arc;

/// Journal capacity of [`StreamObs::new`]: enough for every checkpoint /
/// snapshot / restore milestone of a long run plus a window of recent
/// per-shard batch events.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

/// Per-shard instruments (one set per shard, labelled `{shard="k"}`).
#[derive(Debug)]
pub(crate) struct ShardObs {
    pub(crate) reports: Arc<Counter>,
    pub(crate) batches: Arc<Counter>,
    pub(crate) ingest_nanos: Arc<Histogram>,
    pub(crate) healthy: Arc<Gauge>,
}

/// The streaming layer's instruments, clock, registry and journal.
///
/// ```
/// use mdrr_obs::MonotonicClock;
/// use mdrr_stream::StreamObs;
/// use std::sync::Arc;
///
/// let obs = StreamObs::new(Arc::new(MonotonicClock::new()), 4);
/// assert_eq!(obs.n_shards(), 4);
/// // The full metric set exists from construction, shard labels included.
/// let snapshot = obs.registry().snapshot();
/// assert_eq!(
///     snapshot.counter_value("stream_shard_reports_total", &[("shard", "3")]),
///     Some(0)
/// );
/// assert_eq!(snapshot.counter_value("store_checkpoints_total", &[]), Some(0));
/// ```
#[derive(Debug)]
pub struct StreamObs {
    clock: Arc<dyn Clock>,
    registry: Arc<Registry>,
    journal: Arc<Journal>,
    store: StoreObs,
    pub(crate) shards: Vec<ShardObs>,
    pub(crate) shard_failures_total: Arc<Counter>,
    pub(crate) snapshots_total: Arc<Counter>,
    pub(crate) snapshot_nanos: Arc<Histogram>,
    pub(crate) imbalance_permille: Arc<Gauge>,
    pub(crate) checkpoints_total: Arc<Counter>,
    pub(crate) checkpoint_nanos: Arc<Histogram>,
    pub(crate) checkpoint_bytes: Arc<Counter>,
    pub(crate) restores_total: Arc<Counter>,
    pub(crate) restore_nanos: Arc<Histogram>,
}

impl StreamObs {
    /// Instrumentation for an `n_shards`-shard collector, with a fresh
    /// registry, the default journal capacity, and the store instruments
    /// registered alongside the stream ones.
    pub fn new(clock: Arc<dyn Clock>, n_shards: usize) -> Arc<Self> {
        Self::with_journal_capacity(clock, n_shards, DEFAULT_JOURNAL_CAPACITY)
    }

    /// [`StreamObs::new`] with an explicit journal capacity bound.
    pub fn with_journal_capacity(
        clock: Arc<dyn Clock>,
        n_shards: usize,
        journal_capacity: usize,
    ) -> Arc<Self> {
        let registry = Arc::new(Registry::new());
        let store = StoreObs::new(Arc::clone(&clock), &registry);
        let shards = (0..n_shards)
            .map(|k| {
                let shard = k.to_string();
                let labels: &[(&str, &str)] = &[("shard", shard.as_str())];
                let healthy = registry.gauge_with("stream_shard_healthy", labels);
                healthy.set(1);
                ShardObs {
                    reports: registry.counter_with("stream_shard_reports_total", labels),
                    batches: registry.counter_with("stream_shard_batches_total", labels),
                    ingest_nanos: registry.histogram_with("stream_shard_ingest_nanos", labels),
                    healthy,
                }
            })
            .collect();
        Arc::new(StreamObs {
            shard_failures_total: registry.counter("stream_shard_failures_total"),
            snapshots_total: registry.counter("stream_snapshots_total"),
            snapshot_nanos: registry.histogram("stream_snapshot_nanos"),
            imbalance_permille: registry.gauge("stream_shard_imbalance_permille"),
            checkpoints_total: registry.counter("store_checkpoints_total"),
            checkpoint_nanos: registry.histogram("store_checkpoint_nanos"),
            checkpoint_bytes: registry.counter("store_checkpoint_bytes_total"),
            restores_total: registry.counter("store_restores_total"),
            restore_nanos: registry.histogram("store_restore_nanos"),
            journal: Arc::new(Journal::new(journal_capacity)),
            shards,
            store,
            clock,
            registry,
        })
    }

    /// The injected clock every observed stream/store path reads.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The registry holding the stream *and* store instruments — snapshot
    /// it and feed [`mdrr_obs::to_json`] / [`mdrr_obs::to_prometheus`].
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The bounded event journal (checkpoint begin/commit, restore,
    /// snapshot, merge, batch events).
    pub fn journal(&self) -> &Arc<Journal> {
        &self.journal
    }

    /// The store-layer instruments sharing this registry (pass to the
    /// `*_observed` entry points of `mdrr-store`).
    pub fn store(&self) -> &StoreObs {
        &self.store
    }

    /// The shard count these instruments were laid out for.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Records `event` in the journal, stamped with the current clock
    /// reading.
    pub fn record_event(&self, event: EventKind) {
        self.journal.record(self.clock.now_nanos(), event);
    }

    /// Recomputes the shard-imbalance gauge from per-shard report counts:
    /// `(max − min) · 1000 / max` (0 when no shard has ingested yet).
    pub(crate) fn update_imbalance(&self, shards: &[Accumulator]) {
        let mut min = u64::MAX;
        let mut max = 0u64;
        for shard in shards {
            let n = shard.n_reports();
            min = min.min(n);
            max = max.max(n);
        }
        let permille = (max - min.min(max))
            .saturating_mul(1000)
            .checked_div(max)
            .unwrap_or(0);
        self.imbalance_permille.set(permille);
    }

    /// Per-shard report totals as recorded by the instrumentation, in
    /// shard order — the exact counters the run report cross-checks.
    pub fn shard_report_totals(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.reports.get()).collect()
    }

    /// Flips shard `k`'s health gauge (1 = serving, 0 = quarantined).
    /// Out-of-range shards are ignored.
    pub(crate) fn set_shard_health(&self, k: usize, healthy: bool) {
        if let Some(shard) = self.shards.get(k) {
            shard.healthy.set(u64::from(healthy));
        }
    }
}

/// One ingest worker's view of the instrumentation, resolved once per
/// worker run: the per-chunk hot path is a single `Option` check when
/// uninstrumented, two clock reads plus relaxed bumps when on, and
/// counter bumps only (no clock reads) under a disabled clock.
#[derive(Clone, Copy)]
pub(crate) struct WorkerObs<'a> {
    obs: Option<&'a StreamObs>,
    shard: Option<&'a ShardObs>,
    clock: Option<&'a dyn Clock>,
    k: usize,
}

impl<'a> WorkerObs<'a> {
    /// The worker observer of shard `k` (inert when `obs` is `None`).
    pub(crate) fn for_shard(obs: Option<&'a StreamObs>, k: usize) -> Self {
        WorkerObs {
            obs,
            shard: obs.and_then(|o| o.shards.get(k)),
            clock: obs.and_then(|o| o.clock.enabled().then_some(o.clock.as_ref())),
            k,
        }
    }

    /// The clock reading before a chunk (0 when timing is off).
    pub(crate) fn chunk_start(&self) -> u64 {
        self.clock.map(Clock::now_nanos).unwrap_or(0)
    }

    /// Accounts one encode/count chunk: bumps the shard's batch counter
    /// and, when timing is on, records the chunk latency.
    pub(crate) fn chunk_done(&self, start: u64) {
        if let Some(shard) = self.shard {
            shard.batches.inc();
            if let Some(clock) = self.clock {
                shard
                    .ingest_nanos
                    .record(clock.now_nanos().saturating_sub(start));
            }
        }
    }

    /// Accounts a finished worker run of `reports` reports: bumps the
    /// shard's report counter and journals one `BatchIngested` event.
    pub(crate) fn run_done(&self, reports: u64) {
        if let Some(shard) = self.shard {
            shard.reports.add(reports);
        }
        if let Some(obs) = self.obs {
            obs.record_event(EventKind::BatchIngested {
                shard: self.k as u64,
                reports,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdrr_obs::{ManualClock, NullClock};

    #[test]
    fn imbalance_gauge_tracks_spread() {
        let obs = StreamObs::new(Arc::new(NullClock), 2);
        let mut a = Accumulator::new(&[2]).unwrap();
        let b = Accumulator::new(&[2]).unwrap();
        a.absorb_counts(&[vec![3, 1]], 4).unwrap();
        obs.update_imbalance(&[a.clone(), b.clone()]);
        assert_eq!(
            obs.registry()
                .snapshot()
                .gauge_value("stream_shard_imbalance_permille", &[]),
            Some(1000)
        );
        obs.update_imbalance(&[a.clone(), a]);
        assert_eq!(
            obs.registry()
                .snapshot()
                .gauge_value("stream_shard_imbalance_permille", &[]),
            Some(0)
        );
        obs.update_imbalance(&[]);
    }

    #[test]
    fn worker_obs_counts_without_timing_under_a_null_clock() {
        let null_obs = StreamObs::new(Arc::new(NullClock), 1);
        let worker = WorkerObs::for_shard(Some(&null_obs), 0);
        assert_eq!(worker.chunk_start(), 0);
        worker.chunk_done(0); // bumps the batch counter, records no time
        worker.run_done(10);
        let snap = null_obs.registry().snapshot();
        assert_eq!(
            snap.counter_value("stream_shard_batches_total", &[("shard", "0")]),
            Some(1)
        );
        assert_eq!(
            snap.counter_value("stream_shard_reports_total", &[("shard", "0")]),
            Some(10)
        );
        // Out-of-range shard and absent obs are inert, not panics.
        WorkerObs::for_shard(Some(&null_obs), 9).chunk_done(0);
        WorkerObs::for_shard(None, 0).run_done(5);

        let clock = Arc::new(ManualClock::new());
        let obs = StreamObs::new(clock.clone(), 1);
        let worker = WorkerObs::for_shard(Some(&obs), 0);
        let start = worker.chunk_start();
        clock.advance(500);
        worker.chunk_done(start);
        let hist = obs
            .registry()
            .snapshot()
            .histogram_snapshot("stream_shard_ingest_nanos", &[("shard", "0")])
            .cloned()
            .unwrap();
        assert_eq!(hist.count, 1);
        assert_eq!(hist.sum, 500);
        // The NullClock path recorded nothing.
        let null_hist = null_obs
            .registry()
            .snapshot()
            .histogram_snapshot("stream_shard_ingest_nanos", &[("shard", "0")])
            .cloned()
            .unwrap();
        assert_eq!(null_hist.count, 0);
    }

    #[test]
    fn events_are_stamped_with_the_injected_clock() {
        let clock = Arc::new(ManualClock::new());
        let obs = StreamObs::new(clock.clone(), 1);
        clock.set(77);
        obs.record_event(EventKind::CheckpointBegin { shards: 1 });
        let events = obs.journal().events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].at_nanos, 77);
    }
}
