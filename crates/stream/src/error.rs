//! Error type of the streaming subsystem.
//!
//! The streaming layer reports the same [`MdrrError`] as the protocol layer
//! it sits on — shape violations (zero shards, a report that does not match
//! the protocol's channels, mismatched accumulator layouts) surface as
//! [`MdrrError::InvalidConfiguration`], and protocol errors propagate
//! unchanged through `?` with no wrapping.  The historical `StreamError`
//! name survives as a plain alias.

pub use mdrr_protocols::MdrrError;

/// Compatibility alias: the streaming layer's historical error name.
pub type StreamError = MdrrError;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_errors_are_mdrr_errors() {
        // One error type across the layers: protocol errors flow into
        // streaming signatures without conversion, and the alias is
        // interchangeable with the canonical name.
        let e: StreamError = MdrrError::config("zero shards");
        assert!(e.to_string().contains("zero shards"));
        let p: MdrrError = mdrr_protocols::ProtocolError::config("bad");
        let s: StreamError = p;
        assert!(s.to_string().contains("bad"));
    }
}
