//! Error type of the streaming subsystem.

use mdrr_protocols::ProtocolError;
use std::fmt;

/// Errors produced by the streaming ingestion and estimation layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// An error bubbled up from the protocol layer (encoding a report,
    /// estimating from accumulated counts, answering a query).
    Protocol(ProtocolError),
    /// A streaming configuration or input was invalid (zero shards, a
    /// report whose shape does not match the protocol's channels, merging
    /// accumulators of different shapes, …).
    InvalidConfiguration {
        /// Description of the violated constraint.
        message: String,
    },
}

impl StreamError {
    /// Convenience constructor for configuration errors.
    pub fn config(message: impl Into<String>) -> Self {
        StreamError::InvalidConfiguration {
            message: message.into(),
        }
    }
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Protocol(e) => write!(f, "protocol error: {e}"),
            StreamError::InvalidConfiguration { message } => {
                write!(f, "invalid streaming configuration: {message}")
            }
        }
    }
}

impl std::error::Error for StreamError {}

impl From<ProtocolError> for StreamError {
    fn from(e: ProtocolError) -> Self {
        StreamError::Protocol(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = StreamError::config("zero shards");
        assert!(e.to_string().contains("zero shards"));
        let p: StreamError = ProtocolError::config("bad").into();
        assert!(matches!(p, StreamError::Protocol(_)));
        assert!(p.to_string().contains("bad"));
    }
}
