//! The collector wire protocol: length-framed, checksummed, versioned.
//!
//! This is the first boundary where the workspace accepts bytes it did
//! not produce, so the format follows the `docs/FORMAT.md` discipline
//! (see `docs/WIRE.md` for the byte-level spec): an 8-byte magic, an
//! explicit little-endian version, a declared payload length that is
//! *capped and verified before any allocation*, and a trailing
//! CRC-64/XZ over everything before it, reusing [`mdrr_store::crc64`].
//! Every way a frame can be malformed has a typed [`WireError`] variant;
//! nothing in this module panics on hostile input
//! (`crates/serve/tests/adversarial.rs` proves it for every truncation
//! length and every single-bit flip).
//!
//! A frame is:
//!
//! ```text
//! offset  size  field
//! 0       8     magic "MDRRWIRE"
//! 8       4     wire format version (u32 LE, currently 1)
//! 12      1     frame type (see FrameType)
//! 13      3     reserved, must be zero
//! 16      4     payload length P (u32 LE, ≤ MAX_WIRE_PAYLOAD)
//! 20      P     payload
//! 20+P    8     CRC-64/XZ over bytes 0..20+P (u64 LE)
//! ```
//!
//! Batch payloads reuse the columnar [`ReportBatch`] layout (channel-major
//! `u32` codes), so the server counts codes straight out of the receive
//! buffer; handshake and query payloads are serde JSON, like the snapshot
//! header.

use crate::batch::ReportBatch;
use crate::error::MdrrError;
use mdrr_data::Schema;
use mdrr_protocols::ProtocolSpec;
use mdrr_store::crc64;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{self, Read, Write};

/// The 8 bytes every wire frame starts with.
pub const WIRE_MAGIC: [u8; 8] = *b"MDRRWIRE";

/// The wire format version this implementation speaks.  Readers must
/// reject any other version rather than guess (see docs/WIRE.md
/// §Versioning).
pub const WIRE_VERSION: u32 = 1;

/// Fixed frame header length: magic + version + type + reserved + payload
/// length.
pub const WIRE_HEADER_LEN: usize = 20;

/// Fixed frame trailer length: the CRC-64/XZ checksum.
pub const WIRE_TRAILER_LEN: usize = 8;

/// Hard cap on a frame's declared payload length.  The cap is enforced
/// *before* any buffer is sized from the declared length, so a hostile
/// header cannot drive an allocation.
pub const MAX_WIRE_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Fixed prefix of a batch payload: seq + shard hint + channel count +
/// report count.
pub const BATCH_PAYLOAD_HEADER_LEN: usize = 20;

/// Total frame size for a payload of `payload_len` bytes.
pub fn frame_len(payload_len: usize) -> usize {
    WIRE_HEADER_LEN + payload_len + WIRE_TRAILER_LEN
}

/// Error codes carried by [`FrameType::Error`] frames (u16 LE + UTF-8
/// message).  Codes are part of the wire contract: new codes may be
/// added, existing codes never renumbered.
pub mod error_code {
    /// The server is draining to a checkpoint; re-connect later.
    pub const DRAINING: u16 = 1;
    /// The peer sent a structurally invalid frame or payload.
    pub const MALFORMED: u16 = 2;
    /// The client's schema/spec does not match the server's.
    pub const SPEC_MISMATCH: u16 = 3;
    /// The server failed internally while handling a valid request.
    pub const INTERNAL: u16 = 4;
    /// The frame type is valid but not meaningful in this direction or
    /// session state.
    pub const UNEXPECTED: u16 = 5;
    /// The peer stalled mid-frame past the read budget (slowloris).
    pub const TIMEOUT: u16 = 6;
}

/// The kind of a wire frame (header byte at offset 12).
///
/// Discriminants are part of the wire contract: new types may be added,
/// existing types never renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Client → server session open: JSON `{schema, spec}`.
    Hello = 0x01,
    /// Server → client handshake reply: JSON [`HelloAck`].
    HelloAck = 0x02,
    /// Client → server report batch (binary, columnar — see
    /// [`encode_batch_payload`]).
    Batch = 0x03,
    /// Server → client acknowledgement: `seq` + running report total.
    BatchAck = 0x04,
    /// Client → server stats request (empty payload).
    StatsQuery = 0x05,
    /// Server → client stats reply: JSON [`StatsReply`].
    Stats = 0x06,
    /// Client → server snapshot request (empty payload).
    SnapshotQuery = 0x07,
    /// Server → client snapshot reply: an `mdrr-store` snapshot file
    /// image of the merged accumulator.
    Snapshot = 0x08,
    /// Client → server session close (empty payload).
    Goodbye = 0x09,
    /// Server → client close acknowledgement: final report total (u64).
    GoodbyeAck = 0x0A,
    /// Either direction: typed failure, `u16` code (see [`error_code`])
    /// plus UTF-8 message.
    Error = 0x0B,
}

impl FrameType {
    /// Every frame type, in discriminant order.
    pub const ALL: [FrameType; 11] = [
        FrameType::Hello,
        FrameType::HelloAck,
        FrameType::Batch,
        FrameType::BatchAck,
        FrameType::StatsQuery,
        FrameType::Stats,
        FrameType::SnapshotQuery,
        FrameType::Snapshot,
        FrameType::Goodbye,
        FrameType::GoodbyeAck,
        FrameType::Error,
    ];

    /// The header byte of this frame type.
    pub fn as_byte(self) -> u8 {
        self as u8
    }

    /// Parses a header byte; `None` for unknown types.
    pub fn from_byte(byte: u8) -> Option<FrameType> {
        FrameType::ALL.iter().copied().find(|t| t.as_byte() == byte)
    }

    /// A stable lower-snake name for logs and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            FrameType::Hello => "hello",
            FrameType::HelloAck => "hello_ack",
            FrameType::Batch => "batch",
            FrameType::BatchAck => "batch_ack",
            FrameType::StatsQuery => "stats_query",
            FrameType::Stats => "stats",
            FrameType::SnapshotQuery => "snapshot_query",
            FrameType::Snapshot => "snapshot",
            FrameType::Goodbye => "goodbye",
            FrameType::GoodbyeAck => "goodbye_ack",
            FrameType::Error => "error",
        }
    }
}

impl fmt::Display for FrameType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors produced by the wire codec, the client SDK and the server
/// session layer.  Every way bytes off the network can be wrong has its
/// own variant, so the session layer can meter rejects by kind and the
/// adversarial tests can assert the exact failure mode.
#[derive(Debug)]
pub enum WireError {
    /// An operating-system socket failure (connect, read, write).
    Io {
        /// What the codec was doing when the failure happened.
        context: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// The frame does not start with the `MDRRWIRE` magic bytes.
    BadMagic {
        /// The eight bytes actually found.
        found: [u8; 8],
    },
    /// The frame declares a wire version this implementation does not
    /// speak.
    UnsupportedVersion {
        /// The version the frame declares.
        found: u32,
        /// The version this implementation speaks.
        supported: u32,
    },
    /// The frame-type byte names no known frame type.
    UnknownFrameType {
        /// The byte actually found.
        found: u8,
    },
    /// The reserved header bytes are not zero (a corrupted or
    /// future-format frame).
    ReservedNonZero {
        /// The three bytes actually found.
        found: [u8; 3],
    },
    /// The declared payload length exceeds the hard cap — rejected before
    /// any allocation is sized from it.
    Oversized {
        /// The length the frame declares.
        declared: u64,
        /// The cap this implementation enforces.
        max: u64,
    },
    /// The bytes end before the declared structure does.
    Truncated {
        /// Byte offset at which more data was needed.
        offset: usize,
        /// How many more bytes the structure required.
        needed: usize,
        /// How many bytes were actually available.
        available: usize,
    },
    /// The trailing checksum does not match the frame contents.
    ChecksumMismatch {
        /// The checksum stored in the frame.
        stored: u64,
        /// The checksum computed over the frame contents.
        computed: u64,
    },
    /// The frame is structurally valid but its payload is not (bad JSON,
    /// ragged batch, size mismatch, trailing bytes).
    Malformed {
        /// Description of the problem.
        message: String,
    },
    /// Handshake mismatch: the peer's schema/spec differs from ours.
    SpecMismatch {
        /// Description of the incompatibility.
        message: String,
    },
    /// A structurally valid frame type arrived where the protocol state
    /// machine does not allow it.
    UnexpectedFrame {
        /// What the receiver was waiting for.
        context: String,
        /// The frame type actually found.
        found: &'static str,
    },
    /// The protocol layer rejected the decoded reports (bad shard index,
    /// out-of-range codes, quarantined shard).
    Protocol(MdrrError),
    /// A read or ack did not complete within its budget.
    Timeout {
        /// What timed out.
        context: String,
    },
    /// The peer closed the connection (mid-frame, or while a reply was
    /// owed).
    Closed {
        /// Where the close was observed.
        context: String,
    },
    /// The peer reported a typed failure in an [`FrameType::Error`]
    /// frame.
    Remote {
        /// The [`error_code`] the peer sent.
        code: u16,
        /// The peer's human-readable message.
        message: String,
    },
}

impl WireError {
    /// Convenience constructor for [`WireError::Io`].
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        WireError::Io {
            context: context.into(),
            source,
        }
    }

    /// Convenience constructor for [`WireError::Malformed`].
    pub fn malformed(message: impl Into<String>) -> Self {
        WireError::Malformed {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`WireError::SpecMismatch`].
    pub fn spec_mismatch(message: impl Into<String>) -> Self {
        WireError::SpecMismatch {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`WireError::Timeout`].
    pub fn timeout(context: impl Into<String>) -> Self {
        WireError::Timeout {
            context: context.into(),
        }
    }

    /// Convenience constructor for [`WireError::Closed`].
    pub fn closed(context: impl Into<String>) -> Self {
        WireError::Closed {
            context: context.into(),
        }
    }

    /// Convenience constructor for [`WireError::UnexpectedFrame`].
    pub fn unexpected(context: impl Into<String>, found: FrameType) -> Self {
        WireError::UnexpectedFrame {
            context: context.into(),
            found: found.name(),
        }
    }

    /// A stable lower-snake label naming the failure kind, used as the
    /// `reason` label on the server's reject counters.
    pub fn label(&self) -> &'static str {
        match self {
            WireError::Io { .. } => "io",
            WireError::BadMagic { .. } => "bad_magic",
            WireError::UnsupportedVersion { .. } => "unsupported_version",
            WireError::UnknownFrameType { .. } => "unknown_frame_type",
            WireError::ReservedNonZero { .. } => "reserved_nonzero",
            WireError::Oversized { .. } => "oversized",
            WireError::Truncated { .. } => "truncated",
            WireError::ChecksumMismatch { .. } => "checksum_mismatch",
            WireError::Malformed { .. } => "malformed",
            WireError::SpecMismatch { .. } => "spec_mismatch",
            WireError::UnexpectedFrame { .. } => "unexpected_frame",
            WireError::Protocol(_) => "protocol",
            WireError::Timeout { .. } => "timeout",
            WireError::Closed { .. } => "closed",
            WireError::Remote { .. } => "remote",
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io { context, source } => write!(f, "wire i/o error ({context}): {source}"),
            WireError::BadMagic { found } => {
                write!(f, "not a wire frame: bad magic bytes {found:02x?}")
            }
            WireError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported wire version {found} (this peer speaks {supported})"
            ),
            WireError::UnknownFrameType { found } => {
                write!(f, "unknown frame type {found:#04x}")
            }
            WireError::ReservedNonZero { found } => {
                write!(f, "reserved header bytes are not zero: {found:02x?}")
            }
            WireError::Oversized { declared, max } => write!(
                f,
                "oversized frame: declares {declared} payload bytes, cap is {max}"
            ),
            WireError::Truncated {
                offset,
                needed,
                available,
            } => write!(
                f,
                "truncated frame: needed {needed} bytes at offset {offset}, only {available} available"
            ),
            WireError::ChecksumMismatch { stored, computed } => write!(
                f,
                "frame checksum mismatch: frame stores {stored:#018x} but contents hash to {computed:#018x}"
            ),
            WireError::Malformed { message } => write!(f, "malformed frame payload: {message}"),
            WireError::SpecMismatch { message } => write!(f, "wire spec mismatch: {message}"),
            WireError::UnexpectedFrame { context, found } => {
                write!(f, "unexpected {found} frame ({context})")
            }
            WireError::Protocol(e) => write!(f, "protocol rejected the decoded reports: {e}"),
            WireError::Timeout { context } => write!(f, "wire timeout: {context}"),
            WireError::Closed { context } => write!(f, "connection closed: {context}"),
            WireError::Remote { code, message } => {
                write!(f, "peer reported error {code}: {message}")
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io { source, .. } => Some(source),
            WireError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MdrrError> for WireError {
    fn from(e: MdrrError) -> Self {
        WireError::Protocol(e)
    }
}

/// Bounds-checked little-endian reader over a byte slice — the same
/// decode idiom as the snapshot format's cursor.  Never indexes, never
/// panics: every read reports [`WireError::Truncated`] with its offset.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        match self.bytes.get(self.pos..self.pos.saturating_add(n)) {
            Some(slice) => {
                self.pos += n;
                Ok(slice)
            }
            None => Err(WireError::Truncated {
                offset: self.pos,
                needed: n,
                available: self.bytes.len().saturating_sub(self.pos),
            }),
        }
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        for (dst, src) in out.iter_mut().zip(slice.iter()) {
            *dst = *src;
        }
        Ok(out)
    }

    fn take_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take_array::<2>()?))
    }

    fn take_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take_array::<4>()?))
    }

    fn take_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take_array::<8>()?))
    }
}

/// Decodes and validates a 20-byte frame header, returning the frame
/// type and declared payload length.  The length cap is enforced here —
/// before any payload bytes are read or buffered — so a hostile header
/// can never size an allocation.
pub fn decode_header(header: &[u8]) -> Result<(FrameType, usize), WireError> {
    let mut cur = Cursor::new(header);
    let magic = cur.take_array::<8>()?;
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let version = cur.take_u32()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion {
            found: version,
            supported: WIRE_VERSION,
        });
    }
    let [type_byte] = cur.take_array::<1>()?;
    let frame_type =
        FrameType::from_byte(type_byte).ok_or(WireError::UnknownFrameType { found: type_byte })?;
    let reserved = cur.take_array::<3>()?;
    if reserved != [0u8; 3] {
        return Err(WireError::ReservedNonZero { found: reserved });
    }
    let payload_len = cur.take_u32()?;
    if payload_len > MAX_WIRE_PAYLOAD {
        return Err(WireError::Oversized {
            declared: payload_len as u64,
            max: MAX_WIRE_PAYLOAD as u64,
        });
    }
    Ok((frame_type, payload_len as usize))
}

/// Encodes one complete frame: header, payload, trailing CRC.
///
/// # Errors
/// [`WireError::Oversized`] if the payload exceeds [`MAX_WIRE_PAYLOAD`].
pub fn encode_frame(frame_type: FrameType, payload: &[u8]) -> Result<Vec<u8>, WireError> {
    if payload.len() as u64 > MAX_WIRE_PAYLOAD as u64 {
        return Err(WireError::Oversized {
            declared: payload.len() as u64,
            max: MAX_WIRE_PAYLOAD as u64,
        });
    }
    let mut out = Vec::with_capacity(frame_len(payload.len()));
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.push(frame_type.as_byte());
    out.extend_from_slice(&[0u8; 3]);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc64(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    Ok(out)
}

/// Decodes one complete frame from `bytes` (which must hold exactly one
/// frame), verifying magic, version, type, reserved bytes, declared
/// length and the trailing CRC — in that order, so header corruption is
/// reported as the specific field it hit and everything else falls to
/// the checksum.  Returns the frame type and a view of the payload.
pub fn decode_frame(bytes: &[u8]) -> Result<(FrameType, &[u8]), WireError> {
    let header = bytes.get(..WIRE_HEADER_LEN).ok_or(WireError::Truncated {
        offset: 0,
        needed: WIRE_HEADER_LEN,
        available: bytes.len(),
    })?;
    let (frame_type, payload_len) = decode_header(header)?;
    let body_len = WIRE_HEADER_LEN + payload_len;
    let payload = bytes
        .get(WIRE_HEADER_LEN..body_len)
        .ok_or(WireError::Truncated {
            offset: bytes.len(),
            needed: body_len - bytes.len().min(body_len),
            available: bytes.len().saturating_sub(WIRE_HEADER_LEN),
        })?;
    let trailer = bytes
        .get(body_len..body_len + WIRE_TRAILER_LEN)
        .ok_or(WireError::Truncated {
            offset: bytes.len(),
            needed: WIRE_TRAILER_LEN,
            available: bytes.len().saturating_sub(body_len),
        })?;
    if bytes.len() != body_len + WIRE_TRAILER_LEN {
        return Err(WireError::malformed(format!(
            "{} trailing bytes after the frame",
            bytes.len() - (body_len + WIRE_TRAILER_LEN)
        )));
    }
    let mut stored_bytes = [0u8; 8];
    for (dst, src) in stored_bytes.iter_mut().zip(trailer.iter()) {
        *dst = *src;
    }
    let stored = u64::from_le_bytes(stored_bytes);
    let computed = crc64(bytes.get(..body_len).unwrap_or(bytes));
    if stored != computed {
        return Err(WireError::ChecksumMismatch { stored, computed });
    }
    Ok((frame_type, payload))
}

/// The payload view of a complete, already-validated frame buffer (as
/// filled by [`read_frame`]).  Empty for a buffer too short to be a
/// frame.
pub fn frame_payload(frame: &[u8]) -> &[u8] {
    let end = frame.len().saturating_sub(WIRE_TRAILER_LEN);
    frame.get(WIRE_HEADER_LEN..end).unwrap_or(&[])
}

// ---------------------------------------------------------------------------
// Typed payloads
// ---------------------------------------------------------------------------

/// The client's session-open payload: the schema and protocol spec it
/// encodes reports under.  The server refuses the session unless both
/// match its own exactly — a collector must never mix reports randomized
/// under different mechanisms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hello {
    /// The attribute schema the client encodes against.
    pub schema: Schema,
    /// The randomization mechanism the client encodes with.
    pub spec: ProtocolSpec,
}

/// The server's handshake reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HelloAck {
    /// How many shards the collector fans batches into (shard hints are
    /// taken modulo this).
    pub n_shards: usize,
    /// The backpressure window: how many batch frames the client may
    /// have in flight (sent but unacknowledged) at once.
    pub window: u32,
    /// The server's payload cap, so well-behaved clients can size their
    /// batches without tripping [`WireError::Oversized`].
    pub max_payload: u32,
}

/// The server's stats reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReply {
    /// Reports ingested and acknowledged since the server started.
    pub total_reports: u64,
    /// Number of shards.
    pub n_shards: usize,
    /// Reports per shard, in shard order.
    pub shard_reports: Vec<u64>,
    /// Indices of currently quarantined shards.
    pub quarantined: Vec<usize>,
}

/// Serializes a handshake/query payload as JSON bytes.
pub fn encode_json<T: Serialize>(what: &str, value: &T) -> Result<Vec<u8>, WireError> {
    match serde_json::to_string(value) {
        Ok(text) => Ok(text.into_bytes()),
        Err(e) => Err(WireError::malformed(format!("encode {what}: {e}"))),
    }
}

/// Parses a handshake/query payload from JSON bytes, reporting bad UTF-8
/// and bad JSON as [`WireError::Malformed`].
pub fn decode_json<T: serde::Deserialize>(what: &str, payload: &[u8]) -> Result<T, WireError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| WireError::malformed(format!("{what} payload is not UTF-8: {e}")))?;
    serde_json::from_str(text)
        .map_err(|e| WireError::malformed(format!("{what} payload does not parse: {e}")))
}

/// The fixed-size prefix of a decoded batch payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchHeader {
    /// The client's sequence number, echoed back in the ack.
    pub seq: u64,
    /// The client's shard hint; the server routes to `hint % n_shards`.
    pub shard: u32,
}

/// Encodes a [`ReportBatch`] as a batch payload: `seq` (u64), shard hint
/// (u32), channel count (u32), report count (u32), then the channel-major
/// `u32` codes — the columnar layout, byte for byte.
///
/// # Errors
/// [`WireError::Malformed`] for ragged channels, [`WireError::Oversized`]
/// if the encoded payload would exceed [`MAX_WIRE_PAYLOAD`].
pub fn encode_batch_payload(
    seq: u64,
    shard: u32,
    batch: &ReportBatch,
) -> Result<Vec<u8>, WireError> {
    let n_channels = batch.n_channels();
    let n_reports = batch.n_reports();
    let code_bytes = (n_channels as u64) * (n_reports as u64) * 4;
    let total = BATCH_PAYLOAD_HEADER_LEN as u64 + code_bytes;
    if total > MAX_WIRE_PAYLOAD as u64 {
        return Err(WireError::Oversized {
            declared: total,
            max: MAX_WIRE_PAYLOAD as u64,
        });
    }
    let mut out = Vec::with_capacity(total as usize);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&shard.to_le_bytes());
    out.extend_from_slice(&(n_channels as u32).to_le_bytes());
    out.extend_from_slice(&(n_reports as u32).to_le_bytes());
    for channel in batch.channels() {
        if channel.len() != n_reports {
            return Err(WireError::malformed(format!(
                "ragged batch: channel holds {} codes, expected {n_reports}",
                channel.len()
            )));
        }
        for &code in channel {
            out.extend_from_slice(&code.to_le_bytes());
        }
    }
    Ok(out)
}

/// Decodes a batch payload into a reusable [`ReportBatch`] shaped for the
/// server's protocol.  The declared channel count must match the batch's
/// and the declared code count must account for *exactly* the bytes
/// received — both verified before any buffer is grown, so attacker
/// -controlled counts never size an allocation beyond bytes actually on
/// the wire.
pub fn decode_batch_payload(
    payload: &[u8],
    out: &mut ReportBatch,
) -> Result<BatchHeader, WireError> {
    let mut cur = Cursor::new(payload);
    let seq = cur.take_u64()?;
    let shard = cur.take_u32()?;
    let n_channels = cur.take_u32()?;
    let n_reports = cur.take_u32()?;
    if n_channels as usize != out.n_channels() {
        return Err(WireError::spec_mismatch(format!(
            "batch declares {n_channels} channels but the protocol has {}",
            out.n_channels()
        )));
    }
    let code_bytes = (n_channels as u64)
        .checked_mul(n_reports as u64)
        .and_then(|codes| codes.checked_mul(4))
        .ok_or_else(|| WireError::malformed("batch code count overflows".to_string()))?;
    let available = (payload.len() - BATCH_PAYLOAD_HEADER_LEN.min(payload.len())) as u64;
    if code_bytes != available {
        return Err(WireError::malformed(format!(
            "batch declares {code_bytes} code bytes but the payload carries {available}"
        )));
    }
    out.clear();
    let per_channel = (n_reports as usize).saturating_mul(4);
    for channel in out.channels_mut() {
        let raw = cur.take(per_channel)?;
        channel.extend(raw.chunks_exact(4).map(|chunk| {
            let mut bytes = [0u8; 4];
            for (dst, src) in bytes.iter_mut().zip(chunk.iter()) {
                *dst = *src;
            }
            u32::from_le_bytes(bytes)
        }));
    }
    Ok(BatchHeader { seq, shard })
}

/// Rewrites the sequence number inside a pre-encoded *batch frame*
/// (header + payload + CRC, as produced by [`encode_frame`] over
/// [`encode_batch_payload`]) and recomputes the trailing CRC.  This lets
/// a sender reuse one encoded frame across many sends — the remote
/// benchmark's hot path.
pub fn set_batch_seq(frame: &mut [u8], seq: u64) -> Result<(), WireError> {
    let available = frame.len().saturating_sub(WIRE_HEADER_LEN);
    let seq_slot =
        frame
            .get_mut(WIRE_HEADER_LEN..WIRE_HEADER_LEN + 8)
            .ok_or(WireError::Truncated {
                offset: WIRE_HEADER_LEN,
                needed: 8,
                available,
            })?;
    for (dst, src) in seq_slot.iter_mut().zip(seq.to_le_bytes().iter()) {
        *dst = *src;
    }
    let body_len = frame
        .len()
        .checked_sub(WIRE_TRAILER_LEN)
        .ok_or(WireError::Truncated {
            offset: 0,
            needed: WIRE_TRAILER_LEN,
            available: frame.len(),
        })?;
    let crc = crc64(frame.get(..body_len).unwrap_or(frame));
    if let Some(trailer) = frame.get_mut(body_len..) {
        for (dst, src) in trailer.iter_mut().zip(crc.to_le_bytes().iter()) {
            *dst = *src;
        }
    }
    Ok(())
}

/// Encodes a [`FrameType::BatchAck`] payload: `seq`, then the server's
/// running acknowledged-report total.
pub fn encode_batch_ack(seq: u64, total_reports: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&total_reports.to_le_bytes());
    out
}

/// Decodes a [`FrameType::BatchAck`] payload into `(seq, total_reports)`.
pub fn decode_batch_ack(payload: &[u8]) -> Result<(u64, u64), WireError> {
    let mut cur = Cursor::new(payload);
    let seq = cur.take_u64()?;
    let total = cur.take_u64()?;
    if payload.len() != 16 {
        return Err(WireError::malformed(format!(
            "batch ack payload is {} bytes, expected 16",
            payload.len()
        )));
    }
    Ok((seq, total))
}

/// Encodes a [`FrameType::GoodbyeAck`] payload: the final report total.
pub fn encode_goodbye_ack(total_reports: u64) -> Vec<u8> {
    total_reports.to_le_bytes().to_vec()
}

/// Decodes a [`FrameType::GoodbyeAck`] payload.
pub fn decode_goodbye_ack(payload: &[u8]) -> Result<u64, WireError> {
    let mut cur = Cursor::new(payload);
    let total = cur.take_u64()?;
    if payload.len() != 8 {
        return Err(WireError::malformed(format!(
            "goodbye ack payload is {} bytes, expected 8",
            payload.len()
        )));
    }
    Ok(total)
}

/// Encodes a [`FrameType::Error`] payload: a `u16` [`error_code`] plus a
/// UTF-8 message.
pub fn encode_error_payload(code: u16, message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + message.len());
    out.extend_from_slice(&code.to_le_bytes());
    out.extend_from_slice(message.as_bytes());
    out
}

/// Decodes a [`FrameType::Error`] payload into `(code, message)`.
pub fn decode_error_payload(payload: &[u8]) -> Result<(u16, String), WireError> {
    let mut cur = Cursor::new(payload);
    let code = cur.take_u16()?;
    let rest = cur.take(payload.len().saturating_sub(2))?;
    let message = std::str::from_utf8(rest)
        .map_err(|e| WireError::malformed(format!("error message is not UTF-8: {e}")))?;
    Ok((code, message.to_string()))
}

// ---------------------------------------------------------------------------
// Socket I/O
// ---------------------------------------------------------------------------

/// Encodes and writes one frame, returning the bytes written.
pub fn write_frame<W: Write>(
    writer: &mut W,
    frame_type: FrameType,
    payload: &[u8],
) -> Result<usize, WireError> {
    let bytes = encode_frame(frame_type, payload)?;
    write_raw_frame(writer, &bytes)?;
    Ok(bytes.len())
}

/// Writes an already-encoded frame.
pub fn write_raw_frame<W: Write>(writer: &mut W, frame: &[u8]) -> Result<(), WireError> {
    writer
        .write_all(frame)
        .map_err(|e| WireError::io("write frame", e))?;
    writer.flush().map_err(|e| WireError::io("flush frame", e))
}

/// Reads one complete frame into `buf` (cleared first), validating the
/// header as soon as its 20 bytes arrive — so an oversized or alien
/// length field is rejected before a single payload byte is buffered —
/// and the CRC once the frame is complete.
///
/// `wait(bytes_so_far)` is consulted every time the underlying read
/// blocks past its poll timeout (`WouldBlock`/`TimedOut`); returning an
/// error aborts the read, which is how callers enforce drain flags, idle
/// budgets and mid-frame (slowloris) deadlines with an injected clock.
///
/// Returns `Ok(None)` on a clean EOF *between* frames; EOF mid-frame is
/// [`WireError::Closed`].  On `Ok(Some(_))`, `buf` holds the whole
/// validated frame and [`frame_payload`] views its payload.
pub fn read_frame<R: Read>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    wait: &mut dyn FnMut(usize) -> Result<(), WireError>,
) -> Result<Option<FrameType>, WireError> {
    buf.clear();
    if !fill(reader, buf, WIRE_HEADER_LEN, wait)? {
        return Ok(None);
    }
    let (frame_type, payload_len) = decode_header(buf)?;
    fill(reader, buf, frame_len(payload_len), wait)?;
    decode_frame(buf)?;
    Ok(Some(frame_type))
}

/// Appends bytes from `reader` until `buf` holds `target` bytes.
/// Returns `Ok(false)` on EOF before the first byte (clean close); EOF
/// after that is [`WireError::Closed`].  Never reads past `target`, so
/// back-to-back frames on one stream are never split.
fn fill<R: Read>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    target: usize,
    wait: &mut dyn FnMut(usize) -> Result<(), WireError>,
) -> Result<bool, WireError> {
    let mut chunk = [0u8; 8192];
    while buf.len() < target {
        let want = (target - buf.len()).min(chunk.len());
        let dst = match chunk.get_mut(..want) {
            Some(dst) => dst,
            None => return Err(WireError::malformed("internal: read chunk sizing")),
        };
        match reader.read(dst) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(false);
                }
                return Err(WireError::closed(format!(
                    "peer closed mid-frame after {} of {target} bytes",
                    buf.len()
                )));
            }
            Ok(n) => buf.extend_from_slice(dst.get(..n).unwrap_or(dst)),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                wait(buf.len())?;
            }
            Err(e) => return Err(WireError::io("read frame", e)),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Report;
    use mdrr_data::Attribute;
    use mdrr_protocols::RandomizationLevel;

    fn sample_batch() -> ReportBatch {
        let mut batch = ReportBatch::new(3).unwrap();
        batch.push(&Report::new(vec![1, 0, 2])).unwrap();
        batch.push(&Report::new(vec![0, 1, 3])).unwrap();
        batch
    }

    #[test]
    fn frame_round_trips() {
        for (frame_type, payload) in [
            (FrameType::Hello, b"{}".to_vec()),
            (FrameType::Goodbye, Vec::new()),
            (FrameType::Batch, vec![7u8; 100]),
        ] {
            let frame = encode_frame(frame_type, &payload).unwrap();
            assert_eq!(frame.len(), frame_len(payload.len()));
            let (decoded_type, decoded_payload) = decode_frame(&frame).unwrap();
            assert_eq!(decoded_type, frame_type);
            assert_eq!(decoded_payload, &payload[..]);
        }
    }

    #[test]
    fn frame_type_bytes_round_trip_and_unknowns_are_none() {
        for t in FrameType::ALL {
            assert_eq!(FrameType::from_byte(t.as_byte()), Some(t));
            assert!(!t.name().is_empty());
        }
        assert_eq!(FrameType::from_byte(0), None);
        assert_eq!(FrameType::from_byte(0xEE), None);
    }

    #[test]
    fn batch_payload_round_trips() {
        let batch = sample_batch();
        let payload = encode_batch_payload(42, 3, &batch).unwrap();
        assert_eq!(payload.len(), BATCH_PAYLOAD_HEADER_LEN + 3 * 2 * 4);
        let mut out = ReportBatch::new(3).unwrap();
        let header = decode_batch_payload(&payload, &mut out).unwrap();
        assert_eq!(header, BatchHeader { seq: 42, shard: 3 });
        assert_eq!(out, batch);
        // Decoding into a reused batch replaces its contents.
        let header = decode_batch_payload(&payload, &mut out).unwrap();
        assert_eq!(header.seq, 42);
        assert_eq!(out, batch);
    }

    #[test]
    fn batch_payload_channel_mismatch_is_typed() {
        let payload = encode_batch_payload(1, 0, &sample_batch()).unwrap();
        let mut wrong = ReportBatch::new(2).unwrap();
        assert!(matches!(
            decode_batch_payload(&payload, &mut wrong),
            Err(WireError::SpecMismatch { .. })
        ));
    }

    #[test]
    fn batch_payload_size_lies_are_typed() {
        let batch = sample_batch();
        let mut payload = encode_batch_payload(1, 0, &batch).unwrap();
        // Declare one more report than the bytes carry.
        payload[16..20].copy_from_slice(&3u32.to_le_bytes());
        let mut out = ReportBatch::new(3).unwrap();
        assert!(matches!(
            decode_batch_payload(&payload, &mut out),
            Err(WireError::Malformed { .. })
        ));
        // Overflowing count fields error before any allocation.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&0u64.to_le_bytes());
        hostile.extend_from_slice(&0u32.to_le_bytes());
        hostile.extend_from_slice(&3u32.to_le_bytes());
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_batch_payload(&hostile, &mut out),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn set_batch_seq_keeps_the_frame_valid() {
        let batch = sample_batch();
        let payload = encode_batch_payload(0, 5, &batch).unwrap();
        let mut frame = encode_frame(FrameType::Batch, &payload).unwrap();
        set_batch_seq(&mut frame, 99).unwrap();
        let (frame_type, decoded) = decode_frame(&frame).unwrap();
        assert_eq!(frame_type, FrameType::Batch);
        let mut out = ReportBatch::new(3).unwrap();
        let header = decode_batch_payload(decoded, &mut out).unwrap();
        assert_eq!(header, BatchHeader { seq: 99, shard: 5 });
        assert_eq!(out, batch);
    }

    #[test]
    fn ack_error_and_goodbye_payloads_round_trip() {
        assert_eq!(
            decode_batch_ack(&encode_batch_ack(7, 8192)).unwrap(),
            (7, 8192)
        );
        assert_eq!(decode_goodbye_ack(&encode_goodbye_ack(123)).unwrap(), 123);
        let (code, message) =
            decode_error_payload(&encode_error_payload(error_code::DRAINING, "drain")).unwrap();
        assert_eq!((code, message.as_str()), (error_code::DRAINING, "drain"));
        assert!(decode_batch_ack(&[0u8; 17]).is_err());
        assert!(decode_goodbye_ack(&[0u8; 9]).is_err());
        assert!(decode_error_payload(&[1u8]).is_err());
    }

    #[test]
    fn hello_json_round_trips() {
        let schema = Schema::new(vec![
            Attribute::indexed("A", 3).unwrap(),
            Attribute::indexed("B", 2).unwrap(),
        ])
        .unwrap();
        let hello = Hello {
            schema,
            spec: ProtocolSpec::independent(RandomizationLevel::KeepProbability(0.7)),
        };
        let payload = encode_json("hello", &hello).unwrap();
        let decoded: Hello = decode_json("hello", &payload).unwrap();
        assert_eq!(decoded, hello);
        assert!(matches!(
            decode_json::<Hello>("hello", b"not json"),
            Err(WireError::Malformed { .. })
        ));
        assert!(matches!(
            decode_json::<Hello>("hello", &[0xFF, 0xFE]),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn header_corruption_is_field_specific() {
        let frame = encode_frame(FrameType::Goodbye, &[]).unwrap();
        let mut bad = frame.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_frame(&bad),
            Err(WireError::BadMagic { .. })
        ));
        let mut bad = frame.clone();
        bad[8] = 99;
        assert!(matches!(
            decode_frame(&bad),
            Err(WireError::UnsupportedVersion { found: 99, .. })
        ));
        let mut bad = frame.clone();
        bad[12] = 0xEE;
        assert!(matches!(
            decode_frame(&bad),
            Err(WireError::UnknownFrameType { found: 0xEE })
        ));
        let mut bad = frame.clone();
        bad[13] = 1;
        assert!(matches!(
            decode_frame(&bad),
            Err(WireError::ReservedNonZero { .. })
        ));
        let mut bad = frame;
        bad[16..20].copy_from_slice(&(MAX_WIRE_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            decode_frame(&bad),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn read_frame_round_trips_over_a_reader_and_reports_clean_eof() {
        let a = encode_frame(FrameType::StatsQuery, &[]).unwrap();
        let b = encode_frame(FrameType::Goodbye, &[]).unwrap();
        let mut stream: &[u8] = &[a.clone(), b.clone()].concat();
        let mut buf = Vec::new();
        let mut wait = |_: usize| Ok(());
        assert_eq!(
            read_frame(&mut stream, &mut buf, &mut wait).unwrap(),
            Some(FrameType::StatsQuery)
        );
        assert_eq!(buf, a);
        assert_eq!(frame_payload(&buf), b"");
        assert_eq!(
            read_frame(&mut stream, &mut buf, &mut wait).unwrap(),
            Some(FrameType::Goodbye)
        );
        assert_eq!(
            read_frame(&mut stream, &mut buf, &mut wait).unwrap(),
            None,
            "clean EOF between frames is Ok(None)"
        );
        // EOF mid-frame is a typed Closed error.
        let mut partial: &[u8] = &b[..10];
        assert!(matches!(
            read_frame(&mut partial, &mut buf, &mut wait),
            Err(WireError::Closed { .. })
        ));
    }

    #[test]
    fn display_names_every_failure_mode() {
        let cases: Vec<(WireError, &str)> = vec![
            (WireError::io("dial", io::Error::other("refused")), "dial"),
            (
                WireError::BadMagic {
                    found: *b"NOTAWIRE",
                },
                "magic",
            ),
            (
                WireError::UnsupportedVersion {
                    found: 9,
                    supported: 1,
                },
                "version 9",
            ),
            (WireError::UnknownFrameType { found: 0xEE }, "0xee"),
            (WireError::ReservedNonZero { found: [1, 0, 0] }, "reserved"),
            (
                WireError::Oversized {
                    declared: 1 << 40,
                    max: 1 << 24,
                },
                "oversized",
            ),
            (
                WireError::Truncated {
                    offset: 12,
                    needed: 8,
                    available: 3,
                },
                "offset 12",
            ),
            (
                WireError::ChecksumMismatch {
                    stored: 1,
                    computed: 2,
                },
                "checksum",
            ),
            (WireError::malformed("ragged"), "ragged"),
            (WireError::spec_mismatch("joint vs independent"), "joint"),
            (
                WireError::unexpected("awaiting hello ack", FrameType::Stats),
                "stats",
            ),
            (
                WireError::Protocol(MdrrError::config("shard 9 out of range")),
                "shard 9",
            ),
            (WireError::timeout("ack wait"), "ack wait"),
            (WireError::closed("mid-frame"), "mid-frame"),
            (
                WireError::Remote {
                    code: error_code::DRAINING,
                    message: "draining".to_string(),
                },
                "draining",
            ),
        ];
        for (error, needle) in cases {
            assert!(
                error.to_string().contains(needle),
                "{error} should mention {needle}"
            );
            assert!(!error.label().is_empty());
        }
    }

    #[test]
    fn io_and_protocol_errors_expose_their_source() {
        use std::error::Error;
        assert!(WireError::io("read", io::Error::other("x"))
            .source()
            .is_some());
        assert!(WireError::Protocol(MdrrError::config("x"))
            .source()
            .is_some());
        assert!(WireError::timeout("x").source().is_none());
    }
}
