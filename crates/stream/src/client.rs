//! The client-encoder SDK: `encode → frame → send` against a collector
//! daemon, with windowed backpressure and retrying reconnect.
//!
//! A [`WireClient`] owns one TCP connection to an `mdrr-serve` collector.
//! It dials with the storage layer's bounded-backoff
//! [`RetryPolicy`] (connection-refused and timeouts are transient —
//! the server may still be binding), handshakes schema + spec, then
//! pipelines [`ReportBatch`] frames up to the server-advertised
//! backpressure *window*: at most `window` batches may be in flight
//! (sent but unacknowledged) at once, so a slow collector throttles the
//! client instead of buffering unboundedly on either side.  All waiting
//! — dial backoff, ack deadlines — goes through an injected
//! [`Clock`], never ambient time.
//!
//! An acknowledgement is the server's promise that the batch's reports
//! are counted in the collector (and therefore present in any later
//! drain checkpoint); [`WireClient::acked_reports`] is the client-side
//! ledger the fault tests audit against restored checkpoints.

use crate::batch::ReportBatch;
use crate::wire::{self, FrameType, Hello, HelloAck, StatsReply, WireError};
use mdrr_data::Schema;
use mdrr_obs::{Clock, Histogram};
use mdrr_protocols::ProtocolSpec;
use mdrr_store::{RetryPolicy, StoreError};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Tuning knobs for a [`WireClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// How dialing (and [`WireClient::reconnect`]) retries transient
    /// connect failures.
    pub retry: RetryPolicy,
    /// Budget for any single server reply (handshake, ack, stats), in
    /// injected-clock nanoseconds.
    pub ack_timeout_nanos: u64,
    /// Socket poll granularity: how long a blocking read waits before
    /// the deadline is re-checked.
    pub poll_interval_nanos: u64,
    /// Optional client-side cap on the server-advertised window.
    pub window_cap: Option<u32>,
}

impl Default for ClientConfig {
    /// Default-policy dialing, a 5 s reply budget, 10 ms polls, and the
    /// server's window as advertised.
    fn default() -> Self {
        ClientConfig {
            retry: RetryPolicy::default(),
            ack_timeout_nanos: 5_000_000_000,
            poll_interval_nanos: 10_000_000,
            window_cap: None,
        }
    }
}

/// One batch sent but not yet acknowledged.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    seq: u64,
    reports: u64,
    sent_at_nanos: u64,
}

/// A connection to a collector daemon (see [`crate::wire`] for the frame
/// format and `docs/WIRE.md` for the byte-level contract).
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
    addr: SocketAddr,
    hello: Hello,
    config: ClientConfig,
    clock: Arc<dyn Clock>,
    window: u32,
    n_shards: usize,
    next_seq: u64,
    inflight: VecDeque<InFlight>,
    acked_reports: u64,
    server_total: u64,
    ack_latency: Option<Arc<Histogram>>,
    buf: Vec<u8>,
}

fn store_to_wire(e: StoreError) -> WireError {
    match e {
        StoreError::Io {
            context, source, ..
        } => WireError::Io { context, source },
        other => WireError::io("dial collector", io::Error::other(other.to_string())),
    }
}

fn dial(
    addr: &SocketAddr,
    retry: &RetryPolicy,
    clock: &dyn Clock,
    poll_interval_nanos: u64,
) -> Result<TcpStream, WireError> {
    let (result, _attempts) = retry.run(clock, || {
        TcpStream::connect(addr).map_err(|e| match e.kind() {
            io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::Interrupted
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut => StoreError::io_transient("dial collector", e),
            _ => StoreError::io_permanent("dial collector", e),
        })
    });
    let stream = result.map_err(store_to_wire)?;
    stream
        .set_nodelay(true)
        .map_err(|e| WireError::io("set nodelay", e))?;
    stream
        .set_read_timeout(Some(Duration::from_nanos(poll_interval_nanos.max(1))))
        .map_err(|e| WireError::io("set read timeout", e))?;
    Ok(stream)
}

impl WireClient {
    /// Dials `addr` (retrying transient failures under
    /// `config.retry` with backoff on `clock`), then handshakes the
    /// given schema and spec.  Fails with [`WireError::Remote`] if the
    /// server speaks a different spec, [`WireError::Io`] if dialing is
    /// exhausted.
    pub fn connect(
        addr: SocketAddr,
        schema: Schema,
        spec: ProtocolSpec,
        config: ClientConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, WireError> {
        let stream = dial(
            &addr,
            &config.retry,
            clock.as_ref(),
            config.poll_interval_nanos,
        )?;
        let mut client = WireClient {
            stream,
            addr,
            hello: Hello { schema, spec },
            config,
            clock,
            window: 1,
            n_shards: 1,
            next_seq: 0,
            inflight: VecDeque::new(),
            acked_reports: 0,
            server_total: 0,
            ack_latency: None,
            buf: Vec::new(),
        };
        client.handshake()?;
        Ok(client)
    }

    fn handshake(&mut self) -> Result<(), WireError> {
        let payload = wire::encode_json("hello", &self.hello)?;
        wire::write_frame(&mut self.stream, FrameType::Hello, &payload)?;
        self.expect_frame("awaiting hello ack", FrameType::HelloAck)?;
        let ack: HelloAck = wire::decode_json("hello ack", wire::frame_payload(&self.buf))?;
        let cap = self.config.window_cap.unwrap_or(u32::MAX);
        self.window = ack.window.min(cap).max(1);
        self.n_shards = ack.n_shards.max(1);
        Ok(())
    }

    /// Drops the broken connection, re-dials under the retry policy and
    /// re-handshakes.  Any unacknowledged batches are forgotten — they
    /// were never promised durable, and the caller owns re-sending them.
    pub fn reconnect(&mut self) -> Result<(), WireError> {
        self.stream = dial(
            &self.addr,
            &self.config.retry,
            self.clock.as_ref(),
            self.config.poll_interval_nanos,
        )?;
        self.inflight.clear();
        self.handshake()
    }

    /// The effective backpressure window (server-advertised, capped by
    /// [`ClientConfig::window_cap`]).
    pub fn window(&self) -> u32 {
        self.window
    }

    /// The server's shard count, from the handshake.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Total reports in batches the server has acknowledged to *this*
    /// client — the audit ledger for zero-accepted-loss checks.
    pub fn acked_reports(&self) -> u64 {
        self.acked_reports
    }

    /// The server's running report total as of the last acknowledgement.
    pub fn server_total(&self) -> u64 {
        self.server_total
    }

    /// Batches currently in flight (sent, not yet acknowledged).
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Installs a histogram that records per-batch ack latency (send →
    /// ack, in injected-clock nanoseconds).
    pub fn set_ack_latency(&mut self, histogram: Arc<Histogram>) {
        self.ack_latency = Some(histogram);
    }

    /// Reads one server reply within the ack budget, surfacing a peer
    /// [`FrameType::Error`] frame as [`WireError::Remote`] and anything
    /// other than `want` as [`WireError::UnexpectedFrame`].
    fn expect_frame(&mut self, context: &str, want: FrameType) -> Result<(), WireError> {
        let deadline = self
            .clock
            .now_nanos()
            .saturating_add(self.config.ack_timeout_nanos);
        let clock = Arc::clone(&self.clock);
        let ctx = context.to_string();
        let mut wait = move |_bytes: usize| {
            if clock.now_nanos() >= deadline {
                Err(WireError::timeout(ctx.clone()))
            } else {
                Ok(())
            }
        };
        let frame_type = match wire::read_frame(&mut self.stream, &mut self.buf, &mut wait)? {
            Some(frame_type) => frame_type,
            None => return Err(WireError::closed(format!("server closed while {context}"))),
        };
        if frame_type == FrameType::Error {
            let (code, message) = wire::decode_error_payload(wire::frame_payload(&self.buf))?;
            return Err(WireError::Remote { code, message });
        }
        if frame_type != want {
            return Err(WireError::unexpected(context, frame_type));
        }
        Ok(())
    }

    /// Blocks (draining acks) until the window has room for one more
    /// in-flight batch.
    fn await_window(&mut self) -> Result<(), WireError> {
        while self.inflight.len() >= self.window as usize {
            self.wait_ack()?;
        }
        Ok(())
    }

    /// Encodes and sends one batch with the given shard hint, first
    /// draining acknowledgements until the window has room.  Returns the
    /// batch's sequence number.
    pub fn send_batch(&mut self, shard: u32, batch: &ReportBatch) -> Result<u64, WireError> {
        let payload = wire::encode_batch_payload(self.next_seq, shard, batch)?;
        self.await_window()?;
        wire::write_frame(&mut self.stream, FrameType::Batch, &payload)?;
        self.note_sent(batch.n_reports() as u64)
    }

    /// Sends a pre-encoded batch *frame* (from [`wire::encode_frame`]
    /// over [`wire::encode_batch_payload`]), patching its sequence
    /// number in place — the zero-re-encode hot path of the remote
    /// benchmark.  `reports` must be the batch's report count (it is
    /// only used for the [`WireClient::acked_reports`] ledger).
    pub fn send_raw_batch(&mut self, frame: &mut [u8], reports: u64) -> Result<u64, WireError> {
        wire::set_batch_seq(frame, self.next_seq)?;
        self.await_window()?;
        wire::write_raw_frame(&mut self.stream, frame)?;
        self.note_sent(reports)
    }

    fn note_sent(&mut self, reports: u64) -> Result<u64, WireError> {
        let seq = self.next_seq;
        self.inflight.push_back(InFlight {
            seq,
            reports,
            sent_at_nanos: self.clock.now_nanos(),
        });
        self.next_seq = self.next_seq.wrapping_add(1);
        Ok(seq)
    }

    /// Waits for the next acknowledgement (oldest in-flight batch) and
    /// returns its sequence number.  Acks arrive strictly in send order;
    /// anything else is [`WireError::Malformed`].
    pub fn wait_ack(&mut self) -> Result<u64, WireError> {
        self.expect_frame("awaiting batch ack", FrameType::BatchAck)?;
        let (seq, total) = wire::decode_batch_ack(wire::frame_payload(&self.buf))?;
        let head = self
            .inflight
            .pop_front()
            .ok_or_else(|| WireError::malformed("ack arrived with nothing in flight"))?;
        if head.seq != seq {
            return Err(WireError::malformed(format!(
                "ack for seq {seq}, expected {}",
                head.seq
            )));
        }
        if let Some(histogram) = &self.ack_latency {
            histogram.record(self.clock.now_nanos().saturating_sub(head.sent_at_nanos));
        }
        self.acked_reports = self.acked_reports.saturating_add(head.reports);
        self.server_total = total;
        Ok(seq)
    }

    /// Drains every outstanding acknowledgement.
    pub fn flush(&mut self) -> Result<(), WireError> {
        while !self.inflight.is_empty() {
            self.wait_ack()?;
        }
        Ok(())
    }

    /// Queries the server's ingestion stats (flushing outstanding acks
    /// first, since replies are processed in order).
    pub fn stats(&mut self) -> Result<StatsReply, WireError> {
        self.flush()?;
        wire::write_frame(&mut self.stream, FrameType::StatsQuery, &[])?;
        self.expect_frame("awaiting stats", FrameType::Stats)?;
        wire::decode_json("stats", wire::frame_payload(&self.buf))
    }

    /// Fetches a point-in-time snapshot of the server's merged
    /// accumulator as `mdrr-store` snapshot bytes (parse with
    /// `mdrr_store::Snapshot::from_bytes`).
    pub fn snapshot_bytes(&mut self) -> Result<Vec<u8>, WireError> {
        self.flush()?;
        wire::write_frame(&mut self.stream, FrameType::SnapshotQuery, &[])?;
        self.expect_frame("awaiting snapshot", FrameType::Snapshot)?;
        Ok(wire::frame_payload(&self.buf).to_vec())
    }

    /// Closes the session cleanly: flushes acknowledgements, says
    /// goodbye, and returns the server's final report total.
    pub fn close(mut self) -> Result<u64, WireError> {
        self.flush()?;
        wire::write_frame(&mut self.stream, FrameType::Goodbye, &[])?;
        self.expect_frame("awaiting goodbye ack", FrameType::GoodbyeAck)?;
        wire::decode_goodbye_ack(wire::frame_payload(&self.buf))
    }
}
