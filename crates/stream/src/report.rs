//! Client-side reports: the compact wire format of the streaming path.
//!
//! Every protocol, seen from the collector, is a set of *channels*: for
//! RR-Independent one channel per attribute, for RR-Joint a single channel
//! over the full joint domain, for RR-Clusters one channel per cluster
//! (the [`mdrr_protocols::Protocol::channel_sizes`] topology).  A client
//! locally randomizes her record into a [`Report`] carrying one code per
//! channel — [`Report::encode`] is `Protocol::encode_record` plus the
//! wrapping — and the collector only ever needs the per-channel count
//! vectors of those codes (the sufficient statistics), never the reports
//! themselves.

use crate::error::MdrrError;
use mdrr_protocols::Protocol;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// One client's randomized report: one randomized code per channel of the
/// protocol, in channel order.  This is the compact wire format of the
/// paper's deployment shape — a few bytes per respondent instead of a
/// microdata row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    codes: Vec<u32>,
}

impl Report {
    /// Wraps raw channel codes (no validation; the accumulator validates
    /// against its channel layout on ingestion).
    pub fn new(codes: Vec<u32>) -> Self {
        Report { codes }
    }

    /// Client-side encoding: randomizes one true record into its report
    /// with any protocol — static or `dyn`.
    ///
    /// # Errors
    /// Propagates the protocol's validation and randomization errors.
    pub fn encode(
        protocol: &dyn Protocol,
        record: &[u32],
        rng: &mut dyn RngCore,
    ) -> Result<Self, MdrrError> {
        Ok(Report::new(protocol.encode_record(record, rng)?))
    }

    /// The randomized code of each channel, in channel order.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Number of channels the report covers.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the report carries no codes.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdrr_data::{Attribute, Schema};
    use mdrr_protocols::{Clustering, ProtocolSpec, RandomizationLevel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::indexed("A", 3).unwrap(),
            Attribute::indexed("B", 2).unwrap(),
        ])
        .unwrap()
    }

    fn specs() -> Vec<ProtocolSpec> {
        let level = RandomizationLevel::KeepProbability(0.7);
        vec![
            ProtocolSpec::independent(level.clone()),
            ProtocolSpec::joint(level.clone()),
            ProtocolSpec::clusters(level, Clustering::new(vec![vec![0], vec![1]], 2).unwrap()),
        ]
    }

    #[test]
    fn encoded_reports_have_one_code_per_channel() {
        let mut rng = StdRng::seed_from_u64(1);
        for spec in specs() {
            let p = spec.build(&schema()).unwrap();
            let report = Report::encode(&*p, &[2, 1], &mut rng).unwrap();
            assert_eq!(report.len(), p.channel_sizes().len());
            assert!(!report.is_empty());
            for (&code, size) in report.codes().iter().zip(p.channel_sizes()) {
                assert!((code as usize) < size);
            }
            assert!(Report::encode(&*p, &[3, 0], &mut rng).is_err());
            assert!(Report::encode(&*p, &[0], &mut rng).is_err());
        }
    }

    #[test]
    fn decode_inverts_the_channel_encoding() {
        let mut rng = StdRng::seed_from_u64(5);
        for spec in specs() {
            let p = spec.build(&schema()).unwrap();
            for record in [[0u32, 0], [2, 1], [1, 0]] {
                // The decoded record is always schema-valid…
                let report = Report::encode(&*p, &record, &mut rng).unwrap();
                let decoded = p.decode_report(report.codes()).unwrap();
                assert!(p.schema().validate_record(&decoded).is_ok());
            }
            assert!(p.decode_report(&[]).is_err());
            assert!(p.decode_report(&[99, 99]).is_err());
        }

        // …and with identity randomization decode(encode(x)) == x exactly.
        let p = ProtocolSpec::Joint {
            level: RandomizationLevel::KeepProbability(1.0),
            max_domain: None,
            equivalent_risk: false,
        }
        .build(&schema())
        .unwrap();
        let report = Report::encode(&*p, &[2, 1], &mut rng).unwrap();
        assert_eq!(p.decode_report(report.codes()).unwrap(), vec![2, 1]);
    }
}
