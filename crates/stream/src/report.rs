//! Client-side reports and the protocol-agnostic streaming view of the
//! paper's three release mechanisms.
//!
//! Every protocol, seen from the collector, is a set of *channels*: for
//! RR-Independent one channel per attribute, for RR-Joint a single channel
//! over the full joint domain, for RR-Clusters one channel per cluster.  A
//! client locally randomizes her record into a [`Report`] carrying one code
//! per channel; the collector only ever needs the per-channel count vectors
//! of those codes (the sufficient statistics), never the reports
//! themselves.

use crate::error::StreamError;
use mdrr_data::Schema;
use mdrr_protocols::{
    Assignment, ClustersRelease, FrequencyEstimator, IndependentRelease, JointRelease,
    ProtocolError, RRClusters, RRIndependent, RRJoint,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One client's randomized report: one randomized code per channel of the
/// protocol, in channel order.  This is the compact wire format of the
/// paper's deployment shape — a few bytes per respondent instead of a
/// microdata row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    codes: Vec<u32>,
}

impl Report {
    /// Wraps raw channel codes (no validation; the accumulator validates
    /// against its channel layout on ingestion).
    pub fn new(codes: Vec<u32>) -> Self {
        Report { codes }
    }

    /// The randomized code of each channel, in channel order.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Number of channels the report covers.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the report carries no codes.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }
}

/// A protocol configured for streaming ingestion: the uniform
/// encode/estimate interface over the paper's three mechanisms.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamProtocol {
    /// Protocol 1: one channel per attribute.
    Independent(RRIndependent),
    /// Protocol 2: a single channel over the full joint domain.
    Joint(RRJoint),
    /// RR-Clusters: one channel per cluster.
    Clusters(RRClusters),
}

impl StreamProtocol {
    /// The schema the protocol was configured for.
    pub fn schema(&self) -> &Schema {
        match self {
            StreamProtocol::Independent(p) => p.schema(),
            StreamProtocol::Joint(p) => p.schema(),
            StreamProtocol::Clusters(p) => p.schema(),
        }
    }

    /// The domain size of each channel, in channel order.
    pub fn channel_sizes(&self) -> Vec<usize> {
        match self {
            StreamProtocol::Independent(p) => p.matrices().iter().map(|m| m.size()).collect(),
            StreamProtocol::Joint(p) => vec![p.domain().size()],
            StreamProtocol::Clusters(p) => p.domains().iter().map(|d| d.size()).collect(),
        }
    }

    /// Client-side encoding: randomizes one true record into its report.
    ///
    /// # Errors
    /// Propagates the protocol's validation and randomization errors.
    pub fn encode_record(&self, record: &[u32], rng: &mut impl Rng) -> Result<Report, StreamError> {
        let codes = match self {
            StreamProtocol::Independent(p) => p.encode_record(record, rng)?,
            StreamProtocol::Joint(p) => vec![p.encode_record(record, rng)?],
            StreamProtocol::Clusters(p) => p.encode_record(record, rng)?,
        };
        Ok(Report::new(codes))
    }

    /// Decodes a report back into the randomized microdata record the
    /// batch collector would have received (the inverse of the channel
    /// encoding; the randomization itself is of course not invertible).
    ///
    /// # Errors
    /// Returns [`StreamError::InvalidConfiguration`] if the report's arity
    /// or codes do not match the protocol's channels.
    pub fn decode_report(&self, report: &Report) -> Result<Vec<u32>, StreamError> {
        let sizes = self.channel_sizes();
        if report.len() != sizes.len() {
            return Err(StreamError::config(format!(
                "report has {} codes but the protocol has {} channels",
                report.len(),
                sizes.len()
            )));
        }
        for (k, (&code, size)) in report.codes().iter().zip(sizes).enumerate() {
            if code as usize >= size {
                return Err(StreamError::config(format!(
                    "code {code} out of range for channel {k} ({size} categories)"
                )));
            }
        }
        match self {
            StreamProtocol::Independent(_) => Ok(report.codes().to_vec()),
            StreamProtocol::Joint(p) => Ok(p
                .domain()
                .decode(report.codes()[0] as usize)
                .map_err(ProtocolError::from)?),
            StreamProtocol::Clusters(p) => {
                let mut record = vec![0u32; p.schema().len()];
                for (k, cluster) in p.clustering().clusters().iter().enumerate() {
                    let tuple = p.domains()[k]
                        .decode(report.codes()[k] as usize)
                        .map_err(ProtocolError::from)?;
                    for (&attribute, &value) in cluster.iter().zip(tuple.iter()) {
                        record[attribute] = value;
                    }
                }
                Ok(record)
            }
        }
    }

    /// Collector-side estimation: builds a release from per-channel count
    /// vectors over the randomized codes of `n_records` reports.
    ///
    /// # Errors
    /// Propagates the protocol's shape and consistency errors.
    pub fn release_from_counts(
        &self,
        counts: &[Vec<u64>],
        n_records: usize,
    ) -> Result<StreamSnapshot, StreamError> {
        match self {
            StreamProtocol::Independent(p) => Ok(StreamSnapshot::Independent(
                p.release_from_counts(counts, n_records)?,
            )),
            StreamProtocol::Joint(p) => {
                if counts.len() != 1 {
                    return Err(StreamError::config(format!(
                        "RR-Joint has a single channel but {} count vectors were provided",
                        counts.len()
                    )));
                }
                Ok(StreamSnapshot::Joint(
                    p.release_from_counts(&counts[0], n_records)?,
                ))
            }
            StreamProtocol::Clusters(p) => Ok(StreamSnapshot::Clusters(
                p.release_from_counts(counts, n_records)?,
            )),
        }
    }
}

impl From<RRIndependent> for StreamProtocol {
    fn from(p: RRIndependent) -> Self {
        StreamProtocol::Independent(p)
    }
}

impl From<RRJoint> for StreamProtocol {
    fn from(p: RRJoint) -> Self {
        StreamProtocol::Joint(p)
    }
}

impl From<RRClusters> for StreamProtocol {
    fn from(p: RRClusters) -> Self {
        StreamProtocol::Clusters(p)
    }
}

/// A point-in-time estimate taken from the accumulated sufficient
/// statistics: the protocol's regular release (so every batch query runs
/// unchanged against a mid-stream snapshot), without randomized microdata.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamSnapshot {
    /// Snapshot of an RR-Independent stream.
    Independent(IndependentRelease),
    /// Snapshot of an RR-Joint stream.
    Joint(JointRelease),
    /// Snapshot of an RR-Clusters stream.
    Clusters(ClustersRelease),
}

impl StreamSnapshot {
    /// Number of reports the snapshot is based on.
    pub fn report_count(&self) -> usize {
        self.record_count()
    }
}

impl FrequencyEstimator for StreamSnapshot {
    fn frequency(&self, assignment: &Assignment) -> Result<f64, ProtocolError> {
        match self {
            StreamSnapshot::Independent(r) => r.frequency(assignment),
            StreamSnapshot::Joint(r) => r.frequency(assignment),
            StreamSnapshot::Clusters(r) => r.frequency(assignment),
        }
    }

    fn record_count(&self) -> usize {
        match self {
            StreamSnapshot::Independent(r) => r.record_count(),
            StreamSnapshot::Joint(r) => r.record_count(),
            StreamSnapshot::Clusters(r) => r.record_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdrr_data::{Attribute, Schema};
    use mdrr_protocols::{Clustering, RandomizationLevel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::indexed("A", 3).unwrap(),
            Attribute::indexed("B", 2).unwrap(),
        ])
        .unwrap()
    }

    fn protocols() -> Vec<StreamProtocol> {
        let s = schema();
        vec![
            RRIndependent::new(s.clone(), &RandomizationLevel::KeepProbability(0.7))
                .unwrap()
                .into(),
            RRJoint::with_keep_probability(s.clone(), 0.7, None)
                .unwrap()
                .into(),
            RRClusters::with_keep_probability(
                s,
                Clustering::new(vec![vec![0], vec![1]], 2).unwrap(),
                0.7,
            )
            .unwrap()
            .into(),
        ]
    }

    #[test]
    fn channel_layouts_match_the_protocol_shape() {
        let all = protocols();
        assert_eq!(all[0].channel_sizes(), vec![3, 2]);
        assert_eq!(all[1].channel_sizes(), vec![6]);
        assert_eq!(all[2].channel_sizes(), vec![3, 2]);
        for p in &all {
            assert_eq!(p.schema().len(), 2);
        }
    }

    #[test]
    fn encoded_reports_have_one_code_per_channel() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in protocols() {
            let report = p.encode_record(&[2, 1], &mut rng).unwrap();
            assert_eq!(report.len(), p.channel_sizes().len());
            assert!(!report.is_empty());
            for (&code, size) in report.codes().iter().zip(p.channel_sizes()) {
                assert!((code as usize) < size);
            }
            assert!(p.encode_record(&[3, 0], &mut rng).is_err());
            assert!(p.encode_record(&[0], &mut rng).is_err());
        }
    }

    #[test]
    fn snapshots_answer_queries_through_the_estimator_trait() {
        let mut rng = StdRng::seed_from_u64(2);
        for p in protocols() {
            let mut counts: Vec<Vec<u64>> =
                p.channel_sizes().iter().map(|&s| vec![0u64; s]).collect();
            let n = 500;
            for i in 0..n {
                let record = vec![(i % 3) as u32, (i % 2) as u32];
                let report = p.encode_record(&record, &mut rng).unwrap();
                for (channel, &code) in counts.iter_mut().zip(report.codes()) {
                    channel[code as usize] += 1;
                }
            }
            let snapshot = p.release_from_counts(&counts, n).unwrap();
            assert_eq!(snapshot.report_count(), n);
            let f = snapshot.frequency(&[(0, 0)]).unwrap();
            assert!((0.0..=1.0).contains(&f));
            assert!(snapshot.frequency(&[(0, 0), (0, 1)]).is_err());
        }
    }

    #[test]
    fn decode_inverts_the_channel_encoding() {
        let mut rng = StdRng::seed_from_u64(5);
        for p in protocols() {
            for record in [[0u32, 0], [2, 1], [1, 0]] {
                // With keep probability 1 the report IS the encoded record,
                // so decode must give the record back. With randomization we
                // can still check the decoded record is schema-valid.
                let report = p.encode_record(&record, &mut rng).unwrap();
                let decoded = p.decode_report(&report).unwrap();
                assert!(p.schema().validate_record(&decoded).is_ok());
            }
            assert!(p.decode_report(&Report::new(vec![])).is_err());
            assert!(p.decode_report(&Report::new(vec![99, 99])).is_err());
        }

        // Identity randomization: decode(encode(x)) == x exactly.
        let p: StreamProtocol = RRJoint::with_keep_probability(schema(), 1.0, None)
            .unwrap()
            .into();
        let report = p.encode_record(&[2, 1], &mut rng).unwrap();
        assert_eq!(p.decode_report(&report).unwrap(), vec![2, 1]);
    }

    #[test]
    fn joint_snapshot_rejects_multi_channel_counts() {
        let p: StreamProtocol = RRJoint::with_keep_probability(schema(), 0.7, None)
            .unwrap()
            .into();
        assert!(p.release_from_counts(&[vec![1; 6], vec![1; 6]], 6).is_err());
    }
}
