//! Property tests for the declarative protocol configuration:
//! `ProtocolSpec` values survive a JSON round-trip exactly, and the
//! protocol built from the restored spec is indistinguishable from the one
//! built from the original — same channel topology, same privacy budgets,
//! same estimates from the same sufficient statistics (which pins the
//! randomization matrices themselves, since Equation (2) inverts them).

use mdrr_data::{Attribute, Schema};
use mdrr_protocols::{AdjustmentConfig, Clustering, ProtocolSpec, RandomizationLevel};
use proptest::prelude::*;

/// The fixed 3-attribute schema the generated specs are built against.
fn schema() -> Schema {
    Schema::new(vec![
        Attribute::indexed("A", 3).unwrap(),
        Attribute::indexed("B", 2).unwrap(),
        Attribute::indexed("C", 4).unwrap(),
    ])
    .unwrap()
}

/// One of the schema's valid clusterings, selected by index.
fn clustering(choice: usize) -> Clustering {
    let shapes: [&[&[usize]]; 3] = [&[&[0], &[1], &[2]], &[&[0, 1], &[2]], &[&[2, 0], &[1]]];
    let clusters = shapes[choice % shapes.len()]
        .iter()
        .map(|c| c.to_vec())
        .collect();
    Clustering::new(clusters, 3).unwrap()
}

/// A randomization level, selected by index and parameterised by the raw
/// draws (kept strictly inside the valid open ranges).
fn level(choice: usize, p: f64, eps: (f64, f64, f64)) -> RandomizationLevel {
    match choice % 3 {
        0 => RandomizationLevel::KeepProbability(p),
        1 => RandomizationLevel::EpsilonPerAttribute(eps.0),
        _ => RandomizationLevel::Epsilons(vec![eps.0, eps.1, eps.2]),
    }
}

/// A spec over the fixed schema, optionally wrapped in an adjustment.
fn spec_strategy() -> impl Strategy<Value = ProtocolSpec> {
    (
        0usize..4,
        0usize..9,
        0.05f64..0.95,
        (0.1f64..3.0, 0.1f64..3.0, 0.1f64..3.0),
        any::<bool>(),
        1usize..200,
    )
        .prop_map(|(variant, shape_choice, p, eps, adjusted, iterations)| {
            let (level_choice, cluster_choice) = (shape_choice / 3, shape_choice % 3);
            let level = level(level_choice, p, eps);
            let base = match variant {
                0 => ProtocolSpec::independent(level),
                1 => ProtocolSpec::joint(level),
                2 => ProtocolSpec::clusters(level, clustering(cluster_choice)),
                _ => ProtocolSpec::Clusters {
                    // The direct (non-equivalent-risk) ablation only
                    // accepts keep probabilities.
                    level: RandomizationLevel::KeepProbability(p),
                    clustering: clustering(cluster_choice),
                    equivalent_risk: false,
                },
            };
            if adjusted {
                base.adjusted(AdjustmentConfig::new(iterations, 1e-9).unwrap())
            } else {
                base
            }
        })
}

/// Deterministic per-channel count vectors summing to `n` for a channel
/// layout — synthetic sufficient statistics to estimate from.
fn synthetic_counts(channel_sizes: &[usize], n: u64) -> Vec<Vec<u64>> {
    channel_sizes
        .iter()
        .map(|&s| {
            let base = n / s as u64;
            let mut channel = vec![base; s];
            channel[0] += n - base * s as u64;
            channel
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// spec → JSON → spec is the identity, and both specs build protocols
    /// with identical names, channel topologies and privacy budgets.
    #[test]
    fn json_round_trip_rebuilds_the_same_protocol(spec in spec_strategy()) {
        let json = serde_json::to_string(&spec).unwrap();
        let restored: ProtocolSpec = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&spec, &restored);

        let schema = schema();
        let original = spec.build(&schema).unwrap();
        let rebuilt = restored.build(&schema).unwrap();
        prop_assert_eq!(original.name(), rebuilt.name());
        prop_assert_eq!(original.channel_sizes(), rebuilt.channel_sizes());
        // Bitwise-equal budgets: the matrices are derived deterministically
        // from the level, so equal ε vectors pin equal matrices.
        prop_assert_eq!(original.epsilons(), rebuilt.epsilons());
    }

    /// The protocols built before and after the round-trip produce
    /// *identical* estimates from the same sufficient statistics — the
    /// strongest observable equality of their randomization matrices.
    #[test]
    fn round_tripped_protocols_estimate_identically(spec in spec_strategy()) {
        let schema = schema();
        let json = serde_json::to_string(&spec).unwrap();
        let restored: ProtocolSpec = serde_json::from_str(&json).unwrap();
        let original = spec.build(&schema).unwrap();
        let rebuilt = restored.build(&schema).unwrap();

        // Adjusted stacks cannot estimate from counts (they need the
        // randomized microdata); their base equality is covered above.
        prop_assume!(!matches!(spec, ProtocolSpec::Adjusted { .. }));

        let counts = synthetic_counts(&original.channel_sizes(), 1_000);
        let a = original.release_from_counts(&counts, 1_000).unwrap();
        let b = rebuilt.release_from_counts(&counts, 1_000).unwrap();
        for attribute in 0..schema.len() {
            let ma = a.marginal(attribute).unwrap();
            let mb = b.marginal(attribute).unwrap();
            prop_assert_eq!(ma, mb, "attribute {} marginals differ", attribute);
        }
        prop_assert_eq!(a.accountant().total_sequential().to_bits(),
                        b.accountant().total_sequential().to_bits());
    }
}
