//! Property-based tests for the protocol layer.

use mdrr_data::{Attribute, AttributeKind, Dataset, Schema};
use mdrr_protocols::{
    cluster_attributes, rr_adjustment, AdjustmentConfig, AdjustmentTarget, Clustering,
    ClusteringConfig, DependenceMatrix, FrequencyEstimator, RRClusters, RRIndependent,
    RandomizationLevel, SecureSumSession,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small schema with 3 attributes of cardinalities 2–4.
fn schema_strategy() -> impl Strategy<Value = Schema> {
    prop::collection::vec(2usize..5, 3..4).prop_map(|cards| {
        let attrs = cards
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                Attribute::new(
                    format!("A{i}"),
                    AttributeKind::Nominal,
                    (0..c).map(|k| k.to_string()).collect(),
                )
                .unwrap()
            })
            .collect();
        Schema::new(attrs).unwrap()
    })
}

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (schema_strategy(), 30usize..200, any::<u64>()).prop_map(|(schema, n, seed)| {
        let cards = schema.cardinalities();
        let mut ds = Dataset::empty(schema);
        let mut state = seed | 1;
        for _ in 0..n {
            let record: Vec<u32> = cards
                .iter()
                .map(|&c| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) % c as u64) as u32
                })
                .collect();
            ds.push_record(&record).unwrap();
        }
        ds
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn independent_release_marginals_are_distributions(ds in dataset_strategy(),
                                                        p in 0.2f64..0.95,
                                                        seed in any::<u64>()) {
        let protocol = RRIndependent::new(ds.schema().clone(), &RandomizationLevel::KeepProbability(p)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let release = protocol.run(&ds, &mut rng).unwrap();
        for j in 0..ds.n_attributes() {
            let marginal = release.marginal(j).unwrap();
            prop_assert!(mdrr_math::is_probability_vector(&marginal, 1e-9));
        }
        // Frequencies of assignments are in [0, 1] and multiply per attribute.
        let f0 = release.frequency(&[(0, 0)]).unwrap();
        let f1 = release.frequency(&[(1, 0)]).unwrap();
        let joint = release.frequency(&[(0, 0), (1, 0)]).unwrap();
        prop_assert!((joint - f0 * f1).abs() < 1e-12);
    }

    #[test]
    fn clusters_release_frequencies_are_probabilities(ds in dataset_strategy(),
                                                       p in 0.3f64..0.95,
                                                       seed in any::<u64>()) {
        let m = ds.n_attributes();
        let clustering = Clustering::new(vec![vec![0, 1], (2..m).collect()], m).unwrap();
        let protocol = RRClusters::with_keep_probability(ds.schema().clone(), clustering, p).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let release = protocol.run(&ds, &mut rng).unwrap();
        for attribute in 0..m {
            let card = ds.schema().attribute(attribute).unwrap().cardinality();
            let mut total = 0.0;
            for code in 0..card as u32 {
                let f = release.frequency(&[(attribute, code)]).unwrap();
                prop_assert!((0.0..=1.0 + 1e-9).contains(&f));
                total += f;
            }
            prop_assert!((total - 1.0).abs() < 1e-6);
        }
        prop_assert_eq!(release.randomized().unwrap().n_records(), ds.n_records());
    }

    #[test]
    fn clustering_always_partitions_and_respects_tv(m in 3usize..8,
                                                     seed in any::<u64>(),
                                                     tv in 4usize..200,
                                                     td in 0.0f64..1.0) {
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let dep = DependenceMatrix::from_fn(m, |_, _| next()).unwrap();
        let cards: Vec<usize> = (0..m).map(|i| 2 + (i % 4)).collect();
        let config = ClusteringConfig::new(tv, td).unwrap();
        let clustering = cluster_attributes(&dep, &cards, config).unwrap();
        prop_assert_eq!(clustering.attribute_count(), m);
        // Every cluster respects Tv unless it is a singleton (singletons may
        // exceed Tv on their own; the algorithm never merges beyond Tv).
        for cluster in clustering.clusters() {
            if cluster.len() > 1 {
                let product: usize = cluster.iter().map(|&a| cards[a]).product();
                prop_assert!(product <= tv);
            }
        }
    }

    #[test]
    fn adjustment_preserves_total_weight_and_matches_last_target(ds in dataset_strategy(),
                                                                  seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let protocol = RRIndependent::new(ds.schema().clone(), &RandomizationLevel::KeepProbability(0.7)).unwrap();
        let release = protocol.run(&ds, &mut rng).unwrap();
        let targets = AdjustmentTarget::from_independent(&release);
        let adjusted = rr_adjustment(release.randomized().unwrap(), &targets, AdjustmentConfig::new(60, 1e-10).unwrap()).unwrap();
        let total: f64 = adjusted.weights().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(adjusted.weights().iter().all(|&w| w >= 0.0));
        // The weighted marginal of the last-adjusted attribute is close to
        // its target whenever the target is reachable.
        let last = ds.n_attributes() - 1;
        let weighted = adjusted.weighted_distribution(&[last]).unwrap();
        let target = release.marginal(last).unwrap();
        let reachable = weighted.iter().zip(target.iter()).all(|(w, t)| *t == 0.0 || *w > 0.0);
        if reachable {
            for (w, t) in weighted.iter().zip(target.iter()) {
                prop_assert!((w - t).abs() < 1e-3, "weighted {w} vs target {t}");
            }
        }
    }

    #[test]
    fn secure_sum_is_exact_for_any_indicator_vector(indicators in prop::collection::vec(any::<bool>(), 1..60),
                                                     seed in any::<u64>()) {
        let session = SecureSumSession::new(indicators.len()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let expected = indicators.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(session.sum_indicators(&indicators, &mut rng).unwrap(), expected);
    }
}
