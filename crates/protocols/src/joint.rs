//! Protocol 2: RR-Joint.
//!
//! Every party randomizes the value of the *Cartesian product* of all her
//! attributes with a single randomization matrix over the joint domain and
//! publishes the result.  The data collector estimates the joint
//! distribution of the true data with Equation (2) and answers any subset
//! query by summing the matching cells (Section 3.2).
//!
//! RR-Joint needs no independence assumption, but the joint domain grows
//! exponentially with the number of attributes, so both the computational
//! cost and the estimation error explode unless `n ≫ Π|A_j|` (Bound (7)).
//! The constructor therefore takes an explicit cap on the joint-domain size
//! and refuses to build a protocol beyond it — exactly the reason the
//! paper's experiments cannot run RR-Joint on the full Adult schema.

use crate::adjustment::AdjustmentTarget;
use crate::error::{MdrrError, ProtocolError};
use crate::estimator::{validate_assignment, Assignment, FrequencyEstimator};
use crate::protocol::{
    gather_joint_codes, validate_batch_shape, validate_records_view, validate_report_shape,
    validate_tally_shape, with_predrawn, Protocol, RandomizationLevel, Release,
};
use mdrr_core::{estimate_proper_from_counts, randomize_joint, PrivacyAccountant, RRMatrix};
use mdrr_data::{Dataset, JointDomain, RecordsView, Schema};
use rand::{Rng, RngCore};

/// Default cap on the joint-domain size accepted by the [`RRJoint`]
/// constructors.
pub const DEFAULT_MAX_JOINT_DOMAIN: usize = 1_000_000;

/// The RR-Joint protocol over the full attribute set of a schema.
#[derive(Debug, Clone, PartialEq)]
pub struct RRJoint {
    schema: Schema,
    domain: JointDomain,
    matrix: RRMatrix,
}

impl RRJoint {
    /// Configures RR-Joint with the ε-optimal matrix over the joint domain,
    /// refusing joint domains larger than `max_domain`
    /// ([`DEFAULT_MAX_JOINT_DOMAIN`] when `None`).
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfiguration`] if the joint domain
    /// exceeds the cap (or overflows), or the budget is invalid.
    pub fn with_epsilon(
        schema: Schema,
        epsilon: f64,
        max_domain: Option<usize>,
    ) -> Result<Self, ProtocolError> {
        let domain = JointDomain::new(&schema.cardinalities())?;
        Self::check_domain(&domain, max_domain)?;
        let matrix = RRMatrix::from_epsilon(epsilon, domain.size())?;
        Ok(RRJoint {
            schema,
            domain,
            matrix,
        })
    }

    /// Configures RR-Joint with the uniform-keep mechanism at keep
    /// probability `p` over the joint domain.
    ///
    /// # Errors
    /// Same conditions as [`RRJoint::with_epsilon`].
    pub fn with_keep_probability(
        schema: Schema,
        p: f64,
        max_domain: Option<usize>,
    ) -> Result<Self, ProtocolError> {
        let domain = JointDomain::new(&schema.cardinalities())?;
        Self::check_domain(&domain, max_domain)?;
        let matrix = RRMatrix::uniform_keep(p, domain.size())?;
        Ok(RRJoint {
            schema,
            domain,
            matrix,
        })
    }

    /// Configures RR-Joint at the *equivalent risk* of RR-Independent with
    /// `level` (Section 6.3.2, with the full attribute set as one cluster):
    /// the joint matrix is the optimal matrix for `Σ_A ε_A`, where `ε_A`
    /// are the per-attribute budgets the level implies.  The same level
    /// therefore buys the same total differential-privacy guarantee whether
    /// it is spent by RR-Independent, RR-Joint or RR-Clusters.
    ///
    /// # Errors
    /// Same conditions as [`RRJoint::with_epsilon`] plus an invalid level.
    pub fn with_level(
        schema: Schema,
        level: &RandomizationLevel,
        max_domain: Option<usize>,
    ) -> Result<Self, ProtocolError> {
        let epsilons = level.attribute_epsilons(&schema)?;
        let domain = JointDomain::new(&schema.cardinalities())?;
        Self::check_domain(&domain, max_domain)?;
        let matrix = RRMatrix::cluster_from_epsilons(&epsilons, domain.size())?;
        Ok(RRJoint {
            schema,
            domain,
            matrix,
        })
    }

    fn check_domain(domain: &JointDomain, max_domain: Option<usize>) -> Result<(), ProtocolError> {
        let cap = max_domain.unwrap_or(DEFAULT_MAX_JOINT_DOMAIN);
        if domain.size() > cap {
            return Err(ProtocolError::config(format!(
                "joint domain has {} combinations, above the configured cap of {cap}; \
                 use RR-Independent or RR-Clusters instead",
                domain.size()
            )));
        }
        Ok(())
    }

    /// The schema the protocol was configured for.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The joint-domain codec.
    pub fn domain(&self) -> &JointDomain {
        &self.domain
    }

    /// The randomization matrix over the joint domain.
    pub fn matrix(&self) -> &RRMatrix {
        &self.matrix
    }

    /// Client-side encoding: randomizes one true record into its report —
    /// a single randomized code over the joint domain.
    ///
    /// # Errors
    /// * [`ProtocolError::Data`] if the record does not fit the schema;
    /// * propagated randomization errors otherwise.
    pub fn encode_record(&self, record: &[u32], rng: &mut impl Rng) -> Result<u32, ProtocolError> {
        self.schema.validate_record(record)?;
        let code = self.domain.encode(record)?;
        Ok(self.matrix.randomize(code as u32, rng)?)
    }

    /// Collector-side estimation from accumulated sufficient statistics:
    /// builds a release from the count vector over the joint domain of the
    /// randomized codes of `n_records` reports.  Numerically identical to
    /// the estimate [`RRJoint::run`] computes from the same codes, but
    /// carries no randomized microdata ([`JointRelease::randomized`] is
    /// `None`).
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfiguration`] if `n_records` is
    /// zero, the count vector's length differs from the joint-domain size,
    /// or the counts do not sum to `n_records`.
    pub fn release_from_counts(
        &self,
        counts: &[u64],
        n_records: usize,
    ) -> Result<JointRelease, ProtocolError> {
        if n_records == 0 {
            return Err(ProtocolError::config(
                "cannot build an RR-Joint release from zero reports",
            ));
        }
        if counts.len() != self.domain.size() {
            return Err(ProtocolError::config(format!(
                "count vector has {} cells but the joint domain has {}",
                counts.len(),
                self.domain.size()
            )));
        }
        let total: u64 = counts.iter().sum();
        if total != n_records as u64 {
            return Err(ProtocolError::config(format!(
                "count vector sums to {total} but {n_records} reports were accumulated"
            )));
        }
        let joint = estimate_proper_from_counts(&self.matrix, counts)?;
        let mut accountant = PrivacyAccountant::new();
        accountant.record_matrix("RR-Joint on the full attribute set", &self.matrix);
        Ok(JointRelease {
            schema: self.schema.clone(),
            domain: self.domain.clone(),
            randomized: None,
            joint,
            accountant,
            n_records,
        })
    }

    /// Collector-side estimation from an already-randomized data set (the
    /// pooled reports of all parties, decoded to microdata).
    /// [`RRJoint::run`] is exactly client-side randomization followed by
    /// this constructor.
    ///
    /// # Errors
    /// * [`ProtocolError::InvalidConfiguration`] for a schema mismatch or an
    ///   empty data set;
    /// * propagated estimation errors otherwise.
    pub fn release_from_randomized(
        &self,
        randomized: Dataset,
    ) -> Result<JointRelease, ProtocolError> {
        if randomized.schema() != &self.schema {
            return Err(ProtocolError::config(
                "randomized dataset schema does not match the protocol configuration",
            ));
        }
        if randomized.is_empty() {
            return Err(ProtocolError::config(
                "cannot build an RR-Joint release from an empty dataset",
            ));
        }
        let attributes: Vec<usize> = (0..self.schema.len()).collect();
        let (_, counts) = randomized.joint_counts(&attributes)?;
        let mut release = self.release_from_counts(&counts, randomized.n_records())?;
        release.randomized = Some(randomized);
        Ok(release)
    }

    /// Runs the protocol and estimates the joint distribution of the true
    /// data.
    ///
    /// # Errors
    /// * [`ProtocolError::InvalidConfiguration`] for a schema mismatch or an
    ///   empty dataset;
    /// * propagated randomization/estimation errors otherwise.
    pub fn run(
        &self,
        dataset: &Dataset,
        rng: &mut impl Rng,
    ) -> Result<JointRelease, ProtocolError> {
        if dataset.schema() != &self.schema {
            return Err(ProtocolError::config(
                "dataset schema does not match the protocol configuration",
            ));
        }
        if dataset.is_empty() {
            return Err(ProtocolError::config(
                "cannot run RR-Joint on an empty dataset",
            ));
        }
        let attributes: Vec<usize> = (0..self.schema.len()).collect();
        let randomized_codes = randomize_joint(dataset, &attributes, &self.matrix, rng)?;

        // Estimate directly from the in-hand joint codes (no re-encoding
        // round-trip) and reconstruct the randomized microdata set so
        // downstream consumers (Randomized baseline, RR-Adjustment) can use
        // it like any other release.
        let mut counts = vec![0u64; self.domain.size()];
        let mut randomized = Dataset::empty(self.schema.clone());
        for &code in &randomized_codes {
            counts[code as usize] += 1;
            let record = self.domain.decode(code as usize)?;
            randomized.push_record(&record)?;
        }
        let mut release = self.release_from_counts(&counts, randomized_codes.len())?;
        release.randomized = Some(randomized);
        Ok(release)
    }
}

/// The output of one run of RR-Joint.
#[derive(Debug, Clone, PartialEq)]
pub struct JointRelease {
    schema: Schema,
    domain: JointDomain,
    randomized: Option<Dataset>,
    joint: Vec<f64>,
    accountant: PrivacyAccountant,
    n_records: usize,
}

impl JointRelease {
    /// The published randomized microdata set — `Some` for batch releases,
    /// `None` for releases assembled from streamed sufficient statistics
    /// ([`RRJoint::release_from_counts`]).
    pub fn randomized(&self) -> Option<&Dataset> {
        self.randomized.as_ref()
    }

    /// The estimated joint distribution over the full domain (code order of
    /// [`JointRelease::domain`]).
    pub fn joint_distribution(&self) -> &[f64] {
        &self.joint
    }

    /// The joint-domain codec of the estimate.
    pub fn domain(&self) -> &JointDomain {
        &self.domain
    }

    /// The privacy ledger (a single entry: the joint release).
    pub fn accountant(&self) -> &PrivacyAccountant {
        &self.accountant
    }

    /// The estimated marginal distribution of a single attribute, obtained
    /// by marginalising the estimated joint distribution (the shared
    /// [`Release::marginal`] accessor).
    ///
    /// # Errors
    /// Returns [`ProtocolError::UnsupportedQuery`] for a bad attribute
    /// index.
    pub fn marginal(&self, attribute: usize) -> Result<Vec<f64>, ProtocolError> {
        let cardinality = *self.schema.cardinalities().get(attribute).ok_or_else(|| {
            ProtocolError::unsupported(format!("attribute index {attribute} out of range"))
        })?;
        let mut marginal = vec![0.0; cardinality];
        for (cell, &prob) in self.joint.iter().enumerate() {
            if prob == 0.0 {
                continue;
            }
            let tuple = self.domain.decode(cell)?;
            marginal[tuple[attribute] as usize] += prob;
        }
        Ok(marginal)
    }
}

impl FrequencyEstimator for JointRelease {
    fn frequency(&self, assignment: &Assignment) -> Result<f64, ProtocolError> {
        validate_assignment(assignment, &self.schema.cardinalities())?;
        let mut constraint: Vec<Option<u32>> = vec![None; self.schema.len()];
        for &(attribute, code) in assignment {
            constraint[attribute] = Some(code);
        }
        // Sum the estimated joint distribution over all matching cells.
        let mut freq = 0.0;
        for (cell, &prob) in self.joint.iter().enumerate() {
            if prob == 0.0 {
                continue;
            }
            let tuple = self.domain.decode(cell)?;
            let matches = constraint
                .iter()
                .zip(tuple.iter())
                .all(|(c, &v)| c.is_none_or(|expected| expected == v));
            if matches {
                freq += prob;
            }
        }
        Ok(freq)
    }

    fn record_count(&self) -> usize {
        self.n_records
    }
}

impl Protocol for RRJoint {
    fn name(&self) -> String {
        "RR-Joint".to_string()
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn channel_sizes(&self) -> Vec<usize> {
        vec![self.domain.size()]
    }

    fn encode_record(&self, record: &[u32], rng: &mut dyn RngCore) -> Result<Vec<u32>, MdrrError> {
        Ok(vec![RRJoint::encode_record(self, record, &mut &mut *rng)?])
    }

    /// Tuned batch override: the schema is validated once per batch, the
    /// mixed-radix joint encoding is fused into the loop via the domain's
    /// strides (no per-record tuple buffer, no per-value range re-checks),
    /// the randomness is bulk-pre-drawn and the single channel buffer is
    /// written in place.  One draw per record, in record order —
    /// bit-identical to repeated [`RRJoint::encode_record`] calls.
    fn encode_batch(
        &self,
        records: &RecordsView<'_>,
        rng: &mut dyn RngCore,
        out: &mut [Vec<u32>],
    ) -> Result<(), MdrrError> {
        validate_batch_shape(out.len(), 1)?;
        validate_records_view(records, &self.schema)?;
        let n = records.n_records();
        let channel = &mut out[0];
        channel.reserve(n);
        let strides = self.domain.strides();
        let columns = records.columns();
        let sampler = self.matrix.prepared();
        // Scratch for the fused mixed-radix joint codes of one chunk.
        let mut codes: Vec<u32> = Vec::new();
        with_predrawn(n, 1, rng, |range, draws| {
            gather_joint_codes(columns, strides, range, &mut codes);
            sampler.randomize_strided_into(&codes, draws, 0, 1, channel);
        });
        Ok(())
    }

    /// Fused randomize-and-count override: the same draw schedule and
    /// codes as the batch encoder, tallied over the joint domain in one
    /// pass.
    fn encode_tally(
        &self,
        records: &RecordsView<'_>,
        rng: &mut dyn RngCore,
        tallies: &mut [Vec<u64>],
    ) -> Result<(), MdrrError> {
        validate_tally_shape(tallies, &Protocol::channel_sizes(self))?;
        validate_records_view(records, &self.schema)?;
        let strides = self.domain.strides();
        let columns = records.columns();
        let sampler = self.matrix.prepared();
        let tally = &mut tallies[0];
        let mut codes: Vec<u32> = Vec::new();
        with_predrawn(records.n_records(), 1, rng, |range, draws| {
            gather_joint_codes(columns, strides, range, &mut codes);
            sampler.randomize_strided_tally(&codes, draws, 0, 1, tally);
        });
        Ok(())
    }

    fn decode_report(&self, codes: &[u32]) -> Result<Vec<u32>, MdrrError> {
        validate_report_shape(codes, &Protocol::channel_sizes(self))?;
        Ok(self.domain.decode(codes[0] as usize)?)
    }

    fn release_from_counts(
        &self,
        counts: &[Vec<u64>],
        n_records: usize,
    ) -> Result<Box<dyn Release>, MdrrError> {
        if counts.len() != 1 {
            return Err(MdrrError::config(format!(
                "RR-Joint has a single channel but {} count vectors were provided",
                counts.len()
            )));
        }
        Ok(Box::new(RRJoint::release_from_counts(
            self, &counts[0], n_records,
        )?))
    }

    fn release_from_randomized(&self, randomized: Dataset) -> Result<Box<dyn Release>, MdrrError> {
        Ok(Box::new(RRJoint::release_from_randomized(
            self, randomized,
        )?))
    }

    fn run(&self, dataset: &Dataset, rng: &mut dyn RngCore) -> Result<Box<dyn Release>, MdrrError> {
        Ok(Box::new(RRJoint::run(self, dataset, &mut &mut *rng)?))
    }

    fn epsilons(&self) -> Vec<f64> {
        vec![self.matrix.epsilon()]
    }
}

impl Release for JointRelease {
    fn marginal(&self, attribute: usize) -> Result<Vec<f64>, MdrrError> {
        JointRelease::marginal(self, attribute)
    }

    fn accountant(&self) -> &PrivacyAccountant {
        JointRelease::accountant(self)
    }

    fn randomized(&self) -> Option<&Dataset> {
        JointRelease::randomized(self)
    }

    fn adjustment_targets(&self) -> Result<Vec<AdjustmentTarget>, MdrrError> {
        // The joint estimate constrains the full attribute set at once; an
        // adjustment against it reproduces the estimated joint exactly.
        Ok(vec![AdjustmentTarget::new(
            (0..self.schema.len()).collect(),
            self.joint.clone(),
        )?])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::EmpiricalEstimator;
    use mdrr_data::{Attribute, AttributeKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("A", AttributeKind::Nominal, vec!["a".into(), "b".into()]).unwrap(),
            Attribute::new(
                "B",
                AttributeKind::Nominal,
                vec!["x".into(), "y".into(), "z".into()],
            )
            .unwrap(),
        ])
        .unwrap()
    }

    /// Strongly dependent attributes: B tends to equal A (mod 2), which an
    /// independence-based estimate would get wrong.
    fn dependent_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::empty(schema());
        for _ in 0..n {
            let a = u32::from(rng.gen::<f64>() < 0.4);
            let b = if rng.gen::<f64>() < 0.8 { a } else { 2 };
            ds.push_record(&[a, b]).unwrap();
        }
        ds
    }

    #[test]
    fn configuration_respects_the_domain_cap() {
        assert!(RRJoint::with_epsilon(schema(), 2.0, Some(5)).is_err());
        assert!(RRJoint::with_epsilon(schema(), 2.0, Some(6)).is_ok());
        assert!(RRJoint::with_keep_probability(schema(), 0.5, None).is_ok());
        assert!(RRJoint::with_keep_probability(schema(), 1.5, None).is_err());
        assert!(RRJoint::with_epsilon(schema(), -1.0, None).is_err());
    }

    #[test]
    fn adult_sized_schema_is_rejected_by_default_cap() {
        let adult = mdrr_data::adult_schema();
        // 1 814 400 combinations exceed the default 1 000 000 cap.
        assert!(RRJoint::with_epsilon(adult, 2.0, None).is_err());
    }

    #[test]
    fn run_validates_dataset() {
        let protocol = RRJoint::with_keep_probability(schema(), 0.7, None).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(protocol.run(&Dataset::empty(schema()), &mut rng).is_err());
        let other_schema = Schema::new(vec![Attribute::indexed("Z", 2).unwrap()]).unwrap();
        let other = Dataset::from_records(other_schema, &[vec![0]]).unwrap();
        assert!(protocol.run(&other, &mut rng).is_err());
    }

    #[test]
    fn joint_estimate_captures_dependence() {
        let ds = dependent_dataset(40_000, 1);
        let protocol = RRJoint::with_keep_probability(schema(), 0.7, None).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let release = protocol.run(&ds, &mut rng).unwrap();
        let truth = EmpiricalEstimator::new(&ds);

        for a in 0..2u32 {
            for b in 0..3u32 {
                let estimated = release.frequency(&[(0, a), (1, b)]).unwrap();
                let exact = truth.frequency(&[(0, a), (1, b)]).unwrap();
                assert!(
                    (estimated - exact).abs() < 0.02,
                    "cell ({a},{b}): {estimated} vs {exact}"
                );
            }
        }
        // Marginal queries work too and agree with the joint.
        let marginal_a0 = release.frequency(&[(0, 0)]).unwrap();
        let exact_a0 = truth.frequency(&[(0, 0)]).unwrap();
        assert!((marginal_a0 - exact_a0).abs() < 0.02);
        // The distribution is proper.
        assert!(mdrr_math::is_probability_vector(
            release.joint_distribution(),
            1e-9
        ));
        assert_eq!(release.record_count(), 40_000);
        assert_eq!(release.accountant().len(), 1);
    }

    #[test]
    fn randomized_dataset_has_the_same_shape_as_the_input() {
        let ds = dependent_dataset(500, 3);
        let protocol = RRJoint::with_epsilon(schema(), 3.0, None).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let release = protocol.run(&ds, &mut rng).unwrap();
        let randomized = release.randomized().unwrap();
        assert_eq!(randomized.n_records(), 500);
        assert_eq!(randomized.schema(), ds.schema());
    }

    #[test]
    fn streamed_counts_match_the_batch_estimate_exactly() {
        let ds = dependent_dataset(4_000, 9);
        let protocol = RRJoint::with_keep_probability(schema(), 0.6, None).unwrap();

        let mut rng = StdRng::seed_from_u64(10);
        let view = ds.view();
        let mut row = Vec::new();
        let mut reports: Vec<u32> = Vec::with_capacity(ds.n_records());
        for i in 0..ds.n_records() {
            view.read_record(i, &mut row).unwrap();
            reports.push(protocol.encode_record(&row, &mut rng).unwrap());
        }

        let mut counts = vec![0u64; protocol.domain().size()];
        for &code in &reports {
            counts[code as usize] += 1;
        }
        let streamed = protocol
            .release_from_counts(&counts, reports.len())
            .unwrap();
        assert!(streamed.randomized().is_none());

        let mut randomized = Dataset::empty(schema());
        for &code in &reports {
            randomized
                .push_record(&protocol.domain().decode(code as usize).unwrap())
                .unwrap();
        }
        let batch = protocol.release_from_randomized(randomized).unwrap();
        assert_eq!(streamed.joint_distribution(), batch.joint_distribution());
        assert_eq!(streamed.record_count(), batch.record_count());
    }

    #[test]
    fn encode_record_and_counts_validate_input() {
        let protocol = RRJoint::with_keep_probability(schema(), 0.6, None).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(protocol.encode_record(&[0], &mut rng).is_err());
        assert!(protocol.encode_record(&[0, 5], &mut rng).is_err());
        assert!(protocol.encode_record(&[1, 2], &mut rng).is_ok());

        assert!(protocol.release_from_counts(&[0; 6], 0).is_err());
        assert!(protocol.release_from_counts(&[1, 1, 1], 3).is_err());
        assert!(protocol
            .release_from_counts(&[1, 1, 1, 0, 0, 0], 4)
            .is_err());
        assert!(protocol.release_from_counts(&[1, 1, 1, 1, 0, 0], 4).is_ok());
    }

    #[test]
    fn frequency_estimator_contract() {
        let ds = dependent_dataset(1_000, 5);
        let protocol = RRJoint::with_keep_probability(schema(), 0.9, None).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let release = protocol.run(&ds, &mut rng).unwrap();
        assert!((release.frequency(&[]).unwrap() - 1.0).abs() < 1e-9);
        assert!(release.frequency(&[(0, 7)]).is_err());
        assert!(release.frequency(&[(9, 0)]).is_err());
        assert!(release.frequency(&[(1, 0), (1, 1)]).is_err());
    }
}
