//! Attribute clustering (Algorithm 1 of the paper).
//!
//! RR-Clusters splits the attributes into clusters such that attributes in
//! different clusters are (nearly) independent, and runs RR-Joint inside
//! each cluster.  The clustering algorithm is a greedy agglomerative merge:
//!
//! 1. start from singleton clusters;
//! 2. repeatedly look at the most dependent pair of clusters (dependence
//!    between clusters = maximum dependence between cross-cluster attribute
//!    pairs);
//! 3. merge the pair if the merged cluster's number of value combinations
//!    stays below the threshold `Tv` and the dependence is at least `Td`;
//!    otherwise move on to the next most dependent pair;
//! 4. stop when no pair with dependence ≥ `Td` can be merged.
//!
//! The pairwise attribute dependences come from one of the
//! privacy-preserving procedures of [`crate::dependence`] (or from the
//! trusted-party baseline, for comparison).

use crate::error::ProtocolError;
use serde::{Deserialize, Serialize};

/// A symmetric `m × m` matrix of pairwise attribute dependences in `[0, 1]`
/// (1 on the diagonal by convention).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DependenceMatrix {
    m: usize,
    /// Row-major storage of the full symmetric matrix.
    values: Vec<f64>,
}

impl DependenceMatrix {
    /// An `m × m` matrix with 1 on the diagonal and 0 elsewhere.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfiguration`] if `m == 0`.
    pub fn identity(m: usize) -> Result<Self, ProtocolError> {
        if m == 0 {
            return Err(ProtocolError::config(
                "dependence matrix needs at least one attribute",
            ));
        }
        let mut values = vec![0.0; m * m];
        for i in 0..m {
            values[i * m + i] = 1.0;
        }
        Ok(DependenceMatrix { m, values })
    }

    /// Builds the matrix from a function of `(i, j)` evaluated on the upper
    /// triangle (`i < j`); the function's output is clamped to `[0, 1]` and
    /// mirrored to keep the matrix symmetric.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfiguration`] if `m == 0`.
    pub fn from_fn(
        m: usize,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Result<Self, ProtocolError> {
        let mut matrix = DependenceMatrix::identity(m)?;
        for i in 0..m {
            for j in (i + 1)..m {
                let v = f(i, j).clamp(0.0, 1.0);
                matrix.set(i, j, v);
            }
        }
        Ok(matrix)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.m
    }

    /// Whether the matrix covers zero attributes (never true for a
    /// constructed matrix; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// The dependence between attributes `i` and `j`.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.m && j < self.m, "attribute index out of range");
        self.values[i * self.m + j]
    }

    /// Sets the dependence between attributes `i` and `j` (both
    /// orientations), clamped to `[0, 1]`.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.m && j < self.m, "attribute index out of range");
        let v = value.clamp(0.0, 1.0);
        self.values[i * self.m + j] = v;
        self.values[j * self.m + i] = v;
    }

    /// The dependence between two *clusters*: the maximum dependence over
    /// cross-cluster attribute pairs (the definition used by Algorithm 1).
    pub fn cluster_dependence(&self, a: &[usize], b: &[usize]) -> f64 {
        let mut best = 0.0f64;
        for &i in a {
            for &j in b {
                best = best.max(self.get(i, j));
            }
        }
        best
    }

    /// Spearman-style rank agreement between two dependence matrices: the
    /// fraction of attribute-pair pairs whose order is preserved.  Used to
    /// verify Corollary 1 empirically (randomization attenuates dependences
    /// but should preserve their ranking).
    pub fn ranking_agreement(&self, other: &DependenceMatrix) -> Result<f64, ProtocolError> {
        if self.m != other.m {
            return Err(ProtocolError::config(format!(
                "cannot compare dependence matrices of sizes {} and {}",
                self.m, other.m
            )));
        }
        let mut pairs = Vec::new();
        for i in 0..self.m {
            for j in (i + 1)..self.m {
                pairs.push((self.get(i, j), other.get(i, j)));
            }
        }
        let mut concordant = 0usize;
        let mut total = 0usize;
        for x in 0..pairs.len() {
            for y in (x + 1)..pairs.len() {
                let da = pairs[x].0 - pairs[y].0;
                let db = pairs[x].1 - pairs[y].1;
                if da == 0.0 && db == 0.0 {
                    continue;
                }
                total += 1;
                if da * db > 0.0 {
                    concordant += 1;
                }
            }
        }
        if total == 0 {
            return Ok(1.0);
        }
        Ok(concordant as f64 / total as f64)
    }
}

/// A partition of the attribute indices `0 .. m` into clusters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clustering {
    clusters: Vec<Vec<usize>>,
}

impl Clustering {
    /// Builds a clustering and validates that it is a partition of
    /// `0 .. attribute_count`.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfiguration`] if the clusters do
    /// not form a partition (missing, repeated or out-of-range attributes,
    /// or an empty cluster).
    pub fn new(clusters: Vec<Vec<usize>>, attribute_count: usize) -> Result<Self, ProtocolError> {
        let mut seen = vec![false; attribute_count];
        if clusters.iter().any(Vec::is_empty) {
            return Err(ProtocolError::config("clusters must be non-empty"));
        }
        for &attr in clusters.iter().flatten() {
            if attr >= attribute_count {
                return Err(ProtocolError::config(format!(
                    "attribute index {attr} out of range ({attribute_count} attributes)"
                )));
            }
            if seen[attr] {
                return Err(ProtocolError::config(format!(
                    "attribute {attr} appears in two clusters"
                )));
            }
            seen[attr] = true;
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(ProtocolError::config(format!(
                "attribute {missing} is not covered by any cluster"
            )));
        }
        Ok(Clustering { clusters })
    }

    /// The all-singletons clustering (every attribute alone — the
    /// RR-Independent limit of `Td = 1`).
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfiguration`] if `m == 0`.
    pub fn singletons(m: usize) -> Result<Self, ProtocolError> {
        if m == 0 {
            return Err(ProtocolError::config("at least one attribute is required"));
        }
        Ok(Clustering {
            clusters: (0..m).map(|i| vec![i]).collect(),
        })
    }

    /// The clusters, each a sorted list of attribute indices.
    pub fn clusters(&self) -> &[Vec<usize>] {
        &self.clusters
    }

    /// Number of clusters (`l` in the paper).
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether there are no clusters (never true for a validated value).
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Total number of attributes covered.
    pub fn attribute_count(&self) -> usize {
        self.clusters.iter().map(Vec::len).sum()
    }

    /// Index of the cluster containing `attribute`, if any.
    pub fn cluster_of(&self, attribute: usize) -> Option<usize> {
        self.clusters.iter().position(|c| c.contains(&attribute))
    }

    /// The largest number of value combinations of any cluster under the
    /// given attribute cardinalities (the quantity bounded by `Tv`).
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfiguration`] if an attribute index
    /// is out of range for `cardinalities`.
    pub fn max_combinations(&self, cardinalities: &[usize]) -> Result<usize, ProtocolError> {
        let mut worst = 0usize;
        for cluster in &self.clusters {
            let mut product = 1usize;
            for &attr in cluster {
                let card = cardinalities.get(attr).ok_or_else(|| {
                    ProtocolError::config(format!("attribute {attr} missing from cardinality list"))
                })?;
                product = product.saturating_mul(*card);
            }
            worst = worst.max(product);
        }
        Ok(worst)
    }
}

/// Thresholds of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusteringConfig {
    /// `Tv`: maximum number of value combinations allowed in a cluster.
    pub max_combinations: usize,
    /// `Td`: minimum dependence required to merge two clusters.
    pub min_dependence: f64,
}

impl ClusteringConfig {
    /// Creates a configuration, validating the thresholds.
    ///
    /// # Errors
    /// Returns [`ProtocolError::InvalidConfiguration`] if
    /// `max_combinations == 0` or `min_dependence ∉ [0, 1]`.
    pub fn new(max_combinations: usize, min_dependence: f64) -> Result<Self, ProtocolError> {
        if max_combinations == 0 {
            return Err(ProtocolError::config(
                "Tv (max combinations per cluster) must be positive",
            ));
        }
        if !(0.0..=1.0).contains(&min_dependence) {
            return Err(ProtocolError::config(format!(
                "Td (minimum dependence) must lie in [0, 1], got {min_dependence}"
            )));
        }
        Ok(ClusteringConfig {
            max_combinations,
            min_dependence,
        })
    }
}

/// Algorithm 1: greedy agglomerative clustering of attributes by
/// dependence, subject to the `Tv` / `Td` thresholds.
///
/// # Errors
/// Returns [`ProtocolError::InvalidConfiguration`] if the dependence matrix
/// and the cardinality list disagree in size.
pub fn cluster_attributes(
    dependences: &DependenceMatrix,
    cardinalities: &[usize],
    config: ClusteringConfig,
) -> Result<Clustering, ProtocolError> {
    let m = dependences.len();
    if cardinalities.len() != m {
        return Err(ProtocolError::config(format!(
            "dependence matrix covers {m} attributes but {} cardinalities were given",
            cardinalities.len()
        )));
    }
    let mut clusters: Vec<Vec<usize>> = (0..m).map(|i| vec![i]).collect();

    loop {
        // Build the list of cluster-pair dependences, sorted descending
        // (step 4–5 of Algorithm 1).
        let mut pair_list: Vec<(f64, usize, usize)> = Vec::new();
        for a in 0..clusters.len() {
            for b in (a + 1)..clusters.len() {
                let dep = dependences.cluster_dependence(&clusters[a], &clusters[b]);
                pair_list.push((dep, a, b));
            }
        }
        pair_list.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));

        // Walk the list in descending order of dependence and merge the
        // first feasible pair; if none is feasible, the algorithm ends.
        let mut merged = false;
        for &(dep, a, b) in &pair_list {
            if dep < config.min_dependence {
                break;
            }
            let combinations: usize = clusters[a]
                .iter()
                .chain(clusters[b].iter())
                .map(|&attr| cardinalities[attr])
                .fold(1usize, |acc, c| acc.saturating_mul(c));
            if combinations <= config.max_combinations {
                let mut merged_cluster = clusters[a].clone();
                merged_cluster.extend_from_slice(&clusters[b]);
                merged_cluster.sort_unstable();
                // Remove the higher index first so the lower one stays valid.
                clusters.remove(b);
                clusters.remove(a);
                clusters.push(merged_cluster);
                merged = true;
                break;
            }
        }
        if !merged {
            break;
        }
    }

    clusters.sort();
    Clustering::new(clusters, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dep_from_pairs(m: usize, pairs: &[(usize, usize, f64)]) -> DependenceMatrix {
        let mut d = DependenceMatrix::identity(m).unwrap();
        for &(i, j, v) in pairs {
            d.set(i, j, v);
        }
        d
    }

    #[test]
    fn dependence_matrix_basics() {
        let mut d = DependenceMatrix::identity(3).unwrap();
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(0, 1), 0.0);
        d.set(0, 1, 0.7);
        assert_eq!(d.get(1, 0), 0.7);
        d.set(1, 2, 1.4); // clamped
        assert_eq!(d.get(1, 2), 1.0);
        assert!(DependenceMatrix::identity(0).is_err());
    }

    #[test]
    fn from_fn_mirrors_upper_triangle() {
        let d = DependenceMatrix::from_fn(3, |i, j| (i + j) as f64 / 10.0).unwrap();
        assert!((d.get(0, 1) - 0.1).abs() < 1e-12);
        assert!((d.get(2, 1) - 0.3).abs() < 1e-12);
        assert_eq!(d.get(2, 2), 1.0);
    }

    #[test]
    fn cluster_dependence_is_max_cross_pair() {
        let d = dep_from_pairs(4, &[(0, 2, 0.3), (1, 3, 0.8), (0, 3, 0.1)]);
        assert_eq!(d.cluster_dependence(&[0, 1], &[2, 3]), 0.8);
        assert_eq!(d.cluster_dependence(&[0], &[2]), 0.3);
    }

    #[test]
    fn ranking_agreement_detects_preserved_and_flipped_order() {
        let a = dep_from_pairs(3, &[(0, 1, 0.9), (0, 2, 0.5), (1, 2, 0.1)]);
        // Same ranking, attenuated values (Corollary 1 situation).
        let b = dep_from_pairs(3, &[(0, 1, 0.45), (0, 2, 0.25), (1, 2, 0.05)]);
        assert_eq!(a.ranking_agreement(&b).unwrap(), 1.0);
        // Fully reversed ranking.
        let c = dep_from_pairs(3, &[(0, 1, 0.1), (0, 2, 0.5), (1, 2, 0.9)]);
        assert_eq!(a.ranking_agreement(&c).unwrap(), 0.0);
        // Size mismatch is an error.
        assert!(a
            .ranking_agreement(&DependenceMatrix::identity(4).unwrap())
            .is_err());
    }

    #[test]
    fn clustering_validates_partition() {
        assert!(Clustering::new(vec![vec![0, 1], vec![2]], 3).is_ok());
        assert!(Clustering::new(vec![vec![0, 1]], 3).is_err()); // missing 2
        assert!(Clustering::new(vec![vec![0, 1], vec![1, 2]], 3).is_err()); // duplicate
        assert!(Clustering::new(vec![vec![0, 3]], 2).is_err()); // out of range
        assert!(Clustering::new(vec![vec![0], vec![]], 1).is_err()); // empty cluster
        assert!(Clustering::singletons(0).is_err());
    }

    #[test]
    fn clustering_accessors() {
        let c = Clustering::new(vec![vec![0, 2], vec![1]], 3).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.attribute_count(), 3);
        assert_eq!(c.cluster_of(2), Some(0));
        assert_eq!(c.cluster_of(1), Some(1));
        assert_eq!(c.cluster_of(9), None);
        assert_eq!(c.max_combinations(&[3, 4, 5]).unwrap(), 15);
        assert!(c.max_combinations(&[3, 4]).is_err());
        let s = Clustering::singletons(4).unwrap();
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn config_validation() {
        assert!(ClusteringConfig::new(0, 0.5).is_err());
        assert!(ClusteringConfig::new(10, -0.1).is_err());
        assert!(ClusteringConfig::new(10, 1.1).is_err());
        assert!(ClusteringConfig::new(10, 0.0).is_ok());
    }

    #[test]
    fn algorithm_1_merges_dependent_attributes() {
        // Two strongly dependent groups {0,1} and {2,3}, weak across.
        let d = dep_from_pairs(4, &[(0, 1, 0.9), (2, 3, 0.8), (0, 2, 0.05), (1, 3, 0.05)]);
        let cards = [3usize, 4, 2, 5];
        let clustering =
            cluster_attributes(&d, &cards, ClusteringConfig::new(50, 0.2).unwrap()).unwrap();
        assert_eq!(clustering.len(), 2);
        assert!(clustering.clusters().contains(&vec![0, 1]));
        assert!(clustering.clusters().contains(&vec![2, 3]));
    }

    #[test]
    fn algorithm_1_respects_tv() {
        // Both pairs are dependent but the merged product 3*40=120 exceeds Tv=50,
        // so only the small pair merges.
        let d = dep_from_pairs(3, &[(0, 1, 0.9), (1, 2, 0.8)]);
        let cards = [3usize, 4, 40];
        let clustering =
            cluster_attributes(&d, &cards, ClusteringConfig::new(50, 0.2).unwrap()).unwrap();
        assert!(clustering.clusters().contains(&vec![0, 1]));
        assert!(clustering.clusters().contains(&vec![2]));
    }

    #[test]
    fn algorithm_1_respects_td() {
        let d = dep_from_pairs(3, &[(0, 1, 0.15), (1, 2, 0.05)]);
        let cards = [2usize, 2, 2];
        // Td = 0.2: nothing merges.
        let none =
            cluster_attributes(&d, &cards, ClusteringConfig::new(100, 0.2).unwrap()).unwrap();
        assert_eq!(none.len(), 3);
        // Td = 0.1: only the 0-1 pair merges.
        let one = cluster_attributes(&d, &cards, ClusteringConfig::new(100, 0.1).unwrap()).unwrap();
        assert_eq!(one.len(), 2);
        assert!(one.clusters().contains(&vec![0, 1]));
    }

    #[test]
    fn algorithm_1_merges_transitively_up_to_the_budget() {
        // A chain 0-1-2 of strong dependences with small cardinalities:
        // everything ends up in one cluster.
        let d = dep_from_pairs(3, &[(0, 1, 0.9), (1, 2, 0.85)]);
        let cards = [2usize, 2, 2];
        let clustering =
            cluster_attributes(&d, &cards, ClusteringConfig::new(8, 0.3).unwrap()).unwrap();
        assert_eq!(clustering.len(), 1);
        assert_eq!(clustering.clusters()[0], vec![0, 1, 2]);
    }

    #[test]
    fn algorithm_1_with_td_one_yields_singletons() {
        let d = dep_from_pairs(4, &[(0, 1, 0.99), (2, 3, 0.99)]);
        let cards = [2usize, 2, 2, 2];
        let clustering =
            cluster_attributes(&d, &cards, ClusteringConfig::new(100, 1.0).unwrap()).unwrap();
        // Dependences are < 1.0, so nothing reaches the threshold.
        assert_eq!(clustering.len(), 4);
    }

    #[test]
    fn algorithm_1_validates_sizes() {
        let d = DependenceMatrix::identity(3).unwrap();
        assert!(cluster_attributes(&d, &[2, 2], ClusteringConfig::new(10, 0.1).unwrap()).is_err());
    }

    #[test]
    fn algorithm_1_result_is_a_partition_and_respects_tv_globally() {
        let d = dep_from_pairs(
            5,
            &[
                (0, 1, 0.7),
                (1, 2, 0.6),
                (2, 3, 0.5),
                (3, 4, 0.4),
                (0, 4, 0.3),
            ],
        );
        let cards = [3usize, 3, 3, 3, 3];
        let config = ClusteringConfig::new(27, 0.2).unwrap();
        let clustering = cluster_attributes(&d, &cards, config).unwrap();
        assert_eq!(clustering.attribute_count(), 5);
        assert!(clustering.max_combinations(&cards).unwrap() <= 27);
    }
}
